//! Extending ScheMoE with a custom compressor and A2A algorithm.
//!
//! ```bash
//! cargo run --release --example custom_plugins
//! ```
//!
//! The Rust analogue of the paper's Listing 1–2: implement the
//! `Compressor` and `AllToAll` traits, register them, and use them inside
//! a real MoE layer — without touching any training logic.

use bytes::Bytes;
use schemoe::prelude::*;
use schemoe::{A2aRegistry, CompressorRegistry};
use schemoe_cluster::FabricError;
use schemoe_collectives::plan::A2aPlan;
use schemoe_compression::CompressionError;
use schemoe_tensor::rng::{self, seeded};

/// A user codec: keep only the sign and a shared 4-bit log-magnitude —
/// 1 byte per 2 values, 8× compression. Deliberately aggressive, to show
/// the convergence cost of going too far.
#[derive(Clone, Copy, Debug)]
struct SignLog4;

impl Compressor for SignLog4 {
    fn name(&self) -> &'static str {
        "sign-log4"
    }

    fn compress(&self, data: &[f32]) -> Bytes {
        let mut out = Vec::with_capacity(data.len().div_ceil(2));
        let mut nibbles = data.iter().map(|&v| {
            let sign = if v < 0.0 { 8u8 } else { 0 };
            // 3-bit magnitude bucket: 2^-4 .. 2^2.
            let mag = if v == 0.0 {
                0
            } else {
                (v.abs().log2().clamp(-4.0, 2.0) + 5.0) as u8
            };
            sign | mag.min(7)
        });
        loop {
            match (nibbles.next(), nibbles.next()) {
                (Some(a), Some(b)) => out.push(a | (b << 4)),
                (Some(a), None) => {
                    out.push(a);
                    break;
                }
                _ => break,
            }
        }
        Bytes::from(out)
    }

    fn decompress(&self, payload: &[u8], n_elems: usize) -> Result<Vec<f32>, CompressionError> {
        if payload.len() != self.compressed_len(n_elems) {
            return Err(CompressionError::CorruptPayload {
                codec: "sign-log4",
                expected: self.compressed_len(n_elems),
                actual: payload.len(),
            });
        }
        let mut out = Vec::with_capacity(n_elems);
        for i in 0..n_elems {
            let nib = (payload[i / 2] >> ((i % 2) * 4)) & 0xf;
            let sign = if nib & 8 != 0 { -1.0f32 } else { 1.0 };
            let mag = nib & 7;
            let v = if mag == 0 {
                0.0
            } else {
                (mag as f32 - 5.0).exp2()
            };
            out.push(sign * v);
        }
        Ok(out)
    }

    fn compressed_len(&self, n_elems: usize) -> usize {
        n_elems.div_ceil(2)
    }

    fn is_lossless(&self) -> bool {
        false
    }
}

/// A user A2A: Pipe-A2A with an extra-long stream-join budget, as a stand-
/// in for "my cluster needs different tuning".
#[derive(Clone, Copy, Debug)]
struct CautiousPipe;

impl AllToAll for CautiousPipe {
    fn name(&self) -> &'static str {
        "cautious-pipe"
    }

    fn all_to_all(
        &self,
        handle: &mut schemoe_cluster::RankHandle,
        chunks: Vec<Bytes>,
        tag_base: u64,
    ) -> Result<Vec<Bytes>, FabricError> {
        PipeA2A::new().all_to_all(handle, chunks, tag_base)
    }

    fn plan(&self, topo: &Topology, input_bytes: u64) -> A2aPlan {
        PipeA2A::new()
            .with_join_overhead(SimTime::from_ms(1.0))
            .plan(topo, input_bytes)
    }
}

fn main() {
    // Register the plugins next to the built-ins.
    let mut codecs = CompressorRegistry::with_builtins();
    codecs.register("sign-log4", || Box::new(SignLog4));
    let mut a2as = A2aRegistry::with_builtins();
    a2as.register("cautious-pipe", || Box::new(CautiousPipe));
    println!("registered codecs: {:?}", codecs.names());
    println!("registered A2As:   {:?}", a2as.names());

    // Use the custom codec inside a real MoE layer.
    let mut exact = MoeLayer::new(16, 32, 4, 2, 2.0, &mut seeded(42));
    let mut lossy = MoeLayer::new(16, 32, 4, 2, 2.0, &mut seeded(42))
        .with_compressor(codecs.create("sign-log4").expect("registered"));
    let x = rng::uniform(&[32, 16], 1.0, &mut seeded(43));
    use schemoe_tensor::nn::Module;
    let y_exact = exact.forward(&x);
    let y_lossy = lossy.forward(&x);
    println!(
        "\nsign-log4 at 8x compression perturbs the layer output by {:.3} \
         (fp16 at 2x: {:.5})",
        y_exact.max_abs_diff(&y_lossy).expect("same shape"),
        {
            let mut fp16 = MoeLayer::new(16, 32, 4, 2, 2.0, &mut seeded(42))
                .with_compressor(Box::new(Fp16Compressor));
            y_exact.max_abs_diff(&fp16.forward(&x)).expect("same shape")
        }
    );

    // And use the custom A2A in the performance simulator.
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    let custom = a2as.create("cautious-pipe").expect("registered");
    let stock = a2as.create("pipe").expect("builtin");
    let s = 64_000_000;
    println!(
        "\nsimulated 64 MB exchange: stock pipe {}, cautious pipe {}",
        schemoe_collectives::a2a_time(stock.as_ref(), &topo, &hw, s).expect("valid"),
        schemoe_collectives::a2a_time(custom.as_ref(), &topo, &hw, s).expect("valid"),
    );
}
