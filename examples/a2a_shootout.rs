//! All-to-all algorithm shootout across hardware profiles.
//!
//! ```bash
//! cargo run --release --example a2a_shootout
//! ```
//!
//! Complements the Fig. 9 harness: the same four algorithms on three
//! *different* clusters — the paper's PCIe testbed, an NVLink DGX-class
//! what-if, and a slow-Ethernet what-if — showing how the winning
//! algorithm changes with the intra/inter bandwidth balance (the paper's
//! §7 discussion of Eq. 18).

use schemoe::prelude::*;
use schemoe_collectives::{a2a_time, analysis};

fn main() {
    let topo = Topology::paper_testbed();
    let profiles = [
        HardwareProfile::paper_testbed(),
        HardwareProfile::nvlink_dgx(),
        HardwareProfile::ethernet_cluster(),
    ];
    let algs: Vec<(&str, Box<dyn AllToAll>)> = vec![
        ("nccl", Box::new(NcclA2A)),
        ("1dh", Box::new(OneDimHierA2A)),
        ("2dh", Box::new(TwoDimHierA2A)),
        ("pipe", Box::new(PipeA2A::new())),
    ];
    let size = 640_000_000u64; // the CT-MoE ablation-scale payload

    for hw in &profiles {
        println!(
            "== {} ==  ({} exchange per GPU)",
            hw.name,
            size / 1_000_000 * 1_000_000
        );
        let mut best: Option<(&str, SimTime)> = None;
        for (name, alg) in &algs {
            let t = a2a_time(alg.as_ref(), &topo, hw, size).expect("valid plan");
            println!("  {name:>6}: {t}");
            if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
                best = Some((name, t));
            }
        }
        let (winner, _) = best.expect("at least one algorithm");
        println!(
            "  winner: {winner}   (Eq. 18 max pipelining speedup here: {:.2}x)\n",
            analysis::max_speedup(&topo, hw, size)
        );
    }

    println!(
        "Takeaway: Pipe-A2A wins where intra- and inter-node totals are comparable\n\
         (the PCIe testbed); with NVLink the intra phase is nearly free and the\n\
         pipelining headroom (Eq. 18) collapses toward 1x, as §7 predicts."
    );
}
