//! Real wall-clock comm/comp overlap with the OptSche order.
//!
//! ```bash
//! cargo run --release --example overlap_executor
//! ```
//!
//! The simulator *predicts* that OptSche hides communication behind
//! computation; this example *demonstrates* it with real work and a real
//! clock. The 7×r MoE tasks become closures — compression is a real ZFP
//! encode of a real tensor, communication is a network-shaped delay — and
//! the two-worker executor runs them in three orders: fully sequential,
//! stage-major, and OptSche. Wall-clock times land in the same ranking
//! the discrete-event simulator predicts.

use std::sync::Arc;
use std::time::{Duration, Instant};

use schemoe::prelude::*;
use schemoe_scheduler::executor::{run_overlapped, ExecTask, Worker};
use schemoe_scheduler::{Schedule, TaskKind};
use schemoe_tensor::rng::{self, seeded};

const R: usize = 2;
/// Elements per chunk: large enough that ZFP encode/decode takes real time.
const CHUNK_ELEMS: usize = 1_500_000;
/// Emulated wire time per A2A chunk.
const WIRE_MS: u64 = 60;

/// Builds the 7×R task closures in the order a schedule dictates.
fn build_tasks(schedule: &Schedule) -> Vec<ExecTask<'_>> {
    let codec = Arc::new(ZfpCompressor::default());
    let data = Arc::new(rng::uniform(&[CHUNK_ELEMS], 1.0, &mut seeded(1)).into_vec());

    // Task indices: compute tasks in schedule order, then the comm tasks
    // serialized FCFS by *issue* order (the position of their producing
    // compress task) — the same discipline Schedule::makespan uses, and
    // what keeps arbitrary valid orders deadlock-free on FIFO workers.
    let compute_index = |kind: TaskKind, chunk: usize| -> usize {
        schedule
            .comp_order
            .iter()
            .position(|&(k, c)| k == kind && c == chunk)
            .expect("schedule covers all compute tasks")
    };
    let mut comm_order: Vec<(TaskKind, usize)> = Vec::with_capacity(2 * R);
    for &(kind, chunk) in &schedule.comp_order {
        match kind {
            TaskKind::Compress1 => comm_order.push((TaskKind::AllToAll1, chunk)),
            TaskKind::Compress2 => comm_order.push((TaskKind::AllToAll2, chunk)),
            _ => {}
        }
    }
    let comm_index = {
        let comm_order = comm_order.clone();
        move |kind: TaskKind, chunk: usize| -> usize {
            5 * R
                + comm_order
                    .iter()
                    .position(|&(k, c)| k == kind && c == chunk)
                    .expect("every chunk has both A2As")
        }
    };
    let a1_index = |chunk: usize| comm_index(TaskKind::AllToAll1, chunk);
    let a2_index = |chunk: usize| comm_index(TaskKind::AllToAll2, chunk);

    let compress = {
        let (codec, data) = (Arc::clone(&codec), Arc::clone(&data));
        move || {
            let wire = codec.compress(&data);
            std::hint::black_box(wire.len());
        }
    };
    let decompress = {
        let codec = Arc::clone(&codec);
        let wire = codec.compress(&data);
        move || {
            let out = codec.decompress(&wire, CHUNK_ELEMS).expect("valid");
            std::hint::black_box(out.len());
        }
    };
    let expert = {
        let data = Arc::clone(&data);
        move || {
            // A real (small) GEMM-ish reduction standing in for the expert.
            let mut acc = 0.0f32;
            for chunk in data.chunks(512) {
                acc += chunk.iter().sum::<f32>();
            }
            std::hint::black_box(acc);
        }
    };
    let comm = move || std::thread::sleep(Duration::from_millis(WIRE_MS));

    let mut tasks: Vec<ExecTask> = Vec::with_capacity(7 * R);
    for &(kind, chunk) in &schedule.comp_order {
        let deps = match kind {
            TaskKind::Compress1 => vec![],
            TaskKind::Decompress1 => vec![a1_index(chunk)],
            TaskKind::Expert => vec![compute_index(TaskKind::Decompress1, chunk)],
            TaskKind::Compress2 => vec![compute_index(TaskKind::Expert, chunk)],
            TaskKind::Decompress2 => vec![a2_index(chunk)],
            _ => unreachable!("compute order holds no comm tasks"),
        };
        let run: Box<dyn FnOnce() + Send> = match kind {
            TaskKind::Compress1 | TaskKind::Compress2 => Box::new(compress.clone()),
            TaskKind::Decompress1 | TaskKind::Decompress2 => Box::new(decompress.clone()),
            TaskKind::Expert => Box::new(expert.clone()),
            _ => unreachable!(),
        };
        let cat = match kind {
            TaskKind::Compress1 | TaskKind::Compress2 => "encode",
            TaskKind::Decompress1 | TaskKind::Decompress2 => "decode",
            _ => "expert",
        };
        tasks.push(ExecTask {
            worker: Worker::Compute,
            deps,
            span: Some((cat, format!("{}[c{chunk}]", kind.label()))),
            run,
        });
    }
    for &(kind, chunk) in &comm_order {
        let producer = if kind == TaskKind::AllToAll1 {
            TaskKind::Compress1
        } else {
            TaskKind::Compress2
        };
        tasks.push(ExecTask {
            worker: Worker::Comm,
            deps: vec![compute_index(producer, chunk)],
            span: Some(("a2a", format!("{}[c{chunk}]", kind.label()))),
            run: Box::new(comm),
        });
    }
    tasks
}

fn time_schedule(name: &str, schedule: &Schedule) -> f64 {
    let tasks = build_tasks(schedule);
    let start = Instant::now();
    run_overlapped(tasks).expect("no faults are injected in this example");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{name:>12}: {ms:6.1} ms   ({})", schedule.describe());
    ms
}

fn main() {
    println!(
        "Executing {R}x7 real MoE tasks (ZFP on {CHUNK_ELEMS} floats per chunk,\n\
         {WIRE_MS} ms wire time per A2A chunk) on the two-worker executor:\n"
    );
    // Sequential: comm tasks interleave strictly via dependency chains.
    let sequential = {
        use schemoe_scheduler::TaskKind::*;
        let mut order = Vec::new();
        for c in 0..R {
            for k in [Compress1, Decompress1, Expert, Compress2, Decompress2] {
                order.push((k, c));
            }
        }
        Schedule::new(order)
    };
    let t_seq = time_schedule("sequential", &sequential);
    let t_stage = time_schedule("stage-major", &schemoe_scheduler::stage_major(R));
    let t_opt = time_schedule("OptSche", &optsche(R));

    println!();
    println!(
        "wall-clock speedup: OptSche {:.2}x over sequential, {:.2}x over stage-major",
        t_seq / t_opt,
        t_stage / t_opt
    );
    assert!(t_opt <= t_seq * 1.05, "OptSche must not lose to sequential");
}
