//! Real expert-parallel training on the in-process fabric.
//!
//! ```bash
//! cargo run --release --example distributed_training
//! ```
//!
//! Four rank threads each own one expert; every training step runs the
//! full distributed pipeline with real data movement — gate, ZFP-compress,
//! Pipe-A2A dispatch, remote expert compute, Pipe-A2A combine, backward
//! gradient exchanges, and a gate-gradient allreduce — on a learnable toy
//! regression task. Watch the loss fall.

use bytes::Bytes;
use schemoe::prelude::*;
use schemoe_collectives::TAG_STRIDE;
use schemoe_moe::{allreduce_inplace, Expert, FfExpert};
use schemoe_tensor::optim::Sgd;
use schemoe_tensor::rng::{self, seeded};
use schemoe_tensor::Tensor;

const M: usize = 16;
const H: usize = 32;
const TOKENS_PER_RANK: usize = 24;
const STEPS: usize = 60;

/// The regression target: a fixed elementwise transform of the input.
fn target_of(x: &Tensor) -> Tensor {
    x.map(|v| 0.8 * (2.0 * v).sin())
}

fn main() {
    let topo = Topology::new(2, 2);
    let p = topo.world_size();
    println!(
        "training a distributed MoE layer on {} rank threads ({} experts, zfp + pipe-a2a)\n",
        p, p
    );

    let losses = Fabric::run(topo, |mut h| {
        let me = h.rank();
        // Identical gate on every rank (same seed); each rank gets its own
        // expert (seeded by expert id).
        let gate = TopKGate::new(M, p, 2, 4.0, &mut seeded(100));
        let expert: Box<dyn Expert> = Box::new(FfExpert::new(M, H, &mut seeded(200 + me as u64)));
        let mut layer = DistributedMoeLayer::new(
            gate,
            vec![expert],
            Box::new(ZfpCompressor::default()),
            Box::new(PipeA2A::new()),
        );
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        let mut data_rng = seeded(300 + me as u64);
        let mut tag = 0u64;
        let mut history = Vec::new();
        for step in 0..STEPS {
            let x = rng::uniform(&[TOKENS_PER_RANK, M], 1.0, &mut data_rng);
            let want = target_of(&x);
            let y = layer.forward(&mut h, &x, tag).expect("fabric healthy");
            // Mean-squared-error loss and gradient.
            let diff = y.sub(&want).expect("same shape");
            let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / diff.numel() as f32;
            let dy = diff.scale(2.0 / diff.numel() as f32);
            layer.backward(&mut h, &dy).expect("fabric healthy");
            // Keep the replicated gate in sync: allreduce its gradient.
            let mut gate_grad = Vec::new();
            layer.visit_params(&mut |prm| {
                if prm.name == "gate.wg" {
                    gate_grad = prm.grad.data().to_vec();
                }
            });
            allreduce_inplace(&mut h, &mut gate_grad, tag + TAG_STRIDE - 10)
                .expect("fabric healthy");
            layer.visit_params(&mut |prm| {
                if prm.name == "gate.wg" {
                    let scale = 1.0 / p as f32;
                    for (g, &r) in prm.grad.data_mut().iter_mut().zip(gate_grad.iter()) {
                        *g = r * scale;
                    }
                }
            });
            opt.step_params(&mut |f| layer.visit_params(f));
            tag += TAG_STRIDE;
            if step % 10 == 0 || step == STEPS - 1 {
                history.push((step, loss));
            }
        }
        // A final barrier keeps the printout tidy.
        h.barrier();
        let _ = Bytes::new();
        history
    });

    println!("{:>6} per-rank training loss", "step");
    let checkpoints = losses[0].len();
    for c in 0..checkpoints {
        let step = losses[0][c].0;
        let row: Vec<String> = losses.iter().map(|l| format!("{:.4}", l[c].1)).collect();
        println!("{:>6} {}", step, row.join("  "));
    }
    let first: f32 = losses.iter().map(|l| l[0].1).sum::<f32>() / losses.len() as f32;
    let last: f32 = losses.iter().map(|l| l[checkpoints - 1].1).sum::<f32>() / losses.len() as f32;
    println!("\nmean loss: {first:.4} -> {last:.4}");
    assert!(last < first, "training should reduce the loss");
}
