//! Quickstart: estimate MoE layer step times under different systems.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's 32-GPU testbed model, describes one MoE layer, and
//! compares the simulated execution time of the naive baseline, the Tutel
//! and Faster-MoE emulations, and the full ScheMoE system (ZFP + Pipe-A2A
//! + OptSche).

use schemoe::prelude::*;

fn main() {
    // 1. Describe the cluster: 8 nodes × 4 GPUs, PCIe intra-node, IB
    //    inter-node — the paper's testbed, with calibrated cost models.
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    println!(
        "cluster: {} nodes x {} GPUs ({}), {} GiB/GPU",
        topo.nodes(),
        topo.gpus_per_node(),
        hw.name,
        hw.gpu_mem_bytes >> 30
    );

    // 2. Describe one MoE layer (the Table 10 ablation shape).
    let shape = LayerShape {
        tokens_per_gpu: 8 * 2048,
        model_dim: 8192,
        hidden_dim: 8192,
        experts: 32,
        k: 2,
        capacity_factor: 1.2,
    };
    println!(
        "layer: {} tokens/GPU, M={}, H={}, E={}, k={}, f={} -> {} A2A payload/GPU\n",
        shape.tokens_per_gpu,
        shape.model_dim,
        shape.hidden_dim,
        shape.experts,
        shape.k,
        shape.capacity_factor,
        human(shape.a2a_bytes()),
    );

    // 3. Compare systems.
    let systems: Vec<Box<dyn MoeSystem>> = vec![
        Box::new(NaiveSystem::new()),
        Box::new(FasterMoeEmu::new()),
        Box::new(TutelEmu::new()),
        Box::new(ScheMoeSystem::without_compression()),
        Box::new(ScheMoeSystem::default_config()),
    ];
    println!("{:>24} {:>12} {:>9}", "system", "layer fwd", "speedup");
    let baseline = systems[0].layer_time(&shape, &topo, &hw);
    for sys in &systems {
        let t = sys.layer_time(&shape, &topo, &hw);
        let label = if sys.compression_ratio() > 1.0 {
            format!("{} (+zfp)", sys.name())
        } else {
            sys.name().to_string()
        };
        println!("{label:>24} {t:>12} {:>8.2}x", baseline / t);
    }

    // 4. Whole-model estimate with memory accounting.
    println!();
    let model = MoeModelConfig::ct_moe(12);
    let est = model_step_time(&ScheMoeSystem::default_config(), &model, &topo, &hw)
        .expect("CT-MoE-12 fits the testbed");
    println!(
        "{}: step {} (A2A {} = {:.0}%), peak memory {:.2} GiB",
        model.name,
        est.step,
        est.a2a,
        est.a2a_ratio() * 100.0,
        est.memory.total() as f64 / (1u64 << 30) as f64
    );
}

fn human(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    }
}
