//! Torn state transfers: the rejoin protocol's parse-then-verify-then-apply
//! discipline under donor death and link damage.
//!
//! These tests drive [`schemoe_models::ft::stream_state`] /
//! [`receive_state`](schemoe_models::ft::receive_state) directly — the same
//! functions the elastic-membership rejoin path uses — and assert the
//! failure contract: a transfer torn by a donor killed mid-stream, or
//! damaged by a fully corrupting link, leaves the rejoiner's weights
//! bit-for-bit untouched and its membership epoch unchanged. Nothing is
//! applied until the reassembled payload's checkpoint seal verifies.

use std::time::Duration;

use schemoe_cluster::{Fabric, FaultPlan, LinkFaults, Topology};
use schemoe_collectives::NcclA2A;
use schemoe_compression::NoCompression;
use schemoe_models::ft::{
    apply_replicated_state, receive_state, replicated_state_payload, stream_state,
};
use schemoe_moe::{DistributedMoeLayer, Expert, FfExpert, TopKGate};
use schemoe_tensor::checkpoint;
use schemoe_tensor::nn::{Embedding, Linear, Module};
use schemoe_tensor::optim::Sgd;
use schemoe_tensor::rng::seeded;

const VOCAB: usize = 16;
const DIM: usize = 16;
const HIDDEN: usize = 32;
const XFER_TAG: u64 = 1 << 40;

/// The model triple + optimizer of one rank, shaped like the FT trainer's
/// but seeded per rank so donor and rejoiner start with different weights.
fn rank_state(seed: u64, world: usize) -> (Embedding, DistributedMoeLayer, Linear, Sgd) {
    let embed = Embedding::new(VOCAB, DIM, &mut seeded(seed ^ 0xE3BED));
    let gate = TopKGate::new(DIM, world, 2, 2.0, &mut seeded(seed ^ 0x6A7E));
    let expert: Box<dyn Expert> = Box::new(FfExpert::new(DIM, HIDDEN, &mut seeded(seed ^ 0xE8)));
    let moe = DistributedMoeLayer::new(
        gate,
        vec![expert],
        Box::new(NoCompression),
        Box::new(NcclA2A),
    );
    let head = Linear::new(DIM, VOCAB, &mut seeded(seed ^ 0x4EAD));
    (embed, moe, head, Sgd::new(0.1))
}

/// Serializes every parameter (replicated and expert) for bit-exact
/// comparison.
fn full_snapshot(
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
) -> Vec<u8> {
    checkpoint::save(&mut |f| {
        embed.visit_params(f);
        moe.visit_params(f);
        head.visit_params(f);
    })
}

#[test]
fn a_donor_killed_mid_stream_leaves_the_rejoiner_untouched() {
    // The donor dies after 3 sends: past the header copies, inside the
    // chunk stream — the canonical torn transfer.
    let plan = FaultPlan::seeded(21)
        .kill_after(0, 3)
        .with_recv_deadline(Duration::from_millis(200));
    let results = Fabric::run_with_faults(Topology::new(1, 2), plan, |mut h| {
        let (mut embed, mut moe, mut head, mut opt) = rank_state(100 + h.rank() as u64, 2);
        if h.rank() == 0 {
            // Donor half: the stream must fail loudly with its own death,
            // never complete silently.
            let payload = replicated_state_payload(&mut embed, &mut moe, &mut head, &mut opt);
            assert!(payload.len() > 3 * 1024, "payload too small to tear");
            stream_state(&mut h, 1, XFER_TAG, &payload).is_err()
        } else {
            let before = full_snapshot(&mut embed, &mut moe, &mut head);
            let epoch_before = h.epoch();
            let got = receive_state(&mut h, 0, XFER_TAG, Duration::from_millis(300));
            assert!(got.is_err(), "a torn transfer must not verify");
            // Rollback contract: receive failed, so nothing was applied —
            // weights bit-identical, epoch unchanged.
            let after = full_snapshot(&mut embed, &mut moe, &mut head);
            assert_eq!(before, after, "partial state leaked into the model");
            assert_eq!(h.epoch(), epoch_before, "epoch must not move on failure");
            true
        }
    });
    assert!(results[0], "the donor must observe its mid-stream death");
    assert!(results[1]);
}

#[test]
fn a_fully_corrupting_link_cannot_install_partial_state() {
    // Every frame on the donor -> rejoiner link is bit-flipped, so every
    // copy of every chunk fails the wire CRC. The reassembly must fail
    // before verification ever sees a payload.
    let plan = FaultPlan::seeded(22)
        .with_link(
            0,
            1,
            LinkFaults {
                corrupt_prob: 1.0,
                ..LinkFaults::default()
            },
        )
        .with_recv_deadline(Duration::from_millis(200));
    let results = Fabric::run_with_faults(Topology::new(1, 2), plan, |mut h| {
        let (mut embed, mut moe, mut head, mut opt) = rank_state(200 + h.rank() as u64, 2);
        if h.rank() == 0 {
            let payload = replicated_state_payload(&mut embed, &mut moe, &mut head, &mut opt);
            // The link eats the frames after sending; the donor survives.
            stream_state(&mut h, 1, XFER_TAG, &payload).is_ok()
        } else {
            let before = full_snapshot(&mut embed, &mut moe, &mut head);
            let got = receive_state(&mut h, 0, XFER_TAG, Duration::from_millis(300));
            assert!(got.is_err(), "corrupted chunks must not reassemble");
            let after = full_snapshot(&mut embed, &mut moe, &mut head);
            assert_eq!(before, after, "partial state leaked into the model");
            true
        }
    });
    assert!(results[0], "a corrupting link must not kill the donor");
    assert!(results[1]);
}

#[test]
fn an_intact_transfer_applies_atomically_and_matches_the_donor() {
    // Control case: same protocol, healthy wire. The rejoiner's replicated
    // parameters become bit-identical to the donor's; its expert — never
    // part of the transfer — keeps its own weights.
    let plan = FaultPlan::seeded(23).with_recv_deadline(Duration::from_millis(500));
    let results = Fabric::run_with_faults(Topology::new(1, 2), plan, |mut h| {
        let (mut embed, mut moe, mut head, mut opt) = rank_state(300 + h.rank() as u64, 2);
        if h.rank() == 0 {
            let payload = replicated_state_payload(&mut embed, &mut moe, &mut head, &mut opt);
            stream_state(&mut h, 1, XFER_TAG, &payload).expect("healthy stream");
            payload
        } else {
            let mut expert_before = Vec::new();
            moe.visit_params(&mut |p| {
                if !p.name.starts_with("gate.") {
                    expert_before.extend_from_slice(p.value.data());
                }
            });
            let payload =
                receive_state(&mut h, 0, XFER_TAG, Duration::from_secs(2)).expect("verified");
            apply_replicated_state(&payload, &mut embed, &mut moe, &mut head, &mut opt)
                .expect("verified payload applies");
            let mut expert_after = Vec::new();
            moe.visit_params(&mut |p| {
                if !p.name.starts_with("gate.") {
                    expert_after.extend_from_slice(p.value.data());
                }
            });
            assert_eq!(expert_before, expert_after, "experts are rank-local");
            payload
        }
    });
    // The rejoiner received the donor's exact sealed payload, so its
    // replicated state now equals the donor's bit for bit.
    assert_eq!(results[0], results[1]);
    assert!(!results[0].is_empty());
}
