//! Seeded chaos for buddy replication + hot failover: kill a rank whose
//! expert has a warm replica, keep serving its tokens through the buddy,
//! replay bit-identically, hand the expert back on rejoin, and survive a
//! double fault (rank **and** buddy) by falling back to degraded
//! rerouting.
//!
//! The scenario extends `chaos.rs` (which exercises the reroute-only
//! recovery path) with `ReplicaSpec { interval: K }` installed:
//!
//! 1. **Reroute-only baseline** — the kill campaign at `K = 0`. The dead
//!    rank's expert is an expert-shaped hole until the end of the run.
//! 2. **Hot failover** — the same campaign at `K > 0`. The buddy must
//!    activate the replica in the same step-attempt that buries the
//!    victim, the staleness must be at most `K` committed steps, and the
//!    survivors' end-of-run loss must beat the baseline strictly: the
//!    cluster kept the full expert set.
//! 3. **Replay** — the kill-only campaign is pure in the seed, so loss
//!    curves, replica counters, and staleness replay bit-identically.
//! 4. **Revive + handback** — the victim rejoins; the buddy streams the
//!    hosted expert (trained while the owner was dead) back and
//!    deactivates. The handback is asserted on both ends.
//! 5. **Double fault** — victim and buddy die in the same epoch. The
//!    orphaned expert falls back to degraded rerouting (no panic, finite
//!    loss) and both ranks still rejoin.
//!
//! Everything lives in ONE `#[test]`: the obs counter registry is
//! process-global, so the runs must not interleave with each other.
//! (`chaos.rs` runs in its own process — integration-test binaries are
//! separate processes — so the two suites cannot collide.)
//!
//! `CHAOS_SEED` selects the campaign seed (default 1); CI sweeps several.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use schemoe::prelude::*;
use schemoe_models::{run_ft_rank, FtConfig, FtReport};
use schemoe_obs as obs;

const WORLD: usize = 8;
const STEPS: usize = 112;
const KILLED: usize = 5;
/// The buddy ring places rank 5's replica on rank 6.
const BUDDY: usize = (KILLED + 1) % WORLD;
/// Replication quantum: the activated replica may lag by at most K steps.
const K: usize = 4;
/// The loss-comparison kill lands LATE (around step 105 of 112): a
/// well-trained expert dies and the run ends inside the disruption
/// window, so end-of-run loss measures what hot failover actually buys —
/// the buddy keeps serving a trained expert while the reroute-only
/// baseline is left with an expert-shaped hole and no time to re-learn
/// around it. (Over a long post-death horizon the two trajectories
/// re-mix and the comparison degenerates into capacity-vs-data noise.)
///
/// The count is calibrated against the victim's per-step send
/// composition (A2A chunks + the two allreduce lanes + vote copies), so
/// it must be re-tuned whenever the wire protocol changes the number of
/// frames a step emits.
const KILL_AFTER_SENDS: u64 = 9200;
/// The revive and double-fault phases kill EARLY instead, leaving most
/// of the run for the announce/invite/decision rejoin handshake and the
/// handback to complete.
const EARLY_KILL_AFTER_SENDS: u64 = 900;
/// The second kill of the double-fault phase: close enough to the first
/// that the buddy dies in the same epoch of the run.
const BUDDY_KILL_AFTER_SENDS: u64 = 950;
/// Revivals reopen a victim's pipe this many send attempts after its kill.
const REVIVE_DELTA: u64 = 200;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn ft_config(interval: usize) -> FtConfig {
    let mut cfg = ReplicaSpec::every(interval).apply(FtConfig::tiny(STEPS).with_seed(40));
    // Deadlines are orders of magnitude above in-process delivery time, so
    // timing noise cannot change which receives expire (replay determinism
    // depends on that): only messages that were *never sent* time out.
    cfg.vote_timeout_ms = 400;
    // A hotter learning rate makes the late-killed expert genuinely
    // trained by the time it dies, so losing it costs the baseline
    // something measurable.
    cfg.lr = 0.3;
    cfg
}

fn campaign() -> FaultSpec {
    FaultSpec::seeded(chaos_seed())
        .with_kill(KILLED, KILL_AFTER_SENDS)
        .with_recv_deadline_ms(800)
}

fn run_world(cfg: FtConfig, spec: FaultSpec) -> Vec<FtReport> {
    let plan = ScheMoeConfig::serial()
        .with_faults(spec)
        .fault_plan()
        .expect("campaign configured");
    run_plan(cfg, plan)
}

fn run_plan(cfg: FtConfig, plan: FaultPlan) -> Vec<FtReport> {
    Fabric::run_with_faults(Topology::new(2, 4), plan, move |mut h| {
        run_ft_rank(&mut h, &cfg)
    })
}

fn survivor_mean_loss(reports: &[FtReport]) -> f32 {
    let survivors: Vec<&FtReport> = reports
        .iter()
        .filter(|r| r.died_at_step.is_none())
        .collect();
    assert!(!survivors.is_empty(), "every rank died");
    survivors.iter().map(|r| r.final_loss).sum::<f32>() / survivors.len() as f32
}

/// The deterministic slice of a rank's counters, extended with the
/// replication family: frames, activations, and handbacks are pure
/// functions of the fault lottery and the training control flow.
#[allow(clippy::type_complexity)]
fn deterministic_counters(world: usize) -> Vec<(u64, u64, u64, u64, u64, u64, u64)> {
    (0..world)
        .map(|r| {
            let s = obs::counters_for_rank(r).snapshot();
            (
                s.faults_injected,
                s.retries,
                s.degraded_steps,
                s.replica_quanta,
                s.replica_bytes_sent,
                s.failover_activations,
                s.handbacks,
            )
        })
        .collect()
}

#[test]
fn replicated_expert_survives_its_ranks_death_and_replays_bit_identically() {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        scenario();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(480)) {
        Ok(()) => {}
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("replication scenario hung past the watchdog")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => panic!("replication scenario panicked"),
    }
}

fn scenario() {
    // --- Run 1: the reroute-only baseline (K = 0) under the kill. The
    // --- buried rank's expert is a hole for the rest of the run.
    let baseline = run_world(ft_config(0), campaign());
    assert!(baseline[KILLED].died_at_step.is_some());
    for rep in &baseline {
        assert_eq!(rep.failover_activations, 0, "K = 0 must never activate");
        assert_eq!(rep.replica_quanta, 0, "K = 0 must never replicate");
    }
    let baseline_loss = survivor_mean_loss(&baseline);

    // --- Run 2: the same campaign with replication on. ---
    obs::enable();
    obs::reset_counters();
    let failover = run_world(ft_config(K), campaign());
    let first_counters = deterministic_counters(WORLD);
    let trace = obs::take();

    let died_at = failover[KILLED]
        .died_at_step
        .expect("the killed rank must observe its own death");
    assert!(
        died_at > K && died_at < STEPS - 1,
        "kill should land mid-epoch after a replication quantum, died at step {died_at}"
    );
    for (r, rep) in failover.iter().enumerate() {
        if r == KILLED {
            continue;
        }
        assert_eq!(rep.died_at_step, None, "rank {r} must survive");
        assert_eq!(
            rep.dead_ranks,
            vec![KILLED],
            "rank {r} must bury rank {KILLED}"
        );
        assert!(
            rep.replica_quanta > 0,
            "rank {r} must have streamed replica frames"
        );
        assert!(rep.replica_bytes > 0, "rank {r} must account replica bytes");
        assert!(
            rep.loss_curve.iter().all(|l| l.is_finite()),
            "rank {r} must commit every step"
        );
    }
    // The buddy activated the replica in the same step-attempt that buried
    // the victim: exactly one activation, staleness bounded by the quantum.
    assert_eq!(
        failover[BUDDY].failover_activations, 1,
        "rank {BUDDY} must activate its ward's replica exactly once"
    );
    assert_eq!(failover[BUDDY].failover_staleness_steps.len(), 1);
    let staleness = failover[BUDDY].failover_staleness_steps[0];
    assert!(
        staleness <= K as u64,
        "activated replica lags {staleness} steps, quantum allows at most {K}"
    );
    // The obs counter registry saw the same story (satellite: counters are
    // surfaced in the chrome trace and asserted here).
    let buddy_counters = obs::counters_for_rank(BUDDY).snapshot();
    assert_eq!(buddy_counters.failover_activations, 1);
    assert!(buddy_counters.replica_quanta > 0);
    assert!(buddy_counters.replica_bytes_sent > 0);
    let chrome = trace.to_chrome_trace();
    assert!(
        chrome.contains("\"replication\""),
        "the chrome trace must carry the replication counter track"
    );

    // Full expert capacity must beat the expert-shaped hole: strictly
    // better end-of-run loss than the reroute-only baseline.
    let failover_loss = survivor_mean_loss(&failover);
    assert!(
        failover_loss < baseline_loss,
        "failover loss {failover_loss} must beat reroute-only {baseline_loss}"
    );

    // --- Run 3: identical campaign — the replay. Kill-only campaigns are
    // --- pure in the seed through replicate -> failover.
    obs::reset_counters();
    let replay = run_world(ft_config(K), campaign());
    let second_counters = deterministic_counters(WORLD);
    let _ = obs::take();

    assert_eq!(
        first_counters, second_counters,
        "the same seed must replay the same replication story"
    );
    for (r, (a, b)) in failover.iter().zip(replay.iter()).enumerate() {
        assert_eq!(
            a.died_at_step, b.died_at_step,
            "rank {r} death step differs"
        );
        assert_eq!(a.retries, b.retries, "rank {r} retry count differs");
        assert_eq!(a.restores, b.restores, "rank {r} restore count differs");
        assert_eq!(
            a.replica_quanta, b.replica_quanta,
            "rank {r} replica quanta differ"
        );
        assert_eq!(
            a.replica_bytes, b.replica_bytes,
            "rank {r} replica bytes differ"
        );
        assert_eq!(
            a.failover_staleness_steps, b.failover_staleness_steps,
            "rank {r} staleness differs"
        );
        let bits_a: Vec<u32> = a.loss_curve.iter().map(|l| l.to_bits()).collect();
        let bits_b: Vec<u32> = b.loss_curve.iter().map(|l| l.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "rank {r} loss curve is not bit-identical");
    }

    // --- Run 4: revive + handback. The victim rejoins; the buddy streams
    // --- the hosted expert back and deactivates. The kill lands early so
    // --- the rejoin handshake has most of the run to complete.
    obs::reset_counters();
    let revive_spec = FaultSpec::seeded(chaos_seed())
        .with_kill(KILLED, EARLY_KILL_AFTER_SENDS)
        .with_revive(KILLED, EARLY_KILL_AFTER_SENDS + REVIVE_DELTA)
        .with_recv_deadline_ms(800);
    let revived = run_world(ft_config(K), revive_spec);
    let _ = obs::take();

    for (r, rep) in revived.iter().enumerate() {
        assert_eq!(rep.died_at_step, None, "rank {r} must end the run alive");
        assert!(
            rep.dead_ranks.is_empty(),
            "rank {r} must end at full capacity, believes {:?} dead",
            rep.dead_ranks
        );
        assert!(rep.final_loss.is_finite());
    }
    assert_eq!(revived[KILLED].rejoins, 1, "the victim must rejoin once");
    assert_eq!(
        revived[BUDDY].handbacks, 1,
        "the buddy must stream the hosted expert back exactly once"
    );
    assert!(
        revived[BUDDY].handback_bytes > 0,
        "the host must account handback bytes"
    );
    assert!(
        revived[KILLED].handback_bytes > 0,
        "the rejoiner must account the handback it applied"
    );
    assert_eq!(
        obs::counters_for_rank(BUDDY).snapshot().handbacks,
        1,
        "the obs registry must see the handback"
    );
    // The staleness bound is what makes the handback meaningful: the
    // expert the owner gets back diverges from a fault-free trajectory by
    // at most the replica's K-step lag, never by the whole dead window.
    for &s in &revived[BUDDY].failover_staleness_steps {
        assert!(s <= K as u64, "staleness {s} exceeds quantum {K}");
    }
    obs::disable();

    // --- Run 5: double fault — the victim AND its buddy die in the same
    // --- epoch. The orphaned expert falls back to degraded rerouting (no
    // --- panic, finite loss), and both ranks still rejoin.
    let double_plan = FaultPlan::seeded(chaos_seed())
        .kill_after(KILLED, EARLY_KILL_AFTER_SENDS)
        .kill_after(BUDDY, BUDDY_KILL_AFTER_SENDS)
        .revive_after(KILLED, EARLY_KILL_AFTER_SENDS + REVIVE_DELTA)
        .revive_after(BUDDY, BUDDY_KILL_AFTER_SENDS + REVIVE_DELTA)
        .with_recv_deadline(Duration::from_millis(800));
    let double = run_plan(ft_config(K), double_plan);
    for (r, rep) in double.iter().enumerate() {
        assert_eq!(
            rep.died_at_step, None,
            "rank {r} must end the double-fault run alive"
        );
        assert!(
            rep.dead_ranks.is_empty(),
            "rank {r} must end at full capacity, believes {:?} dead",
            rep.dead_ranks
        );
        assert!(
            rep.loss_curve.iter().all(|l| l.is_nan() || l.is_finite()),
            "rank {r} committed a non-finite loss"
        );
        assert!(rep.final_loss.is_finite(), "rank {r} final loss not finite");
    }
    assert_eq!(double[KILLED].rejoins, 1, "the victim must rejoin");
    assert_eq!(double[BUDDY].rejoins, 1, "the buddy must rejoin");
}
