//! Property tests: every chrome-trace export is well-formed JSON.
//!
//! Both substrates serialize through `schemoe_obs::chrome`, and both are
//! checked here against the workspace's own strict RFC 8259 parser — with
//! labels chosen to be hostile to naive serialization (quotes, backslashes,
//! control characters, multi-byte UTF-8) and sizes hostile to naive number
//! formatting (NaN, infinities).

use proptest::prelude::*;
use schemoe_netsim::chrome::to_chrome_trace;
use schemoe_netsim::{SimTime, StreamSim};
use schemoe_obs::json;
use schemoe_obs::{FuncTrace, SpanRecord};

/// Characters that break naive JSON string emission.
const HOSTILE: [char; 12] = [
    '"', '\\', '\n', '\t', '\r', '\u{0}', '\u{1f}', 'a', '0', 'é', '→', '🦀',
];

/// A label built from the hostile palette, one char per input byte.
fn label_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..=255, 0..12).prop_map(|bytes| {
        bytes
            .iter()
            .map(|b| HOSTILE[*b as usize % HOSTILE.len()])
            .collect()
    })
}

/// Span sizes including the values `fmt` must clamp rather than emit.
fn size_strategy() -> impl Strategy<Value = f64> {
    (0u8..5, 0u32..1_000_000).prop_map(|(sel, n)| match sel {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => n as f64,
        _ => n as f64 + 0.25,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulator_traces_serialize_to_valid_json(
        labels in proptest::collection::vec(label_strategy(), 1..8),
        durs_us in proptest::collection::vec(1u32..1_000_000, 1..8),
        stream_name in label_strategy(),
    ) {
        let mut sim = StreamSim::new();
        let a = sim.stream("gpu");
        let b = sim.stream("net");
        let mut prev = None;
        for (i, label) in labels.iter().enumerate() {
            let dur = durs_us[i % durs_us.len()];
            let stream = if i % 2 == 0 { a } else { b };
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(sim.push(stream, SimTime::from_us(dur as f64), &deps, label));
        }
        let trace = sim.run().expect("chain schedules");
        let doc = to_chrome_trace(&trace, &[&stream_name, "net"]);
        prop_assert!(
            json::parse(&doc).is_ok(),
            "simulator trace is not valid JSON: {doc}"
        );
    }

    #[test]
    fn functional_traces_serialize_to_valid_json(
        names in proptest::collection::vec(label_strategy(), 0..10),
        threads in proptest::collection::vec(label_strategy(), 1..4),
        sizes in proptest::collection::vec(size_strategy(), 1..10),
        starts in proptest::collection::vec(0u32..10_000_000, 1..10),
    ) {
        let spans: Vec<SpanRecord> = names
            .iter()
            .enumerate()
            .map(|(i, name)| SpanRecord {
                cat: "a2a",
                name: name.clone(),
                rank: i % 3,
                thread: threads[i % threads.len()].clone(),
                start_us: starts[i % starts.len()] as f64,
                dur_us: (i as f64) * 7.5,
                size: sizes[i % sizes.len()],
                depth: i % 4,
            })
            .collect();
        let trace = FuncTrace { spans, counters: Vec::new(), routing: Vec::new() };
        let doc = trace.to_chrome_trace();
        prop_assert!(
            json::parse(&doc).is_ok(),
            "functional trace is not valid JSON: {doc}"
        );
    }
}
