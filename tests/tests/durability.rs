//! Crash-the-whole-job durability chaos: every rank persists snapshot
//! shards through the asynchronous lane, the job "dies" (the truncated
//! run simply ends), and a cold restart must replay the uninterrupted
//! trajectory bit for bit — under seeded storage faults, and with a
//! shard bitrotted on disk between the crash and the resume.
//!
//! 1. **Uninterrupted reference** — the full run with no snapshot lane;
//!    its per-rank final losses are the ground truth every resumed run
//!    is compared against *exactly* (f32 determinism, not a tolerance).
//! 2. **Crash / resume** — a truncated snapshotting run, then a resume
//!    of the full budget from the committed generations on disk. Every
//!    rank must agree on the resume step and land on the reference loss.
//! 3. **ChaosFs seeds** — the same cycle under torn writes, bitrot, and
//!    crash-before-rename, one seed with a pinned crash window on the
//!    coordinator's manifest rename: the interrupted generation must be
//!    invisible and resume falls back to an older complete one.
//! 4. **Buddy reconstruction** — a victim rank's newest shard is
//!    corrupted on disk; the victim must rebuild its expert from the
//!    replica embedded in its buddy's shard, not abandon the generation.
//! 5. **Counters** — the per-rank obs counter registry must agree with
//!    the reports: shards written everywhere, generations committed and
//!    GC'd only by the coordinator, one restore per resumed rank, and
//!    exactly one reconstruction on the corrupted rank.
//!
//! Everything lives in ONE `#[test]`: the obs counter registry is
//! process-global, so the phases must not interleave.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use schemoe::prelude::*;
use schemoe_cluster::storage::ChaosFsPlan;
use schemoe_models::{run_ft_rank_durable, FtConfig, FtReport, SnapshotCfg};
use schemoe_obs as obs;
use schemoe_tensor::snapshot;

const WORLD: usize = 4;
const STEPS: usize = 24;
const CRASH_STEPS: usize = 12;
const INTERVAL: usize = 4;
const KEEP: usize = 2;
/// The rank whose shard gets bitrotted in the reconstruction phase.
const VICTIM: usize = 1;

fn cfg(steps: usize) -> FtConfig {
    FtConfig::tiny(steps).with_seed(40).with_replica_interval(2)
}

fn run_world(cfg: FtConfig, snap: Option<SnapshotCfg>) -> Vec<FtReport> {
    let topo = Topology::new(1, WORLD);
    Fabric::run(topo, move |mut h| {
        run_ft_rank_durable(&mut h, &cfg, snap.as_ref())
    })
}

fn snap_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "schemoe-durability-it-{label}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Asserts every rank survived and resumed at the same step; returns it.
fn agreed_resume_step(reports: &[FtReport]) -> usize {
    let step = reports[0].resumed_at_step.expect("rank 0 resumed");
    for (rank, r) in reports.iter().enumerate() {
        assert!(r.died_at_step.is_none(), "rank {rank} died");
        assert_eq!(
            r.resumed_at_step,
            Some(step),
            "rank {rank} picked a different resume generation"
        );
    }
    step
}

/// Asserts a resumed world landed exactly on the reference trajectory.
fn assert_bit_identical(resumed: &[FtReport], reference: &[FtReport]) {
    for (rank, (got, want)) in resumed.iter().zip(reference).enumerate() {
        assert_eq!(
            got.final_loss.to_bits(),
            want.final_loss.to_bits(),
            "rank {rank}: resumed loss {} != uninterrupted loss {}",
            got.final_loss,
            want.final_loss
        );
    }
}

/// Runs a truncated snapshotting job into `dir`, then resumes the full
/// step budget from whatever it committed.
fn crash_and_resume(dir: &Path, chaos: Option<Arc<ChaosFsPlan>>) -> Vec<FtReport> {
    let mut crash_snap = SnapshotCfg::new(dir, INTERVAL).with_keep(KEEP);
    if let Some(plan) = &chaos {
        crash_snap = crash_snap.with_chaos(Arc::clone(plan));
    }
    let truncated = run_world(cfg(CRASH_STEPS), Some(crash_snap));
    let committed: u64 = truncated.iter().map(|r| r.snapshot_generations).sum();
    assert!(committed > 0, "no generation committed before the crash");

    let mut resume_snap = SnapshotCfg::new(dir, INTERVAL)
        .with_keep(KEEP)
        .with_resume();
    if let Some(plan) = &chaos {
        resume_snap = resume_snap.with_chaos(Arc::clone(plan));
    }
    run_world(cfg(STEPS), Some(resume_snap))
}

#[test]
fn whole_job_crash_recovery_under_storage_chaos() {
    // Phase 1: the uninterrupted reference trajectory.
    let reference = run_world(cfg(STEPS), None);
    for (rank, r) in reference.iter().enumerate() {
        assert!(r.died_at_step.is_none(), "reference rank {rank} died");
        assert!(r.final_loss.is_finite());
    }

    // Phase 2: fault-free crash/resume, with counters watching.
    obs::enable();
    obs::reset_counters();
    let dir = snap_dir("resume");
    let resumed = crash_and_resume(&dir, None);
    let step = agreed_resume_step(&resumed);
    assert!(
        step > 0 && step < CRASH_STEPS,
        "resume step {step} out of range"
    );
    assert_bit_identical(&resumed, &reference);
    for rank in 0..WORLD {
        let c = obs::counters_for_rank(rank).snapshot();
        assert!(
            c.snapshot_shards > 0 && c.snapshot_bytes_written > 0,
            "rank {rank} never wrote a durable shard"
        );
        assert_eq!(
            c.snapshot_restores, 1,
            "rank {rank} must restore exactly once across the cycle"
        );
        assert_eq!(c.snapshot_reconstructions, 0);
        // Only the coordinator (lowest live rank) commits and collects.
        if rank == 0 {
            assert!(
                c.snapshot_generations > 0,
                "the coordinator never committed"
            );
            assert!(
                c.snapshot_gc_removed > 0,
                "retention never collected an old generation"
            );
        } else {
            assert_eq!(c.snapshot_generations, 0);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 3: the same cycle under seeded storage faults. Seed 23 pins
    // a crash-before-rename window on the coordinator's second manifest
    // rename (its rename sequence interleaves shard g1, manifest g1,
    // shard g2, manifest g2, ...), so one generation is guaranteed to be
    // torn down between tmp and rename — and must stay invisible.
    obs::reset_counters();
    for &(seed, crash_window) in &[(11u64, false), (23u64, true)] {
        let mut plan = ChaosFsPlan::seeded(seed)
            .with_write_probs(0.05, 0.0, 0.05)
            .with_crash_rename_prob(0.05);
        if crash_window {
            plan = plan.crash_rename_window(3, 4);
        }
        let dir = snap_dir(&format!("chaos{seed}"));
        let resumed = crash_and_resume(&dir, Some(Arc::new(plan)));
        agreed_resume_step(&resumed);
        assert_bit_identical(&resumed, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Phase 4: bitrot the victim's newest shard between crash and
    // resume; its buddy's embedded replica must cover the rebuild.
    obs::reset_counters();
    let dir = snap_dir("reconstruct");
    let truncated = run_world(
        cfg(CRASH_STEPS),
        Some(SnapshotCfg::new(&dir, INTERVAL).with_keep(KEEP)),
    );
    assert!(truncated.iter().all(|r| r.died_at_step.is_none()));
    let newest = std::fs::read_dir(&dir)
        .expect("snapshot dir")
        .flatten()
        .filter_map(|e| snapshot::manifest_generation(&e.file_name().to_string_lossy()))
        .max()
        .expect("a committed generation");
    let shard_path = dir.join(snapshot::shard_file_name(newest, VICTIM));
    let mut bytes = std::fs::read(&shard_path).expect("read victim shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&shard_path, &bytes).expect("corrupt victim shard");

    let resumed = run_world(
        cfg(STEPS),
        Some(
            SnapshotCfg::new(&dir, INTERVAL)
                .with_keep(KEEP)
                .with_resume(),
        ),
    );
    agreed_resume_step(&resumed);
    assert_bit_identical(&resumed, &reference);
    assert_eq!(
        resumed[VICTIM].snapshot_reconstructions, 1,
        "the corrupted rank must rebuild from its buddy's replica"
    );
    assert_eq!(
        obs::counters_for_rank(VICTIM)
            .snapshot()
            .snapshot_reconstructions,
        1
    );
    for rank in (0..WORLD).filter(|&r| r != VICTIM) {
        assert_eq!(
            resumed[rank].snapshot_reconstructions, 0,
            "rank {rank} reconstructed without a corrupt shard"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    obs::disable();
}
