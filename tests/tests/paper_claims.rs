//! Integration tests asserting the paper's headline claims end to end.

use schemoe::prelude::*;
use schemoe_collectives::{a2a_fits_memory, a2a_time, analysis};
use schemoe_netsim::SimTime;
use schemoe_scheduler::schedules::{brute_force_best, naive_makespan};
use schemoe_scheduler::TaskSet;
use schemoe_tensor::rng::seeded;

use rand::Rng;

fn env() -> (Topology, HardwareProfile) {
    (Topology::paper_testbed(), HardwareProfile::paper_testbed())
}

/// §6.3 / Fig. 8: ScheMoE beats Tutel on every sampled sweep configuration.
#[test]
fn schemoe_always_beats_tutel_on_the_sweep_sample() {
    let (topo, hw) = env();
    let tutel = TutelEmu::new();
    let schemoe = ScheMoeSystem::without_compression();
    let mut rng = seeded(17);
    for _ in 0..40 {
        let shape = LayerShape {
            tokens_per_gpu: [2, 4, 8][rng.gen_range(0..3)] * [512, 1024, 2048][rng.gen_range(0..3)],
            model_dim: [512, 1024, 2048, 4096, 8192][rng.gen_range(0..5)],
            hidden_dim: [512, 1024, 2048, 4096, 8192][rng.gen_range(0..5)],
            experts: 32,
            k: 2,
            capacity_factor: [1.0, 1.1, 1.2][rng.gen_range(0..3)],
        };
        let t = tutel.layer_time(&shape, &topo, &hw);
        let s = schemoe.layer_time(&shape, &topo, &hw);
        assert!(s <= t, "{shape:?}: ScheMoE {s} lost to Tutel {t}");
    }
}

/// Theorem 1 over the full pipeline: cost model → task set → OptSche equals
/// the exhaustive optimum for real layer shapes, not just synthetic times.
#[test]
fn optsche_is_optimal_for_real_layer_costs() {
    let (topo, hw) = env();
    for (tokens, m, h, ratio) in [
        (4096usize, 1024usize, 4096usize, 4.0f64),
        (16384, 8192, 8192, 4.0),
        (1024, 512, 512, 1.0),
    ] {
        let costs = schemoe_scheduler::MoeLayerCosts {
            tokens,
            model_dim: m,
            hidden_dim: h,
            compression_ratio: ratio,
        };
        let tasks = costs.task_set(&topo, &hw, &PipeA2A::new(), 2);
        let (_, best) = brute_force_best(&tasks);
        let opt = optsche(2).makespan(&tasks).expect("valid");
        assert!(
            (opt.as_secs() - best.as_secs()).abs() < 1e-12,
            "layer ({tokens},{m},{h}): optsche {opt} vs oracle {best}"
        );
    }
}

/// Eq. 16–18: the simulated plans agree with the closed forms, and the
/// speedup never leaves [1, 2].
#[test]
fn pipe_a2a_analysis_brackets_hold() {
    let (topo, hw) = env();
    for s in [1u64 << 20, 64 << 20, 1 << 31] {
        let eq16 = analysis::t_pipe_a2a(&topo, &hw, s);
        let eq17 = analysis::t_nccl_a2a(&topo, &hw, s);
        assert!(eq16 <= eq17);
        let sp = analysis::max_speedup(&topo, &hw, s);
        assert!((1.0..=2.0).contains(&sp), "speedup {sp} at {s} bytes");
        // Simulated Pipe-A2A = Eq. 16 + join overhead.
        let sim = a2a_time(&PipeA2A::new(), &topo, &hw, s).expect("valid");
        assert!(sim >= eq16 && sim <= eq16 + SimTime::from_ms(1.0));
    }
}

/// Fig. 9's orderings at the three size regimes.
#[test]
fn fig9_orderings_hold() {
    let (topo, hw) = env();
    let nccl = |s| a2a_time(&NcclA2A, &topo, &hw, s).expect("valid");
    let pipe = |s| a2a_time(&PipeA2A::new(), &topo, &hw, s).expect("valid");
    let two = |s| a2a_time(&TwoDimHierA2A, &topo, &hw, s).expect("valid");
    let one = |s| a2a_time(&OneDimHierA2A, &topo, &hw, s).expect("valid");
    // Pipe wins at every size.
    for s in [1u64 << 10, 1 << 20, 64 << 20, 1 << 31] {
        assert!(pipe(s) <= nccl(s), "pipe loses to nccl at {s}");
        assert!(pipe(s) <= two(s).max(nccl(s)), "pipe loses at {s}");
    }
    // 1DH is the loser at median sizes and OOMs at 2 GB.
    let s = 64 << 20;
    assert!(one(s) > nccl(s) && one(s) > two(s) && one(s) > pipe(s));
    assert!(!a2a_fits_memory(
        &OneDimHierA2A,
        &topo,
        &hw,
        2 << 30,
        1 << 30
    ));
    assert!(a2a_fits_memory(
        &PipeA2A::new(),
        &topo,
        &hw,
        2 << 30,
        1 << 30
    ));
    // Large-regime factors: ~1.4x over NCCL, ~2x over 2DH.
    let s = 2_000_000_000u64;
    let f_nccl = nccl(s) / pipe(s);
    let f_two = two(s) / pipe(s);
    assert!((1.25..1.55).contains(&f_nccl), "nccl factor {f_nccl:.2}");
    assert!((1.7..2.3).contains(&f_two), "2dh factor {f_two:.2}");
}

/// Table 10's monotone ablation, end to end through the system layer.
#[test]
fn ablation_is_monotone() {
    let (topo, hw) = env();
    let shape = LayerShape {
        tokens_per_gpu: 8 * 2048,
        model_dim: 8192,
        hidden_dim: 8192,
        experts: 32,
        k: 2,
        capacity_factor: 1.2,
    };
    let naive = NaiveSystem::new().layer_time(&shape, &topo, &hw);
    let full = ScheMoeSystem::default_config().layer_time(&shape, &topo, &hw);
    let speedup = naive / full;
    assert!(
        (1.9..3.1).contains(&speedup),
        "ablation speedup {speedup:.2}"
    );
}

/// The scheduling framework accepts every combination of codec ratio, A2A
/// algorithm, and degree without producing invalid schedules.
#[test]
fn scheduling_matrix_is_total() {
    let (topo, hw) = env();
    let algs: Vec<Box<dyn AllToAll>> = vec![
        Box::new(NcclA2A),
        Box::new(PipeA2A::new()),
        Box::new(TwoDimHierA2A),
        Box::new(OneDimHierA2A),
    ];
    for alg in &algs {
        for ratio in [1.0, 2.0, 4.0] {
            for r in [1usize, 2, 4, 8] {
                let costs = schemoe_scheduler::MoeLayerCosts {
                    tokens: 4096,
                    model_dim: 1024,
                    hidden_dim: 2048,
                    compression_ratio: ratio,
                };
                let tasks: TaskSet = costs.task_set(&topo, &hw, alg.as_ref(), r);
                let m = optsche(r).makespan(&tasks).expect("always valid");
                assert!(m <= naive_makespan(&tasks));
                assert!(m >= tasks.comm_total().max(tasks.comp_total()) - SimTime::from_us(1.0));
            }
        }
    }
}

/// Table 8's memory story: Faster-MoE OOMs on BERT-Large-MoE while the
/// capacity-bounded systems fit, and everything fits CT-MoE.
#[test]
fn memory_story_matches_table8() {
    let (topo, hw) = env();
    let bert = MoeModelConfig::bert_large_moe();
    assert!(matches!(
        model_step_time(&FasterMoeEmu::new(), &bert, &topo, &hw),
        Err(StepTimeError::OutOfMemory { .. })
    ));
    assert!(model_step_time(&TutelEmu::new(), &bert, &topo, &hw).is_ok());
    assert!(model_step_time(&ScheMoeSystem::default_config(), &bert, &topo, &hw).is_ok());
    for layers in [12, 16, 20, 24] {
        let ct = MoeModelConfig::ct_moe(layers);
        assert!(model_step_time(&FasterMoeEmu::new(), &ct, &topo, &hw).is_ok());
    }
}
