//! Integration tests of the functional substrate: real training across
//! crates (tensor → moe → models) and the distributed execution path.

use bytes::Bytes;
use schemoe::prelude::*;
use schemoe_collectives::TAG_STRIDE;
use schemoe_models::RegimeMarkov;
use schemoe_moe::{allreduce_inplace, Expert, FfExpert};
use schemoe_tensor::optim::Adam;
use schemoe_tensor::rng::{self, seeded};
use schemoe_tensor::Tensor;

/// A compressed MoE language model still converges: train the same model
/// with and without an FP16 A2A round-trip and compare final quality.
#[test]
fn fp16_compression_preserves_lm_convergence() {
    let data = RegimeMarkov::new(16, 2, &mut seeded(61));
    let cfg = LmConfig {
        vocab: 16,
        model_dim: 24,
        hidden_dim: 32,
        heads: 2,
        seq_len: 12,
        layers: 1,
        experts: Some(4),
        k: 2,
        capacity_factor: 2.0,
    };
    let trainer = Trainer {
        steps: 120,
        batch: 12,
        ..Default::default()
    };

    let mut exact = TinyMoeLm::new(cfg.clone(), &mut seeded(62));
    let exact_report = trainer.run_markov(&mut exact, &data);

    let mut lossy = TinyMoeLm::new(cfg, &mut seeded(62));
    lossy.set_compressor(|| Box::new(Fp16Compressor));
    let lossy_report = trainer.run_markov(&mut lossy, &data);

    // Both beat uniform (16.0) and land within 10% of each other.
    assert!(exact_report.val_perplexity < 13.0);
    assert!(lossy_report.val_perplexity < 13.0);
    let rel = (lossy_report.val_perplexity - exact_report.val_perplexity).abs()
        / exact_report.val_perplexity;
    assert!(rel < 0.10, "fp16 shifted perplexity by {:.1}%", rel * 100.0);
}

/// The distributed layer trains: running SGD against the full fabric
/// pipeline (gate → compress → A2A → experts → A2A → combine → backward)
/// reduces a regression loss on every rank.
#[test]
fn distributed_moe_training_reduces_loss() {
    let topo = Topology::new(2, 2);
    let p = topo.world_size();
    let (first, last): (f32, f32) = {
        let results = Fabric::run(topo, |mut h| {
            let me = h.rank();
            let gate = TopKGate::new(8, p, 1, 4.0, &mut seeded(70));
            let expert: Box<dyn Expert> =
                Box::new(FfExpert::new(8, 16, &mut seeded(71 + me as u64)));
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![expert],
                Box::new(ZfpCompressor::default()),
                Box::new(TwoDimHierA2A),
            );
            let mut opt = Adam::new(0.01);
            let mut rng = seeded(80 + me as u64);
            let mut tag = 0u64;
            let mut first = 0.0f32;
            let mut last = 0.0f32;
            for step in 0..40 {
                let x = rng::uniform(&[16, 8], 1.0, &mut rng);
                let want = x.map(|v| v * 0.5 - 0.1);
                let y = layer.forward(&mut h, &x, tag).expect("healthy");
                let diff = y.sub(&want).expect("same shape");
                let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / diff.numel() as f32;
                if step == 0 {
                    first = loss;
                }
                last = loss;
                let dy = diff.scale(2.0 / diff.numel() as f32);
                layer.backward(&mut h, &dy).expect("healthy");
                let mut gg = Vec::new();
                layer.visit_params(&mut |prm| {
                    if prm.name == "gate.wg" {
                        gg = prm.grad.data().to_vec();
                    }
                });
                allreduce_inplace(&mut h, &mut gg, tag + TAG_STRIDE - 5).expect("healthy");
                layer.visit_params(&mut |prm| {
                    if prm.name == "gate.wg" {
                        for (g, &r) in prm.grad.data_mut().iter_mut().zip(gg.iter()) {
                            *g = r / p as f32;
                        }
                    }
                });
                opt.step_params(&mut |f| layer.visit_params(f));
                tag += TAG_STRIDE;
            }
            (first, last)
        });
        let first = results.iter().map(|r| r.0).sum::<f32>() / p as f32;
        let last = results.iter().map(|r| r.1).sum::<f32>() / p as f32;
        (first, last)
    };
    assert!(
        last < first * 0.8,
        "distributed training failed to reduce loss: {first} -> {last}"
    );
}

/// Back-to-back collectives on one fabric with stepped tag bases never
/// cross-contaminate, even with different algorithms interleaved.
#[test]
fn interleaved_collectives_are_isolated() {
    let topo = Topology::new(2, 2);
    let results = Fabric::run(topo, |mut h| {
        let me = h.rank() as u8;
        let p = h.world_size();
        let mk = |round: u8| -> Vec<Bytes> {
            (0..p)
                .map(|j| Bytes::from(vec![me, j as u8, round]))
                .collect()
        };
        let algs: Vec<Box<dyn AllToAll>> = vec![
            Box::new(NcclA2A),
            Box::new(TwoDimHierA2A),
            Box::new(PipeA2A::new()),
            Box::new(OneDimHierA2A),
        ];
        let mut all = Vec::new();
        for (round, alg) in algs.iter().enumerate() {
            let got = alg
                .all_to_all(&mut h, mk(round as u8), round as u64 * TAG_STRIDE)
                .expect("healthy");
            all.push(got);
        }
        all
    });
    for (me, rounds) in results.iter().enumerate() {
        for (round, got) in rounds.iter().enumerate() {
            for (j, payload) in got.iter().enumerate() {
                assert_eq!(
                    payload.as_ref(),
                    &[j as u8, me as u8, round as u8],
                    "rank {me} round {round} slot {j}"
                );
            }
        }
    }
}

/// The three-level consistency chain: a tensor moved through (1) the
/// reference exchange, (2) an algorithmic A2A, and (3) a compressed
/// algorithmic A2A arrives with the expected fidelity at each level.
#[test]
fn data_fidelity_through_the_stack() {
    let topo = Topology::new(1, 4);
    let results = Fabric::run(topo, |mut h| {
        let me = h.rank();
        let p = h.world_size();
        let rows: Vec<Tensor> = (0..p)
            .map(|j| rng::uniform(&[8, 4], 1.0, &mut seeded((me * p + j) as u64)))
            .collect();
        let codec = ZfpCompressor::default();
        let chunks: Vec<Bytes> = rows.iter().map(|t| codec.compress(t.data())).collect();
        let got = PipeA2A::new()
            .all_to_all(&mut h, chunks, 0)
            .expect("healthy");
        let decoded: Vec<Tensor> = got
            .iter()
            .map(|b| {
                Tensor::from_vec(codec.decompress(b, 32).expect("valid"), &[8, 4]).expect("shape")
            })
            .collect();
        decoded
    });
    // Rank r's slot j must hold rank j's tensor for destination r, within
    // the ZFP error bound.
    for (me, got) in results.iter().enumerate() {
        for (j, tensor) in got.iter().enumerate() {
            let want = rng::uniform(&[8, 4], 1.0, &mut seeded((j * 4 + me) as u64));
            let diff = tensor.max_abs_diff(&want).expect("same shape");
            assert!(diff < 1.0 / 32.0, "rank {me} slot {j}: diff {diff}");
        }
    }
}

/// A full language model checkpoints and restores mid-training: quality
/// after restore equals quality before, down to the logits.
#[test]
fn lm_checkpoint_round_trip() {
    use schemoe_tensor::checkpoint;

    let data = RegimeMarkov::new(12, 2, &mut seeded(90));
    let cfg = LmConfig {
        vocab: 12,
        model_dim: 16,
        hidden_dim: 24,
        heads: 2,
        seq_len: 8,
        layers: 1,
        experts: Some(4),
        k: 2,
        capacity_factor: 4.0,
    };
    let mut lm = TinyMoeLm::new(cfg.clone(), &mut seeded(91));
    let trainer = Trainer {
        steps: 30,
        batch: 8,
        ..Default::default()
    };
    trainer.run_markov(&mut lm, &data);
    let probe = data.sample_batch(4, 8, &mut seeded(92));
    let logits_before = lm.logits(&probe);
    let ckpt = checkpoint::save(&mut |f| lm.visit_params(f));

    // A fresh model disagrees until the checkpoint restores it. Capacity
    // is generous so routing decisions depend only on parameters.
    let mut restored = TinyMoeLm::new(cfg, &mut seeded(4242));
    assert!(
        restored
            .logits(&probe)
            .max_abs_diff(&logits_before)
            .unwrap()
            > 1e-3,
        "fresh model should differ"
    );
    checkpoint::load(&ckpt, &mut |f| restored.visit_params(f)).unwrap();
    let logits_after = restored.logits(&probe);
    assert_eq!(logits_after.data(), logits_before.data());
}
