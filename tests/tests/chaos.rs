//! Seeded chaos: kill a rank mid-epoch, finish training anyway, replay
//! bit-identically.
//!
//! This is the end-to-end acceptance test of the fault-injection stack:
//! an 8-rank fault-tolerant LM training run (`schemoe_models::ft`) under a
//! [`FaultSpec`] campaign that kills one rank partway through the epoch.
//! The survivors must detect the death, reroute its tokens through
//! degraded gating, restore the last checkpoint, and finish every step —
//! landing within 10% of the fault-free final loss. Running the *same*
//! campaign twice must inject the exact same fault sequence, asserted on
//! the per-rank observability counters and on bit-identical loss curves.
//!
//! The replay campaign is deliberately kill-only: a kill and a channel
//! disconnect are *instant* faults, so the control flow they induce is a
//! pure function of the seed. Frame corruption is exercised in a separate
//! lossy phase — a corrupted receive stalls downstream peers against
//! wall-clock deadlines, and which side of a deadline a vote lands on is
//! inherently a property of the host scheduler, not of the seed. That
//! phase asserts recovery and integrity counters, not bit-replay.
//!
//! Everything lives in ONE `#[test]`: the obs counter registry is
//! process-global, so the runs (clean, chaos, replay, lossy) must not
//! interleave with each other or with other tests in this binary.
//!
//! `CHAOS_SEED` selects the campaign seed (default 1); CI sweeps several.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use schemoe::prelude::*;
use schemoe_models::{run_ft_rank, FtConfig, FtReport};
use schemoe_obs as obs;

const WORLD: usize = 8;
const STEPS: usize = 20;
const KILLED: usize = 5;
/// Fires around halfway through the epoch (after the first checkpoint
/// window, well before the last step).
const KILL_AFTER_SENDS: u64 = 900;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn ft_config() -> FtConfig {
    let mut cfg = FtConfig::tiny(STEPS).with_seed(40);
    // Deadlines are orders of magnitude above in-process delivery time, so
    // timing noise cannot change which receives expire (replay determinism
    // depends on that): only messages that were *never sent* time out.
    cfg.vote_timeout_ms = 400;
    cfg
}

fn campaign() -> FaultSpec {
    FaultSpec::seeded(chaos_seed())
        .with_kill(KILLED, KILL_AFTER_SENDS)
        .with_recv_deadline_ms(800)
}

fn run_world(cfg: FtConfig, spec: FaultSpec, topo: Topology) -> Vec<FtReport> {
    let plan = ScheMoeConfig::serial()
        .with_faults(spec)
        .fault_plan()
        .expect("campaign configured");
    Fabric::run_with_faults(topo, plan, move |mut h| run_ft_rank(&mut h, &cfg))
}

fn survivor_mean_loss(reports: &[FtReport]) -> f32 {
    let survivors: Vec<&FtReport> = reports
        .iter()
        .filter(|r| r.died_at_step.is_none())
        .collect();
    assert!(!survivors.is_empty(), "every rank died");
    survivors.iter().map(|r| r.final_loss).sum::<f32>() / survivors.len() as f32
}

/// The deterministic slice of a rank's counters: pure functions of the
/// fault lottery and the (deterministic) training control flow. Timing
/// fields (`recv_wait_ns`, `timeouts`) are deliberately excluded.
fn deterministic_counters(world: usize) -> Vec<(u64, u64, u64, u64)> {
    (0..world)
        .map(|r| {
            let s = obs::counters_for_rank(r).snapshot();
            (
                s.faults_injected,
                s.corrupt_frames,
                s.retries,
                s.degraded_steps,
            )
        })
        .collect()
}

#[test]
fn killed_rank_mid_epoch_recovers_and_replays_bit_identically() {
    // The whole scenario under a watchdog: a hang (the one failure mode
    // this PR exists to eliminate) must fail loudly, not wedge CI.
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        scenario();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(300)) {
        Ok(()) => {}
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("chaos scenario hung past the watchdog"),
        Err(mpsc::RecvTimeoutError::Disconnected) => panic!("chaos scenario panicked"),
    }
}

fn scenario() {
    let cfg = ft_config();

    // --- Run 1: fault-free baseline (counters off; nothing to count). ---
    let clean = Fabric::run(Topology::new(2, 4), move |mut h| run_ft_rank(&mut h, &cfg));
    assert!(clean.iter().all(|r| r.died_at_step.is_none()));
    let clean_loss = survivor_mean_loss(&clean);

    // --- Run 2: the chaos campaign. ---
    obs::enable();
    obs::reset_counters();
    let chaos = run_world(cfg, campaign(), Topology::new(2, 4));
    let first_counters = deterministic_counters(WORLD);
    let _ = obs::take(); // drain recorded spans

    let died_at = chaos[KILLED]
        .died_at_step
        .expect("the killed rank must observe its own death");
    assert!(
        died_at > 1 && died_at < STEPS - 1,
        "kill should land mid-epoch, died at step {died_at}"
    );
    for (r, rep) in chaos.iter().enumerate() {
        if r == KILLED {
            continue;
        }
        assert_eq!(rep.died_at_step, None, "rank {r} must survive");
        assert_eq!(
            rep.dead_ranks,
            vec![KILLED],
            "rank {r} must bury rank {KILLED}"
        );
        assert!(rep.restores >= 1, "rank {r} must restore a checkpoint");
        assert!(
            rep.loss_curve.iter().all(|l| l.is_finite()),
            "rank {r} must commit every step"
        );
    }
    let total_faults: u64 = first_counters.iter().map(|c| c.0).sum();
    assert!(total_faults >= 1, "the kill itself is an injected fault");
    let total_degraded: u64 = first_counters.iter().map(|c| c.3).sum();
    assert!(
        total_degraded > 0,
        "post-death steps must run in degraded mode"
    );

    // Degraded routing plus a checkpoint rewind must not derail learning.
    let chaos_loss = survivor_mean_loss(&chaos);
    assert!(
        (chaos_loss - clean_loss).abs() <= 0.10 * clean_loss,
        "chaos loss {chaos_loss} strays more than 10% from fault-free {clean_loss}"
    );

    // --- Run 3: identical campaign, identical world — the replay. ---
    obs::reset_counters();
    let replay = run_world(cfg, campaign(), Topology::new(2, 4));
    let second_counters = deterministic_counters(WORLD);
    let _ = obs::take();

    assert_eq!(
        first_counters, second_counters,
        "the same seed must inject the same fault sequence"
    );
    for (r, (a, b)) in chaos.iter().zip(replay.iter()).enumerate() {
        assert_eq!(
            a.died_at_step, b.died_at_step,
            "rank {r} death step differs"
        );
        assert_eq!(a.retries, b.retries, "rank {r} retry count differs");
        assert_eq!(a.restores, b.restores, "rank {r} restore count differs");
        let bits_a: Vec<u32> = a.loss_curve.iter().map(|l| l.to_bits()).collect();
        let bits_b: Vec<u32> = b.loss_curve.iter().map(|l| l.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "rank {r} loss curve is not bit-identical");
    }

    // --- Run 4: lossy links — corrupted frames force retries, everyone
    // --- lives. No bit-replay assertion here (see module docs).
    obs::reset_counters();
    let mut lossy_cfg = FtConfig::tiny(8).with_seed(41);
    lossy_cfg.vote_timeout_ms = 400;
    lossy_cfg.retry_budget = 6; // a live rank must never be evicted for lag
    let lossy_spec = FaultSpec::seeded(chaos_seed() ^ 0xC0_FFEE)
        .with_corrupt(0.002)
        .with_recv_deadline_ms(800);
    let lossy = run_world(lossy_cfg, lossy_spec, Topology::new(2, 2));
    let lossy_counters = deterministic_counters(4);
    let _ = obs::take();
    obs::disable();

    for (r, rep) in lossy.iter().enumerate() {
        assert_eq!(rep.died_at_step, None, "lossy rank {r} must survive");
        assert!(
            rep.loss_curve.iter().all(|l| l.is_finite()),
            "lossy rank {r} must commit every step"
        );
    }
    let corrupt_frames: u64 = lossy_counters.iter().map(|c| c.1).sum();
    let retries: u64 = lossy_counters.iter().map(|c| c.2).sum();
    assert!(corrupt_frames >= 1, "corruption campaign never fired");
    assert!(
        retries >= 1,
        "corrupted frames must surface as step retries"
    );
}
