//! Seeded chaos: kill a rank mid-epoch, finish training anyway, replay
//! bit-identically.
//!
//! This is the end-to-end acceptance test of the fault-injection stack:
//! an 8-rank fault-tolerant LM training run (`schemoe_models::ft`) under a
//! [`FaultSpec`] campaign that kills one rank partway through the epoch.
//! The survivors must detect the death, reroute its tokens through
//! degraded gating, restore the last checkpoint, and finish every step —
//! landing within 10% of the fault-free final loss. Running the *same*
//! campaign twice must inject the exact same fault sequence, asserted on
//! the per-rank observability counters and on bit-identical loss curves.
//!
//! The replay campaign is deliberately kill-only: a kill and a channel
//! disconnect are *instant* faults, so the control flow they induce is a
//! pure function of the seed. Frame corruption is exercised in a separate
//! lossy phase — a corrupted receive stalls downstream peers against
//! wall-clock deadlines, and which side of a deadline a vote lands on is
//! inherently a property of the host scheduler, not of the seed. That
//! phase asserts recovery and integrity counters, not bit-replay.
//!
//! A final pair of runs exercises **elastic membership**: the same kill
//! with a scheduled revival 200 send attempts later. The victim announces
//! itself, survivors re-admit it under a fresh membership epoch, the donor
//! streams replicated state, and the cluster ends at full capacity with
//! every rank on the same epoch — within 5% of the fault-free loss, and
//! bit-identical (epoch transitions, counters, loss curves) on replay.
//!
//! Everything lives in ONE `#[test]`: the obs counter registry is
//! process-global, so the runs (clean, chaos, replay, lossy, revive,
//! revive-replay) must not interleave with each other or with other tests
//! in this binary.
//!
//! `CHAOS_SEED` selects the campaign seed (default 1); CI sweeps several.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use schemoe::prelude::*;
use schemoe_models::{run_ft_rank, FtConfig, FtReport};
use schemoe_obs as obs;

const WORLD: usize = 8;
const STEPS: usize = 20;
const KILLED: usize = 5;
/// Fires around halfway through the epoch (after the first checkpoint
/// window, well before the last step).
const KILL_AFTER_SENDS: u64 = 900;
/// The revive phase reopens the victim's pipe this many send attempts
/// after the kill: late enough that survivors have buried it and run
/// degraded steps, early enough that it rejoins and trains to the end.
const REVIVE_DELTA: u64 = 200;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn ft_config() -> FtConfig {
    let mut cfg = FtConfig::tiny(STEPS).with_seed(40);
    // Deadlines are orders of magnitude above in-process delivery time, so
    // timing noise cannot change which receives expire (replay determinism
    // depends on that): only messages that were *never sent* time out.
    cfg.vote_timeout_ms = 400;
    cfg
}

fn campaign() -> FaultSpec {
    FaultSpec::seeded(chaos_seed())
        .with_kill(KILLED, KILL_AFTER_SENDS)
        .with_recv_deadline_ms(800)
}

fn run_world(cfg: FtConfig, spec: FaultSpec, topo: Topology) -> Vec<FtReport> {
    let plan = ScheMoeConfig::serial()
        .with_faults(spec)
        .fault_plan()
        .expect("campaign configured");
    Fabric::run_with_faults(topo, plan, move |mut h| run_ft_rank(&mut h, &cfg))
}

fn survivor_mean_loss(reports: &[FtReport]) -> f32 {
    let survivors: Vec<&FtReport> = reports
        .iter()
        .filter(|r| r.died_at_step.is_none())
        .collect();
    assert!(!survivors.is_empty(), "every rank died");
    survivors.iter().map(|r| r.final_loss).sum::<f32>() / survivors.len() as f32
}

/// The deterministic slice of a rank's counters: pure functions of the
/// fault lottery and the (deterministic) training control flow. Timing
/// fields (`recv_wait_ns`, `timeouts`) are deliberately excluded.
fn deterministic_counters(world: usize) -> Vec<(u64, u64, u64, u64)> {
    (0..world)
        .map(|r| {
            let s = obs::counters_for_rank(r).snapshot();
            (
                s.faults_injected,
                s.corrupt_frames,
                s.retries,
                s.degraded_steps,
            )
        })
        .collect()
}

#[test]
fn killed_rank_mid_epoch_recovers_and_replays_bit_identically() {
    // The whole scenario under a watchdog: a hang (the one failure mode
    // this PR exists to eliminate) must fail loudly, not wedge CI.
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        scenario();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(480)) {
        Ok(()) => {}
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("chaos scenario hung past the watchdog"),
        Err(mpsc::RecvTimeoutError::Disconnected) => panic!("chaos scenario panicked"),
    }
}

fn scenario() {
    let cfg = ft_config();

    // --- Run 1: fault-free baseline (counters off; nothing to count). ---
    let clean = Fabric::run(Topology::new(2, 4), move |mut h| run_ft_rank(&mut h, &cfg));
    assert!(clean.iter().all(|r| r.died_at_step.is_none()));
    let clean_loss = survivor_mean_loss(&clean);

    // --- Run 2: the chaos campaign. ---
    obs::enable();
    obs::reset_counters();
    let chaos = run_world(cfg, campaign(), Topology::new(2, 4));
    let first_counters = deterministic_counters(WORLD);
    let _ = obs::take(); // drain recorded spans

    let died_at = chaos[KILLED]
        .died_at_step
        .expect("the killed rank must observe its own death");
    assert!(
        died_at > 1 && died_at < STEPS - 1,
        "kill should land mid-epoch, died at step {died_at}"
    );
    for (r, rep) in chaos.iter().enumerate() {
        if r == KILLED {
            continue;
        }
        assert_eq!(rep.died_at_step, None, "rank {r} must survive");
        assert_eq!(
            rep.dead_ranks,
            vec![KILLED],
            "rank {r} must bury rank {KILLED}"
        );
        assert!(rep.restores >= 1, "rank {r} must restore a checkpoint");
        assert!(
            rep.loss_curve.iter().all(|l| l.is_finite()),
            "rank {r} must commit every step"
        );
    }
    let total_faults: u64 = first_counters.iter().map(|c| c.0).sum();
    assert!(total_faults >= 1, "the kill itself is an injected fault");
    let total_degraded: u64 = first_counters.iter().map(|c| c.3).sum();
    assert!(
        total_degraded > 0,
        "post-death steps must run in degraded mode"
    );

    // Degraded routing plus a checkpoint rewind must not derail learning.
    let chaos_loss = survivor_mean_loss(&chaos);
    assert!(
        (chaos_loss - clean_loss).abs() <= 0.10 * clean_loss,
        "chaos loss {chaos_loss} strays more than 10% from fault-free {clean_loss}"
    );

    // --- Run 3: identical campaign, identical world — the replay. ---
    obs::reset_counters();
    let replay = run_world(cfg, campaign(), Topology::new(2, 4));
    let second_counters = deterministic_counters(WORLD);
    let _ = obs::take();

    assert_eq!(
        first_counters, second_counters,
        "the same seed must inject the same fault sequence"
    );
    for (r, (a, b)) in chaos.iter().zip(replay.iter()).enumerate() {
        assert_eq!(
            a.died_at_step, b.died_at_step,
            "rank {r} death step differs"
        );
        assert_eq!(a.retries, b.retries, "rank {r} retry count differs");
        assert_eq!(a.restores, b.restores, "rank {r} restore count differs");
        let bits_a: Vec<u32> = a.loss_curve.iter().map(|l| l.to_bits()).collect();
        let bits_b: Vec<u32> = b.loss_curve.iter().map(|l| l.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "rank {r} loss curve is not bit-identical");
    }

    // --- Run 4: lossy links — corrupted frames force retries, everyone
    // --- lives. No bit-replay assertion here (see module docs).
    obs::reset_counters();
    let mut lossy_cfg = FtConfig::tiny(8).with_seed(41);
    lossy_cfg.vote_timeout_ms = 400;
    lossy_cfg.retry_budget = 6; // a live rank must never be evicted for lag
                                // 0.8% per frame: calibrated so that on every CI seed at least one
                                // corruption lands on step-critical traffic (A2A / allreduce frames,
                                // which abort the attempt and retry) rather than only on traffic the
                                // protocol absorbs without a retry (redundant vote copies).
    let lossy_spec = FaultSpec::seeded(chaos_seed() ^ 0xC0_FFEE)
        .with_corrupt(0.008)
        .with_recv_deadline_ms(800);
    let lossy = run_world(lossy_cfg, lossy_spec, Topology::new(2, 2));
    let lossy_counters = deterministic_counters(4);
    let _ = obs::take();
    obs::disable();

    for (r, rep) in lossy.iter().enumerate() {
        assert_eq!(rep.died_at_step, None, "lossy rank {r} must survive");
        assert!(
            rep.loss_curve.iter().all(|l| l.is_finite()),
            "lossy rank {r} must commit every step"
        );
    }
    let corrupt_frames: u64 = lossy_counters.iter().map(|c| c.1).sum();
    let retries: u64 = lossy_counters.iter().map(|c| c.2).sum();
    assert!(corrupt_frames >= 1, "corruption campaign never fired");
    assert!(
        retries >= 1,
        "corrupted frames must surface as step retries"
    );

    // --- Run 5: kill-then-revive — elastic membership end to end. The
    // --- same kill, but the victim's pipe reopens 200 send attempts
    // --- later: it must announce, get re-admitted under a fresh epoch,
    // --- receive the donor's state, and train to the end.
    obs::enable();
    obs::reset_counters();
    let revive_spec = campaign().with_revive(KILLED, KILL_AFTER_SENDS + REVIVE_DELTA);
    let revived = run_world(cfg, revive_spec, Topology::new(2, 4));
    let revive_counters = deterministic_counters(WORLD);
    let _ = obs::take();

    for (r, rep) in revived.iter().enumerate() {
        assert_eq!(rep.died_at_step, None, "rank {r} must end the run alive");
        assert!(
            rep.dead_ranks.is_empty(),
            "rank {r} must end at full capacity, believes {:?} dead",
            rep.dead_ranks
        );
        assert!(rep.final_loss.is_finite());
    }
    assert_eq!(
        revived[KILLED].rejoins, 1,
        "the revived rank must rejoin exactly once"
    );
    assert!(
        revived[KILLED].transfer_bytes > 0,
        "the rejoiner must apply a state transfer"
    );
    let donor_bytes: u64 = revived
        .iter()
        .enumerate()
        .filter(|(r, _)| *r != KILLED)
        .map(|(_, rep)| rep.transfer_bytes)
        .sum();
    assert!(donor_bytes > 0, "some survivor must donate state");
    // Membership converges: every rank ends at the same epoch, and at
    // least two transitions happened (burial, then rejoin).
    let final_epoch = revived[0].final_epoch;
    assert!(final_epoch >= 2, "burial + rejoin must both bump the epoch");
    for (r, rep) in revived.iter().enumerate() {
        assert_eq!(
            rep.final_epoch, final_epoch,
            "rank {r} ends at epoch {} but rank 0 at {final_epoch} \
             (transitions {:?})",
            rep.final_epoch, rep.epoch_transitions
        );
    }
    // Rejoin must cost less accuracy than staying degraded: within 5% of
    // the fault-free final loss.
    let revive_loss = survivor_mean_loss(&revived);
    assert!(
        (revive_loss - clean_loss).abs() <= 0.05 * clean_loss,
        "revive loss {revive_loss} strays more than 5% from fault-free {clean_loss}"
    );

    // --- Run 6: the revive campaign replayed — epoch transitions,
    // --- recovery counters, and loss curves are pure in the seed.
    obs::reset_counters();
    let revive_replay = run_world(cfg, revive_spec, Topology::new(2, 4));
    let revive_counters_replay = deterministic_counters(WORLD);
    let _ = obs::take();
    obs::disable();

    assert_eq!(
        revive_counters, revive_counters_replay,
        "the revive campaign must inject the same fault sequence"
    );
    for (r, (a, b)) in revived.iter().zip(revive_replay.iter()).enumerate() {
        assert_eq!(
            a.epoch_transitions, b.epoch_transitions,
            "rank {r} epoch transitions are not bit-identical"
        );
        assert_eq!(a.final_epoch, b.final_epoch, "rank {r} final epoch differs");
        assert_eq!(a.rejoins, b.rejoins, "rank {r} rejoin count differs");
        assert_eq!(
            a.transfer_bytes, b.transfer_bytes,
            "rank {r} transfer bytes differ"
        );
        assert_eq!(a.retries, b.retries, "rank {r} retry count differs");
        assert_eq!(a.restores, b.restores, "rank {r} restore count differs");
        let bits_a: Vec<u32> = a.loss_curve.iter().map(|l| l.to_bits()).collect();
        let bits_b: Vec<u32> = b.loss_curve.iter().map(|l| l.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "rank {r} loss curve is not bit-identical");
    }
}
