//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` for documentation of
//! intent but never routes the types through a serializer (there is no
//! `serde_json` in the dependency tree), so the derives expand to
//! nothing. The marker traits in the `serde` stub have no methods, which
//! keeps any future `T: Serialize` bound satisfiable via a blanket impl
//! there rather than per-type codegen here.

use proc_macro::TokenStream;

/// No-op expansion of `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op expansion of `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
