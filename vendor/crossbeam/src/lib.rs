//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the unbounded-channel subset the fabric uses is provided,
//! implemented over `std::sync::mpsc` (whose `Sender` has been `Sync`
//! since Rust 1.72, matching crossbeam's sharing semantics for this
//! workload).

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when the receiving end has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending end has been dropped and the
    /// channel is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The sending end disconnected with the channel drained.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Sends a message; never blocks.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(41usize).unwrap();
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn disconnect_surfaces_as_error() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn timeout_fires_on_silence() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        t.join().unwrap();
    }
}
