//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, ranges
//! and tuples and `Vec<S>` as strategies, [`collection::vec`],
//! [`test_runner::ProptestConfig`], and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros. Cases are generated from a
//! generator seeded by the test's module path and name, so runs are
//! fully deterministic; there is no shrinking — a failing case reports
//! its case index so it can be replayed by rerunning the test.

pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test seed: FNV-1a over the test's full name.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The case generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for one test case.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, span)` via Lemire reduction.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(usize, u64, u32, u16, u8, isize, i64, i32);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let u = (rng.unit_f64() * (1.0 + f64::EPSILON)) as $t;
                    (start + (end - start) * u).min(end)
                }
            }
        )*};
    }

    float_range_strategies!(f64, f32);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for a `Vec` of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { .. }`
/// item becomes a `#[test]`-attributed function running the body over
/// deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(
                        __seed ^ (__case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat), &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, with optional format context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property, with optional format context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::from_seed(1);
        let s = (1usize..5).prop_map(|n| n * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn flat_map_sees_inner_value() {
        let mut rng = TestRng::from_seed(2);
        let s = (2usize..6).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0usize..n, n)).prop_map(|(n, v)| (n, v))
        });
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(3);
        let s = crate::collection::vec(0.0f32..1.0, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: binds args, honours the config, and reruns
        /// deterministically.
        #[test]
        fn macro_binds_arguments(a in 0usize..10, b in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(a, a, "reflexivity for {}", a);
        }
    }
}
