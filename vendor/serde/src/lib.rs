//! Offline stand-in for the `serde` crate.
//!
//! The traits are markers satisfied by every type (blanket impls), and
//! the re-exported derive macros expand to nothing: the workspace only
//! annotates types for intent and never drives an actual serializer.

/// Marker for serializable types; trivially satisfied.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types; trivially satisfied.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
