//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! subset of the `bytes` API the codebase uses is reimplemented here:
//! [`Bytes`] is a cheaply cloneable, immutable byte buffer (an `Arc` over
//! the payload) and [`BytesMut`] is a growable builder that freezes into
//! one. Semantics match the real crate for this subset; only the
//! zero-copy slicing machinery is omitted because nothing here needs it.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer borrowing nothing: the static slice is copied once.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the sub-range `[begin, end)` as a new buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.data[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte builder that freezes into a [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates a builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_builder() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(b"hello ");
        b.extend_from_slice(b"world");
        let frozen = b.freeze();
        assert_eq!(frozen.as_ref(), b"hello world");
        assert_eq!(frozen.len(), 11);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&b[1..], &[2, 3]);
    }

    #[test]
    fn static_and_vec_constructors() {
        assert_eq!(Bytes::from_static(b"x").as_ref(), b"x");
        assert_eq!(Bytes::from(vec![9u8]).as_ref(), &[9]);
        assert!(Bytes::new().is_empty());
    }
}
