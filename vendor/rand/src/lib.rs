//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic-seeding subset the workspace uses:
//! [`rngs::SmallRng`] (xoshiro256++ behind a SplitMix64 seed expansion,
//! the same construction the real crate uses on 64-bit targets),
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over the
//! half-open and inclusive ranges of the primitive types the codebase
//! samples. Streams are stable across runs but are NOT bit-identical to
//! the real crate's.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly sampleable from a range.
///
/// The blanket `SampleRange` impls below are generic over this trait so
/// integer literals take their type from the sampling context (e.g. a
/// slice index infers `usize`), matching the real crate's inference.
pub trait UniformSample: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(rng, start, end)
    }
}

fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(word: u64) -> f32 {
    // 24 high bits -> [0, 1).
    (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Maps a word to `[0, span)` without modulo bias (Lemire reduction).
fn bounded(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128) as u64;
                start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32);

macro_rules! impl_float_uniform {
    ($($t:ty => $unit:ident),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                start + (end - start) * $unit(rng.next_u64())
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                // Scale the half-open unit up so `end` is reachable.
                let u = $unit(rng.next_u64()) * (1.0 + <$t>::EPSILON);
                (start + (end - start) * u).min(end)
            }
        }
    )*};
}

impl_float_uniform!(f64 => unit_f64, f32 => unit_f32);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32));
        assert_eq!(same.count(), 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u64);
            assert!(y <= 5);
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let g = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &count in &buckets {
            assert!((8_000..12_000).contains(&count), "skewed bucket: {count}");
        }
    }
}
