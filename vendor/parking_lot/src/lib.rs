//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly and a poisoned mutex (a panic
//! while holding the lock) is recovered rather than propagated, matching
//! parking_lot's behaviour of not poisoning at all.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive with a panic-free `lock`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    }
}
