//! Offline stand-in for the `criterion` crate.
//!
//! A minimal timing harness with criterion's API shape: groups,
//! parameterised benchmarks, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark is timed
//! over a fixed number of samples and the median ns/iter is printed;
//! there is no statistical analysis, HTML report, or regression store.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Times a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.0, None, 10, f);
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id naming the benchmark after its input parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Bytes or elements processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A named collection of benchmarks sharing throughput/sampling config.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Times a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Handed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

fn run_benchmark<F>(label: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate the iteration count so one sample lasts ~2 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        if b.elapsed_ns >= 2e6 || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0.0,
            };
            f(&mut b);
            b.elapsed_ns / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib_s = bytes as f64 / median / 1.073_741_824;
            println!("{label}: {median:.1} ns/iter ({gib_s:.3} GiB/s)");
        }
        Some(Throughput::Elements(n)) => {
            let melem_s = n as f64 * 1e3 / median;
            println!("{label}: {median:.1} ns/iter ({melem_s:.3} Melem/s)");
        }
        None => println!("{label}: {median:.1} ns/iter"),
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_trivial_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(8));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
