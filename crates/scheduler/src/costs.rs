//! Builds a [`TaskSet`] for a concrete MoE layer on concrete hardware.

use schemoe_cluster::{HardwareProfile, Topology};
use schemoe_collectives::AllToAll;
use schemoe_netsim::SimTime;

use crate::task::TaskSet;

/// The per-layer quantities that determine task durations.
///
/// `tokens` is the *assigned* token count per GPU after capacity padding
/// (`f · k · B · L`), so the A2A payload is `tokens × model_dim × 4` bytes
/// (paper Eq. 2) and the expert GEMM volume is `4 · tokens · M · H` FLOPs.
#[derive(Clone, Copy, Debug)]
pub struct MoeLayerCosts {
    /// Assigned tokens per GPU (`f · k · B · L`).
    pub tokens: usize,
    /// Embedding size `M`.
    pub model_dim: usize,
    /// Expert hidden size `H`.
    pub hidden_dim: usize,
    /// Compression ratio of the configured codec (1.0 = none).
    pub compression_ratio: f64,
}

impl MoeLayerCosts {
    /// Uncompressed A2A payload per GPU in bytes (Eq. 2 with `b = 32`).
    pub fn a2a_bytes(&self) -> u64 {
        self.tokens as u64 * self.model_dim as u64 * 4
    }

    /// Compressed payload crossing the wire.
    pub fn wire_bytes(&self) -> u64 {
        (self.a2a_bytes() as f64 / self.compression_ratio) as u64
    }

    /// Forward expert FLOPs per GPU (two GEMMs).
    pub fn expert_flops(&self) -> u64 {
        4 * self.tokens as u64 * self.model_dim as u64 * self.hidden_dim as u64
    }

    /// Compiles the `7 × r` task durations for this layer.
    ///
    /// Each of the `r` chunks carries `1/r` of the tokens; compression and
    /// decompression are skipped (zero duration) when the ratio is 1.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn task_set(
        &self,
        topo: &Topology,
        hw: &HardwareProfile,
        a2a: &dyn AllToAll,
        r: usize,
    ) -> TaskSet {
        assert!(r > 0, "at least one chunk required");
        let chunk_bytes = self.a2a_bytes() / r as u64;
        let chunk_wire = self.wire_bytes() / r as u64;
        let chunk_flops = self.expert_flops() / r as u64;
        let compress = if self.compression_ratio > 1.0 {
            hw.compress_time(chunk_bytes)
        } else {
            SimTime::ZERO
        };
        let decompress = if self.compression_ratio > 1.0 {
            hw.decompress_time(chunk_bytes)
        } else {
            SimTime::ZERO
        };
        let a2a_time = a2a
            .plan(topo, chunk_wire)
            .simulate(topo, hw)
            .map(|t| t.makespan())
            .expect("uniform A2A plans are valid")
            + a2a.plan(topo, chunk_wire).join_overhead();
        let expert = hw.gemm.time(chunk_flops);
        TaskSet::uniform(r, compress, a2a_time, decompress, expert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedules::{naive_makespan, optsche};
    use crate::task::TaskKind;
    use schemoe_collectives::{NcclA2A, PipeA2A};

    fn costs() -> MoeLayerCosts {
        // The Table 10 ablation layer: B=8, f=1.2, L=2048, k=2, M=H=8192.
        MoeLayerCosts {
            tokens: (1.2 * 2.0 * 8.0 * 2048.0) as usize,
            model_dim: 8192,
            hidden_dim: 8192,
            compression_ratio: 1.0,
        }
    }

    #[test]
    fn payload_matches_eq2() {
        let c = costs();
        // S = f·k·B·L·M·4 = 1.2·2·8·2048·8192·4 ≈ 1.29 GB.
        assert_eq!(c.a2a_bytes(), 39321 * 8192 * 4);
        assert!((c.a2a_bytes() as f64 - 1.29e9).abs() < 0.01e9);
    }

    #[test]
    fn compression_shrinks_wire_but_not_flops() {
        let mut c = costs();
        c.compression_ratio = 4.0;
        assert_eq!(c.wire_bytes(), c.a2a_bytes() / 4);
        assert_eq!(c.expert_flops(), costs().expert_flops());
    }

    #[test]
    fn task_set_durations_are_sane() {
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        let ts = costs().task_set(&topo, &hw, &NcclA2A, 2);
        // No compression configured: C/D tasks are free.
        assert_eq!(ts.duration(TaskKind::Compress1, 0), SimTime::ZERO);
        // A2A of ~0.8 GB per chunk takes hundreds of ms.
        let a2a = ts.duration(TaskKind::AllToAll1, 0);
        assert!(a2a.as_ms() > 100.0 && a2a.as_ms() < 1000.0, "a2a {a2a}");
        // Expert chunk is GEMM-bound.
        let e = ts.duration(TaskKind::Expert, 0);
        assert!(e.as_ms() > 100.0 && e.as_ms() < 2000.0, "expert {e}");
    }

    #[test]
    fn table10_shape_holds_in_the_cost_model() {
        // Naive (r=1, fp32, NCCL) vs +ZFP vs +Pipe vs +OptSche must improve
        // monotonically, with compression the largest single win.
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        let naive = naive_makespan(&costs().task_set(&topo, &hw, &NcclA2A, 1));
        let mut zc = costs();
        zc.compression_ratio = 4.0;
        let with_zfp = naive_makespan(&zc.task_set(&topo, &hw, &NcclA2A, 1));
        let with_pipe = naive_makespan(&zc.task_set(&topo, &hw, &PipeA2A::new(), 1));
        let sched_ts = zc.task_set(&topo, &hw, &PipeA2A::new(), 2);
        let full = optsche(2).makespan(&sched_ts).unwrap();
        assert!(with_zfp < naive, "zfp {with_zfp} < naive {naive}");
        assert!(with_pipe < with_zfp, "pipe {with_pipe} < zfp {with_zfp}");
        assert!(full < with_pipe, "sched {full} < pipe {with_pipe}");
        let total_speedup = naive / full;
        assert!(
            (1.8..3.2).contains(&total_speedup),
            "total ablation speedup should be ≈2.4×, got {total_speedup:.2}"
        );
    }
}
