//! Backward-pass task scheduling.
//!
//! "During backpropagation, the data dependency between A2A communication
//! tasks and expert computing tasks is reversed" (paper §2.3). The
//! backward pass of one MoE layer mirrors the forward chain:
//!
//! ```text
//! forward : C1 → A1 → D1 → E  → C2 → A2 → D2
//! backward: C2ᵍ → A2ᵍ → D2ᵍ → Eᵍ → C1ᵍ → A1ᵍ → D1ᵍ
//! ```
//!
//! where the gradient of the *combine* A2A flows first and the gradient of
//! the *dispatch* A2A flows last, and the expert's backward costs roughly
//! twice its forward (the dX and dW GEMMs). Because the chain has the same
//! `comp → comm → comp → comp → comp → comm → comp` shape as the forward
//! pass, Theorem 1's argument applies verbatim with the roles relabelled —
//! which this module encodes and the test suite re-verifies against the
//! exhaustive oracle rather than taking by symmetry.

use schemoe_netsim::SimTime;

use crate::schedule::Schedule;
use crate::schedules::optsche;
use crate::task::{TaskKind, TaskSet};

/// Builds the backward-pass task set from a forward task set.
///
/// Per-chunk durations: compressing a gradient costs what compressing the
/// activation cost (same bytes), the A2As carry the same wire volume, and
/// the expert backward is `expert_backward_scale`× the forward (2.0 for
/// the standard dX+dW pair).
pub fn backward_task_set(forward: &TaskSet, expert_backward_scale: f64) -> TaskSet {
    let r = forward.r();
    let mut out = TaskSet::uniform(
        r,
        forward.duration(TaskKind::Compress1, 0),
        forward.duration(TaskKind::AllToAll1, 0),
        forward.duration(TaskKind::Decompress1, 0),
        forward.duration(TaskKind::Expert, 0) * expert_backward_scale,
    );
    // Preserve any per-chunk overrides.
    for chunk in 0..r {
        for kind in TaskKind::ALL {
            let scale = if kind == TaskKind::Expert {
                expert_backward_scale
            } else {
                1.0
            };
            out.set_duration(kind, chunk, forward.duration(kind, chunk) * scale);
        }
    }
    out
}

/// The optimal backward-pass order.
///
/// Relabelling the reversed chain onto the forward task names (position
/// 1 ↔ gradient-of-C2, etc.) shows the backward problem *is* the forward
/// problem with different durations, so the OptSche order itself is
/// optimal for it; only the semantic labels differ. This function exists
/// to make that reasoning explicit at the call site.
pub fn optsche_backward(r: usize) -> Schedule {
    optsche(r)
}

/// Total simulated time of one layer's forward + backward under OptSche.
pub fn layer_fwd_bwd_makespan(forward: &TaskSet, expert_backward_scale: f64) -> SimTime {
    let r = forward.r();
    let fwd = optsche(r).makespan(forward).expect("optsche is valid");
    let bwd_tasks = backward_task_set(forward, expert_backward_scale);
    let bwd = optsche_backward(r)
        .makespan(&bwd_tasks)
        .expect("optsche is valid");
    fwd + bwd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedules::brute_force_best;

    fn fwd(r: usize) -> TaskSet {
        TaskSet::uniform(
            r,
            SimTime::from_ms(1.5),
            SimTime::from_ms(9.0),
            SimTime::from_ms(2.0),
            SimTime::from_ms(5.0),
        )
    }

    #[test]
    fn backward_doubles_only_the_expert() {
        let f = fwd(2);
        let b = backward_task_set(&f, 2.0);
        assert_eq!(b.duration(TaskKind::Expert, 0), SimTime::from_ms(10.0));
        assert_eq!(
            b.duration(TaskKind::Compress1, 0),
            f.duration(TaskKind::Compress1, 0)
        );
        assert_eq!(
            b.duration(TaskKind::AllToAll1, 1),
            f.duration(TaskKind::AllToAll1, 1)
        );
    }

    #[test]
    fn backward_preserves_per_chunk_overrides() {
        let mut f = fwd(2);
        f.set_duration(TaskKind::AllToAll1, 1, SimTime::from_ms(20.0));
        let b = backward_task_set(&f, 2.0);
        assert_eq!(b.duration(TaskKind::AllToAll1, 1), SimTime::from_ms(20.0));
        assert_eq!(b.duration(TaskKind::AllToAll1, 0), SimTime::from_ms(9.0));
    }

    #[test]
    fn optsche_is_optimal_for_backward_durations_too() {
        // Not by symmetry — by exhaustive search on the backward task set.
        let b = backward_task_set(&fwd(2), 2.0);
        let (_, best) = brute_force_best(&b);
        let opt = optsche_backward(2).makespan(&b).expect("valid");
        assert!((opt.as_secs() - best.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn fwd_bwd_makespan_adds_both_passes() {
        let f = fwd(2);
        let total = layer_fwd_bwd_makespan(&f, 2.0);
        let fwd_only = optsche(2).makespan(&f).expect("valid");
        assert!(total > fwd_only);
        assert!(
            total < fwd_only * 3.0,
            "backward should not triple the layer"
        );
    }
}
