//! A real two-worker overlap executor.
//!
//! The simulator predicts schedules; this executor *runs* them: computing
//! closures execute on the caller thread (the "GPU") while communication
//! closures execute on a dedicated thread (the "network"), with the same
//! dependency discipline as [`crate::Schedule::makespan`]. It is how the
//! functional ScheMoE pipeline gets genuine wall-clock comm/comp overlap.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Which worker a task runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Worker {
    /// The caller's thread (computing tasks).
    Compute,
    /// The background thread (communication tasks).
    Comm,
}

/// A worker died mid-pipeline: one task panicked before it could record a
/// typed error.
///
/// The executor converts the panic into this value instead of propagating
/// it through `thread::scope` (which would abort the whole rank thread and
/// poison nothing useful): remaining tasks are skipped but still marked
/// complete, so the other worker drains and joins cleanly, and the caller
/// gets the failure as a `Result` it can map onto its own error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// The worker whose task died.
    pub worker: Worker,
    /// Index of the dead task in the submitted vector.
    pub task: usize,
    /// The panic payload, stringified.
    pub detail: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} worker died in task {}: {}",
            self.worker, self.task, self.detail
        )
    }
}

impl std::error::Error for ExecError {}

/// Stringifies a panic payload (the common `&str` / `String` cases).
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// One executable task.
///
/// The `'a` lifetime lets task closures borrow from the submitting stack
/// frame (tensors, rank handles), which is what the functional MoE pipeline
/// needs; `run_overlapped` joins every worker before returning, so the
/// borrows cannot escape.
pub struct ExecTask<'a> {
    /// Worker assignment.
    pub worker: Worker,
    /// Indices of tasks (within the submitted vector) that must complete
    /// first.
    pub deps: Vec<usize>,
    /// Observability label: `(category, name)` of the span the executor
    /// records around `run` when the recorder is enabled. `None` runs
    /// unrecorded.
    pub span: Option<(&'static str, String)>,
    /// The work itself.
    pub run: Box<dyn FnOnce() + Send + 'a>,
}

/// A task staged on one worker's queue: (index, deps, span, work).
type Queued<'a> = (
    usize,
    Vec<usize>,
    Option<(&'static str, String)>,
    Box<dyn FnOnce() + Send + 'a>,
);

/// Runs one queued task, recording its labeled span if the recorder is on.
fn run_task(span: Option<(&'static str, String)>, run: Box<dyn FnOnce() + Send + '_>) {
    let _span = match span {
        Some((cat, name)) if schemoe_obs::enabled() => Some(schemoe_obs::span(cat, name)),
        _ => None,
    };
    run();
}

struct DoneBoard {
    done: Mutex<Vec<bool>>,
    cv: Condvar,
}

impl DoneBoard {
    fn wait_for(&self, deps: &[usize]) {
        let mut done = self.done.lock();
        while !deps.iter().all(|&d| done[d]) {
            self.cv.wait(&mut done);
        }
    }

    fn mark(&self, idx: usize) {
        let mut done = self.done.lock();
        done[idx] = true;
        self.cv.notify_all();
    }
}

/// Runs `tasks` to completion with real overlap.
///
/// Tasks assigned to the same worker run in submission order; a task
/// blocks until its dependencies complete. The caller is responsible for
/// submitting a deadlock-free order (e.g. one produced by
/// [`crate::schedules::optsche`]); validating orders up front is the
/// simulator's job.
///
/// A panicking task does not take the pipeline down: the first panic is
/// captured as an [`ExecError`], every not-yet-run task is skipped (but
/// still marked complete so neither worker blocks on a dependency), and
/// the error is returned after both workers join.
pub fn run_overlapped(tasks: Vec<ExecTask<'_>>) -> Result<(), ExecError> {
    run_overlapped_cancellable(tasks, &AtomicBool::new(false))
}

/// Like [`run_overlapped`], but the submitter's task closures can call the
/// rest of the pipeline off by setting `cancel`.
///
/// Once the flag is set, every not-yet-started task is skipped — still
/// marked complete, so neither worker ever blocks on a dependency — and
/// both workers join promptly. This is how the fault-tolerant MoE forward
/// bounds a degraded step: the first lane that hits a dead peer records
/// its typed error and cancels the remaining comm lanes, instead of
/// letting each of them burn a full receive deadline against a peer that
/// is already known to be gone. Cancellation is cooperative and racy by
/// design — a task already running is never interrupted — and a cancelled
/// pipeline returns `Ok`; the submitter reports its own reason for the
/// cancel (the executor has no channel to carry it).
pub fn run_overlapped_cancellable(
    tasks: Vec<ExecTask<'_>>,
    cancel: &AtomicBool,
) -> Result<(), ExecError> {
    let n = tasks.len();
    let board = Arc::new(DoneBoard {
        done: Mutex::new(vec![false; n]),
        cv: Condvar::new(),
    });
    let failure: Arc<Mutex<Option<ExecError>>> = Arc::new(Mutex::new(None));

    let mut comp: Vec<Queued<'_>> = Vec::new();
    let mut comm: Vec<Queued<'_>> = Vec::new();
    for (i, t) in tasks.into_iter().enumerate() {
        match t.worker {
            Worker::Compute => comp.push((i, t.deps, t.span, t.run)),
            Worker::Comm => comm.push((i, t.deps, t.span, t.run)),
        }
    }

    let drain = |worker: Worker, queue: Vec<Queued<'_>>| {
        for (idx, deps, span, run) in queue {
            board.wait_for(&deps);
            if failure.lock().is_none() && !cancel.load(Ordering::Acquire) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run_task(span, run))) {
                    let mut slot = failure.lock();
                    if slot.is_none() {
                        *slot = Some(ExecError {
                            worker,
                            task: idx,
                            detail: panic_detail(payload),
                        });
                    }
                }
            }
            board.mark(idx);
        }
    };

    // The comm thread is a fresh OS thread with no recorder identity; hand
    // it the submitting rank so its spans land on the right Perfetto track.
    let rank = schemoe_obs::thread_rank();
    std::thread::scope(|scope| {
        let drain = &drain;
        scope.spawn(move || {
            if schemoe_obs::enabled() {
                if let Some(r) = rank {
                    schemoe_obs::set_thread_rank(r);
                    schemoe_obs::set_thread_name(format!("rank{r}/comm"));
                }
            }
            drain(Worker::Comm, comm);
        });
        drain(Worker::Compute, comp);
    });

    let err = failure.lock().take();
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn overlap_saves_wall_clock_time() {
        // Comp: 2 × 30 ms; comm: 2 × 30 ms, dependent on the matching comp
        // task. Sequential would be 120 ms; overlapped ≈ 90 ms.
        let mk = |d: u64| -> Box<dyn FnOnce() + Send> {
            Box::new(move || std::thread::sleep(Duration::from_millis(d)))
        };
        let tasks = vec![
            ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: mk(30),
            },
            ExecTask {
                worker: Worker::Comm,
                deps: vec![0],
                span: None,
                run: mk(30),
            },
            ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: mk(30),
            },
            ExecTask {
                worker: Worker::Comm,
                deps: vec![2],
                span: None,
                run: mk(30),
            },
        ];
        let start = Instant::now();
        run_overlapped(tasks).unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(85),
            "too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(115),
            "no overlap: {elapsed:?}"
        );
    }

    #[test]
    fn dependencies_are_respected() {
        let counter = Arc::new(AtomicUsize::new(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mk = |id: usize, counter: &Arc<AtomicUsize>, order: &Arc<Mutex<Vec<usize>>>| {
            let (c, o) = (Arc::clone(counter), Arc::clone(order));
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
                o.lock().push(id);
            }) as Box<dyn FnOnce() + Send>
        };
        let tasks = vec![
            ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: mk(0, &counter, &order),
            },
            ExecTask {
                worker: Worker::Comm,
                deps: vec![0],
                span: None,
                run: mk(1, &counter, &order),
            },
            ExecTask {
                worker: Worker::Compute,
                deps: vec![1],
                span: None,
                run: mk(2, &counter, &order),
            },
        ];
        run_overlapped(tasks).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_task_list_is_a_noop() {
        run_overlapped(Vec::new()).unwrap();
    }

    #[test]
    fn comm_worker_panic_returns_a_typed_error_and_join_survives() {
        let ran_after = Arc::new(AtomicUsize::new(0));
        let tasks = vec![
            ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: Box::new(|| {}),
            },
            ExecTask {
                worker: Worker::Comm,
                deps: vec![0],
                span: None,
                run: Box::new(|| panic!("lane 3 failed: peer rank 2 disconnected")),
            },
            // Depends on the dead task: must be skipped, not run, not hung.
            ExecTask {
                worker: Worker::Compute,
                deps: vec![1],
                span: None,
                run: {
                    let c = Arc::clone(&ran_after);
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                },
            },
        ];
        let err = run_overlapped(tasks).unwrap_err();
        assert_eq!(err.worker, Worker::Comm);
        assert_eq!(err.task, 1);
        assert!(
            err.detail.contains("disconnected"),
            "detail: {}",
            err.detail
        );
        assert_eq!(ran_after.load(Ordering::SeqCst), 0, "dependent task ran");
    }

    #[test]
    fn compute_worker_panic_is_reported_too() {
        let tasks = vec![ExecTask {
            worker: Worker::Compute,
            deps: vec![],
            span: None,
            run: Box::new(|| panic!("expert kernel died")),
        }];
        let err = run_overlapped(tasks).unwrap_err();
        assert_eq!(err.worker, Worker::Compute);
        assert!(err.detail.contains("expert kernel died"));
    }

    #[test]
    fn cancel_skips_the_remaining_tasks_without_wedging_either_worker() {
        // Task 1 (comm) cancels the pipeline; task 2 (compute, dependent on
        // a comm task that never produces) must be skipped — not run, not
        // hung on the dependency — and the run still returns Ok: cancelling
        // is the submitter's verdict, not the executor's.
        let cancel = AtomicBool::new(false);
        let ran_after = Arc::new(AtomicUsize::new(0));
        let tasks = vec![
            ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: Box::new(|| {}),
            },
            ExecTask {
                worker: Worker::Comm,
                deps: vec![0],
                span: None,
                run: Box::new(|| cancel.store(true, Ordering::Release)),
            },
            ExecTask {
                worker: Worker::Comm,
                deps: vec![1],
                span: None,
                run: {
                    let c = Arc::clone(&ran_after);
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                },
            },
            ExecTask {
                worker: Worker::Compute,
                deps: vec![2],
                span: None,
                run: {
                    let c = Arc::clone(&ran_after);
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                },
            },
        ];
        run_overlapped_cancellable(tasks, &cancel).unwrap();
        assert_eq!(ran_after.load(Ordering::SeqCst), 0, "cancelled task ran");
    }

    #[test]
    fn first_failure_wins_and_the_rest_are_skipped() {
        let tasks = vec![
            ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: Box::new(|| panic!("first")),
            },
            ExecTask {
                worker: Worker::Compute,
                deps: vec![0],
                span: None,
                run: Box::new(|| panic!("second")),
            },
        ];
        let err = run_overlapped(tasks).unwrap_err();
        assert_eq!(err.task, 0);
        assert!(err.detail.contains("first"));
    }
}
