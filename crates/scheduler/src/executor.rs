//! A real two-worker overlap executor.
//!
//! The simulator predicts schedules; this executor *runs* them: computing
//! closures execute on the caller thread (the "GPU") while communication
//! closures execute on a dedicated thread (the "network"), with the same
//! dependency discipline as [`crate::Schedule::makespan`]. It is how the
//! functional ScheMoE pipeline gets genuine wall-clock comm/comp overlap.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Which worker a task runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Worker {
    /// The caller's thread (computing tasks).
    Compute,
    /// The background thread (communication tasks).
    Comm,
}

/// One executable task.
///
/// The `'a` lifetime lets task closures borrow from the submitting stack
/// frame (tensors, rank handles), which is what the functional MoE pipeline
/// needs; `run_overlapped` joins every worker before returning, so the
/// borrows cannot escape.
pub struct ExecTask<'a> {
    /// Worker assignment.
    pub worker: Worker,
    /// Indices of tasks (within the submitted vector) that must complete
    /// first.
    pub deps: Vec<usize>,
    /// Observability label: `(category, name)` of the span the executor
    /// records around `run` when the recorder is enabled. `None` runs
    /// unrecorded.
    pub span: Option<(&'static str, String)>,
    /// The work itself.
    pub run: Box<dyn FnOnce() + Send + 'a>,
}

/// A task staged on one worker's queue: (index, deps, span, work).
type Queued<'a> = (
    usize,
    Vec<usize>,
    Option<(&'static str, String)>,
    Box<dyn FnOnce() + Send + 'a>,
);

/// Runs one queued task, recording its labeled span if the recorder is on.
fn run_task(span: Option<(&'static str, String)>, run: Box<dyn FnOnce() + Send + '_>) {
    let _span = match span {
        Some((cat, name)) if schemoe_obs::enabled() => Some(schemoe_obs::span(cat, name)),
        _ => None,
    };
    run();
}

struct DoneBoard {
    done: Mutex<Vec<bool>>,
    cv: Condvar,
}

impl DoneBoard {
    fn wait_for(&self, deps: &[usize]) {
        let mut done = self.done.lock();
        while !deps.iter().all(|&d| done[d]) {
            self.cv.wait(&mut done);
        }
    }

    fn mark(&self, idx: usize) {
        let mut done = self.done.lock();
        done[idx] = true;
        self.cv.notify_all();
    }
}

/// Runs `tasks` to completion with real overlap.
///
/// Tasks assigned to the same worker run in submission order; a task
/// blocks until its dependencies complete. The caller is responsible for
/// submitting a deadlock-free order (e.g. one produced by
/// [`crate::schedules::optsche`]); validating orders up front is the
/// simulator's job.
pub fn run_overlapped(tasks: Vec<ExecTask<'_>>) {
    let n = tasks.len();
    let board = Arc::new(DoneBoard {
        done: Mutex::new(vec![false; n]),
        cv: Condvar::new(),
    });

    let mut comp: Vec<Queued<'_>> = Vec::new();
    let mut comm: Vec<Queued<'_>> = Vec::new();
    for (i, t) in tasks.into_iter().enumerate() {
        match t.worker {
            Worker::Compute => comp.push((i, t.deps, t.span, t.run)),
            Worker::Comm => comm.push((i, t.deps, t.span, t.run)),
        }
    }

    // The comm thread is a fresh OS thread with no recorder identity; hand
    // it the submitting rank so its spans land on the right Perfetto track.
    let rank = schemoe_obs::thread_rank();
    std::thread::scope(|scope| {
        let comm_board = Arc::clone(&board);
        scope.spawn(move || {
            if schemoe_obs::enabled() {
                if let Some(r) = rank {
                    schemoe_obs::set_thread_rank(r);
                    schemoe_obs::set_thread_name(format!("rank{r}/comm"));
                }
            }
            for (idx, deps, span, run) in comm {
                comm_board.wait_for(&deps);
                run_task(span, run);
                comm_board.mark(idx);
            }
        });
        for (idx, deps, span, run) in comp {
            board.wait_for(&deps);
            run_task(span, run);
            board.mark(idx);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn overlap_saves_wall_clock_time() {
        // Comp: 2 × 30 ms; comm: 2 × 30 ms, dependent on the matching comp
        // task. Sequential would be 120 ms; overlapped ≈ 90 ms.
        let mk = |d: u64| -> Box<dyn FnOnce() + Send> {
            Box::new(move || std::thread::sleep(Duration::from_millis(d)))
        };
        let tasks = vec![
            ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: mk(30),
            },
            ExecTask {
                worker: Worker::Comm,
                deps: vec![0],
                span: None,
                run: mk(30),
            },
            ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: mk(30),
            },
            ExecTask {
                worker: Worker::Comm,
                deps: vec![2],
                span: None,
                run: mk(30),
            },
        ];
        let start = Instant::now();
        run_overlapped(tasks);
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(85),
            "too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(115),
            "no overlap: {elapsed:?}"
        );
    }

    #[test]
    fn dependencies_are_respected() {
        let counter = Arc::new(AtomicUsize::new(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mk = |id: usize, counter: &Arc<AtomicUsize>, order: &Arc<Mutex<Vec<usize>>>| {
            let (c, o) = (Arc::clone(counter), Arc::clone(order));
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
                o.lock().push(id);
            }) as Box<dyn FnOnce() + Send>
        };
        let tasks = vec![
            ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: mk(0, &counter, &order),
            },
            ExecTask {
                worker: Worker::Comm,
                deps: vec![0],
                span: None,
                run: mk(1, &counter, &order),
            },
            ExecTask {
                worker: Worker::Compute,
                deps: vec![1],
                span: None,
                run: mk(2, &counter, &order),
            },
        ];
        run_overlapped(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_task_list_is_a_noop() {
        run_overlapped(Vec::new());
    }
}
