//! Schedules and the two-stream makespan evaluator.

use std::fmt;

use schemoe_netsim::{OpId, SimError, SimTime, StreamSim};

use crate::task::{TaskKind, TaskSet};

/// Errors from evaluating a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The computing order is not a permutation of the task set's
    /// computing tasks.
    NotAPermutation,
    /// The order violates the data dependencies (Eq. 4–9) and deadlocks.
    Invalid(SimError),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NotAPermutation => {
                write!(f, "schedule is not a permutation of the computing tasks")
            }
            ScheduleError::Invalid(e) => write!(f, "schedule violates dependencies: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A schedule: a total order of the computing tasks.
///
/// Communication tasks are not ordered by the scheduler — they start as
/// soon as their predecessor finishes, serialized on the network stream in
/// canonical order `A1^1..A1^r, A2^1..A2^r` (paper Eq. 13–14).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// `(kind, chunk)` pairs covering every computing task exactly once.
    pub comp_order: Vec<(TaskKind, usize)>,
}

impl Schedule {
    /// Creates a schedule from an explicit order.
    pub fn new(comp_order: Vec<(TaskKind, usize)>) -> Self {
        Schedule { comp_order }
    }

    /// Renders the order as `C1^1 C1^2 D1^1 ...`.
    pub fn describe(&self) -> String {
        self.comp_order
            .iter()
            .map(|(k, c)| format!("{}^{}", k.label(), c + 1))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Checks the order covers each computing task exactly once for `r`
    /// chunks.
    pub fn is_permutation(&self, r: usize) -> bool {
        if self.comp_order.len() != 5 * r {
            return false;
        }
        let mut seen = vec![[false; 5]; r];
        for &(kind, chunk) in &self.comp_order {
            if kind.is_comm() || chunk >= r {
                return false;
            }
            let pos = TaskKind::COMPUTE
                .iter()
                .position(|&k| k == kind)
                .expect("compute");
            if seen[chunk][pos] {
                return false;
            }
            seen[chunk][pos] = true;
        }
        true
    }

    /// Evaluates the schedule's makespan against a task set.
    pub fn makespan(&self, tasks: &TaskSet) -> Result<SimTime, ScheduleError> {
        Ok(self.trace(tasks)?.makespan())
    }

    /// Simulates the schedule and returns the full execution trace
    /// (per-task intervals on the GPU and network streams) for inspection
    /// or Gantt rendering.
    ///
    /// Compiles onto two streams — GPU (computing, in this schedule's
    /// order) and network (communication, canonical order) — with the
    /// Eq. (4)–(9) dependencies as cross-stream edges, then runs the
    /// discrete-event engine.
    pub fn trace(&self, tasks: &TaskSet) -> Result<schemoe_netsim::Trace, ScheduleError> {
        let r = tasks.r();
        if !self.is_permutation(r) {
            return Err(ScheduleError::NotAPermutation);
        }
        let mut sim = StreamSim::new();
        let comp = sim.stream("gpu");
        let comm = sim.stream("network");

        // Ids are assigned in push order, so they can be computed up front:
        // compute ops take 0..5r in schedule order, comm ops 5r..7r in
        // their own serialization order. Knowing ids in advance lets every
        // Eq. (4)–(9) edge be expressed directly — including forward
        // references, which the engine resolves (and reports genuinely
        // dependency-violating orders as deadlocks).
        let mut id_of = vec![[OpId::from_raw(usize::MAX); 5]; r];
        for (i, &(kind, chunk)) in self.comp_order.iter().enumerate() {
            let pos = TaskKind::COMPUTE
                .iter()
                .position(|&k| k == kind)
                .expect("compute");
            id_of[chunk][pos] = OpId::from_raw(i);
        }

        // Communication serializes FCFS by *issue* order: each A2A becomes
        // ready when its producing compute task finishes, so the network
        // stream processes them ordered by the producer's position in the
        // schedule. For OptSche (all C1s first, C2s in chunk order) this
        // degenerates to exactly the paper's Eq. (13)–(14) serialization
        // A1^1..A1^r, A2^1..A2^r.
        let mut comm_order: Vec<(usize, TaskKind, usize)> = Vec::with_capacity(2 * r);
        for (i, &(kind, chunk)) in self.comp_order.iter().enumerate() {
            match kind {
                TaskKind::Compress1 => comm_order.push((i, TaskKind::AllToAll1, chunk)),
                TaskKind::Compress2 => comm_order.push((i, TaskKind::AllToAll2, chunk)),
                _ => {}
            }
        }
        comm_order.sort_by_key(|&(i, _, _)| i);
        let comm_id = |kind: TaskKind, chunk: usize| {
            let idx = comm_order
                .iter()
                .position(|&(_, k, c)| k == kind && c == chunk)
                .expect("every chunk has both A2As");
            OpId::from_raw(5 * r + idx)
        };

        for &(kind, chunk) in &self.comp_order {
            let deps: Vec<OpId> = match kind {
                TaskKind::Compress1 => vec![],
                TaskKind::Decompress1 => vec![comm_id(TaskKind::AllToAll1, chunk)],
                TaskKind::Expert => vec![id_of[chunk][1]],
                TaskKind::Compress2 => vec![id_of[chunk][2]],
                TaskKind::Decompress2 => vec![comm_id(TaskKind::AllToAll2, chunk)],
                _ => unreachable!("comm kinds rejected by is_permutation"),
            };
            sim.push(
                comp,
                tasks.duration(kind, chunk),
                &deps,
                format!("{}^{}", kind.label(), chunk + 1),
            );
        }
        for &(_, kind, chunk) in &comm_order {
            let producer = if kind == TaskKind::AllToAll1 {
                id_of[chunk][0]
            } else {
                id_of[chunk][3]
            };
            sim.push(
                comm,
                tasks.duration(kind, chunk),
                &[producer],
                format!("{}^{}", kind.label(), chunk + 1),
            );
        }
        sim.run().map_err(ScheduleError::Invalid)
    }

    /// Hidden (overlapped) time relative to the no-overlap execution:
    /// `Σ t(e) − makespan` (paper Eq. 11).
    pub fn hidden_time(&self, tasks: &TaskSet) -> Result<SimTime, ScheduleError> {
        Ok(tasks.total() - self.makespan(tasks)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedules::optsche;

    fn ts(r: usize) -> TaskSet {
        TaskSet::uniform(
            r,
            SimTime::from_ms(1.0),
            SimTime::from_ms(8.0),
            SimTime::from_ms(1.5),
            SimTime::from_ms(4.0),
        )
    }

    #[test]
    fn r1_makespan_is_total() {
        // With one chunk nothing can overlap (Fig. 5a).
        let tasks = ts(1);
        let s = optsche(1);
        assert_eq!(s.makespan(&tasks).unwrap(), tasks.total());
    }

    #[test]
    fn r2_overlaps_and_beats_total() {
        let tasks = ts(2);
        let s = optsche(2);
        let m = s.makespan(&tasks).unwrap();
        assert!(m < tasks.total(), "r=2 must hide some time");
        // Makespan is at least the busier stream.
        assert!(m >= tasks.comm_total());
    }

    #[test]
    fn non_permutation_is_rejected() {
        let tasks = ts(2);
        let s = Schedule::new(vec![(TaskKind::Compress1, 0)]);
        assert_eq!(
            s.makespan(&tasks).unwrap_err(),
            ScheduleError::NotAPermutation
        );
        let s = Schedule::new(vec![
            (TaskKind::Compress1, 0),
            (TaskKind::Compress1, 0),
            (TaskKind::Decompress1, 0),
            (TaskKind::Expert, 0),
            (TaskKind::Compress2, 0),
            (TaskKind::Decompress2, 0),
            (TaskKind::Compress1, 1),
            (TaskKind::Decompress1, 1),
            (TaskKind::Expert, 1),
            (TaskKind::Compress2, 1),
        ]);
        assert_eq!(
            s.makespan(&tasks).unwrap_err(),
            ScheduleError::NotAPermutation
        );
    }

    #[test]
    fn dependency_violating_order_deadlocks() {
        // D1^1 scheduled before C1^1: A1^1 can never run.
        let tasks = ts(1);
        let s = Schedule::new(vec![
            (TaskKind::Decompress1, 0),
            (TaskKind::Compress1, 0),
            (TaskKind::Expert, 0),
            (TaskKind::Compress2, 0),
            (TaskKind::Decompress2, 0),
        ]);
        assert!(matches!(s.makespan(&tasks), Err(ScheduleError::Invalid(_))));
    }

    #[test]
    fn describe_is_readable() {
        let s = optsche(2);
        assert_eq!(
            s.describe(),
            "C1^1 C1^2 D1^1 E^1 C2^1 D1^2 E^2 C2^2 D2^1 D2^2"
        );
    }

    #[test]
    fn hidden_time_is_total_minus_makespan() {
        let tasks = ts(2);
        let s = optsche(2);
        let h = s.hidden_time(&tasks).unwrap();
        assert_eq!(h, tasks.total() - s.makespan(&tasks).unwrap());
        assert!(h > SimTime::ZERO);
    }
}
