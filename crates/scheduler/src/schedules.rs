//! The schedule zoo: naive, stage-major, OptSche, and brute force.

use schemoe_netsim::SimTime;

use crate::schedule::Schedule;
use crate::task::{TaskKind, TaskSet};

/// The no-overlap execution time (paper Eq. 10): every task serialized.
///
/// This is the "Naive" row of the ablation (Table 10) — the default
/// execution order with `r = 1` semantics, where no communication hides
/// behind computation.
pub fn naive_makespan(tasks: &TaskSet) -> SimTime {
    tasks.total()
}

/// The stage-major pipelined schedule: all `C1`s, all `D1`s, all `E`s, all
/// `C2`s, all `D2`s.
///
/// This is the natural order existing systems fall into when they pipeline
/// stage by stage (Fig. 3b): correct, and it overlaps some communication,
/// but it delays `C2^1` behind every other chunk's expert, so the combine
/// all-to-alls start later than necessary.
pub fn stage_major(r: usize) -> Schedule {
    let mut order = Vec::with_capacity(5 * r);
    for kind in TaskKind::COMPUTE {
        for chunk in 0..r {
            order.push((kind, chunk));
        }
    }
    Schedule::new(order)
}

/// **OptSche** (Theorem 1): the provably optimal order
/// `(C1^1..C1^r)(D1^1 E^1 C2^1)...(D1^r E^r C2^r)(D2^1..D2^r)`.
///
/// All first compressions run up front so the dispatch all-to-alls start
/// as early as possible; then each chunk's decompress→expert→compress runs
/// as a unit so its combine all-to-all is unblocked at the earliest
/// moment; final decompressions run last (nothing depends on them).
pub fn optsche(r: usize) -> Schedule {
    let mut order = Vec::with_capacity(5 * r);
    for chunk in 0..r {
        order.push((TaskKind::Compress1, chunk));
    }
    for chunk in 0..r {
        order.push((TaskKind::Decompress1, chunk));
        order.push((TaskKind::Expert, chunk));
        order.push((TaskKind::Compress2, chunk));
    }
    for chunk in 0..r {
        order.push((TaskKind::Decompress2, chunk));
    }
    Schedule::new(order)
}

/// Exhaustive search over every dependency-respecting computing order.
///
/// Enumerates all interleavings of the `r` per-chunk chains
/// `C1 ≺ D1 ≺ E ≺ C2 ≺ D2` (other orders deadlock and can never win),
/// evaluates each, and returns the best `(schedule, makespan)`.
///
/// Exponential in `r` — this is the optimality *oracle* for tests and the
/// Fig. 5 reproduction, not a production scheduler.
pub fn brute_force_best(tasks: &TaskSet) -> (Schedule, SimTime) {
    let r = tasks.r();
    let mut best: Option<(Schedule, SimTime)> = None;
    let mut progress = vec![0usize; r];
    let mut order: Vec<(TaskKind, usize)> = Vec::with_capacity(5 * r);
    fn rec(
        progress: &mut Vec<usize>,
        order: &mut Vec<(TaskKind, usize)>,
        tasks: &TaskSet,
        best: &mut Option<(Schedule, SimTime)>,
    ) {
        let r = progress.len();
        if order.len() == 5 * r {
            let s = Schedule::new(order.clone());
            let m = s
                .makespan(tasks)
                .expect("chain-respecting orders are valid");
            if best.as_ref().is_none_or(|(_, bm)| m < *bm) {
                *best = Some((s, m));
            }
            return;
        }
        for chunk in 0..r {
            if progress[chunk] < 5 {
                let kind = TaskKind::COMPUTE[progress[chunk]];
                progress[chunk] += 1;
                order.push((kind, chunk));
                rec(progress, order, tasks, best);
                order.pop();
                progress[chunk] -= 1;
            }
        }
    }
    rec(&mut progress, &mut order, tasks, &mut best);
    best.expect("at least one valid order exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(r: usize, comm_ms: f64) -> TaskSet {
        TaskSet::uniform(
            r,
            SimTime::from_ms(1.0),
            SimTime::from_ms(comm_ms),
            SimTime::from_ms(1.5),
            SimTime::from_ms(4.0),
        )
    }

    #[test]
    fn optsche_matches_theorem_order_for_r3() {
        assert_eq!(
            optsche(3).describe(),
            "C1^1 C1^2 C1^3 D1^1 E^1 C2^1 D1^2 E^2 C2^2 D1^3 E^3 C2^3 D2^1 D2^2 D2^3"
        );
    }

    #[test]
    fn all_schedules_are_valid_permutations() {
        for r in 1..5 {
            assert!(optsche(r).is_permutation(r));
            assert!(stage_major(r).is_permutation(r));
        }
    }

    #[test]
    fn optsche_beats_or_ties_stage_major() {
        for comm_ms in [0.5, 2.0, 8.0, 30.0] {
            for r in [2usize, 3, 4] {
                let tasks = ts(r, comm_ms);
                let o = optsche(r).makespan(&tasks).unwrap();
                let s = stage_major(r).makespan(&tasks).unwrap();
                assert!(
                    o <= s + SimTime::from_us(0.001),
                    "r={r} comm={comm_ms}ms: optsche {o} > stage-major {s}"
                );
            }
        }
    }

    #[test]
    fn optsche_is_strictly_better_when_comm_matters() {
        // With comm comparable to compute and r=2, the stage-major order
        // delays A2^1 and loses outright.
        let tasks = ts(2, 6.0);
        let o = optsche(2).makespan(&tasks).unwrap();
        let s = stage_major(2).makespan(&tasks).unwrap();
        assert!(o < s, "optsche {o} should strictly beat stage-major {s}");
    }

    #[test]
    fn brute_force_confirms_theorem_1_r2() {
        // Over a grid of duration profiles, no valid order beats OptSche.
        for (c, a, d, e) in [
            (1.0, 8.0, 1.5, 4.0),
            (2.0, 2.0, 2.0, 2.0),
            (0.1, 20.0, 0.1, 1.0),
            (5.0, 1.0, 5.0, 10.0),
            (1.0, 15.0, 3.0, 0.5),
        ] {
            let tasks = TaskSet::uniform(
                2,
                SimTime::from_ms(c),
                SimTime::from_ms(a),
                SimTime::from_ms(d),
                SimTime::from_ms(e),
            );
            let (_best_s, best_m) = brute_force_best(&tasks);
            let opt_m = optsche(2).makespan(&tasks).unwrap();
            assert!(
                (opt_m.as_secs() - best_m.as_secs()).abs() < 1e-12,
                "profile ({c},{a},{d},{e}): optsche {opt_m} vs brute-force {best_m}"
            );
        }
    }

    #[test]
    fn naive_is_never_faster() {
        let tasks = ts(3, 5.0);
        let o = optsche(3).makespan(&tasks).unwrap();
        assert!(o <= naive_makespan(&tasks));
    }
}
