//! The MoE task taxonomy and per-chunk duration sets.

use schemoe_netsim::SimTime;

/// The seven task types of one MoE layer pass (paper Eq. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskKind {
    /// First data compression `C1` (before dispatch).
    Compress1,
    /// Dispatch all-to-all `A1`.
    AllToAll1,
    /// First decompression `D1` (after dispatch).
    Decompress1,
    /// Expert computation `E`.
    Expert,
    /// Second compression `C2` (before combine).
    Compress2,
    /// Combine all-to-all `A2`.
    AllToAll2,
    /// Second decompression `D2` (after combine).
    Decompress2,
}

impl TaskKind {
    /// All kinds in data-dependency order.
    pub const ALL: [TaskKind; 7] = [
        TaskKind::Compress1,
        TaskKind::AllToAll1,
        TaskKind::Decompress1,
        TaskKind::Expert,
        TaskKind::Compress2,
        TaskKind::AllToAll2,
        TaskKind::Decompress2,
    ];

    /// Computing-task kinds only, in dependency order.
    pub const COMPUTE: [TaskKind; 5] = [
        TaskKind::Compress1,
        TaskKind::Decompress1,
        TaskKind::Expert,
        TaskKind::Compress2,
        TaskKind::Decompress2,
    ];

    /// Whether the task occupies the network (a CommTask).
    pub fn is_comm(self) -> bool {
        matches!(self, TaskKind::AllToAll1 | TaskKind::AllToAll2)
    }

    /// The immediately preceding kind in the per-chunk dependency chain,
    /// or `None` for `C1`.
    pub fn predecessor(self) -> Option<TaskKind> {
        let all = TaskKind::ALL;
        let pos = all.iter().position(|&k| k == self).expect("kind in ALL");
        if pos == 0 {
            None
        } else {
            Some(all[pos - 1])
        }
    }

    /// Short label (`C1`, `A1`, ...).
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::Compress1 => "C1",
            TaskKind::AllToAll1 => "A1",
            TaskKind::Decompress1 => "D1",
            TaskKind::Expert => "E",
            TaskKind::Compress2 => "C2",
            TaskKind::AllToAll2 => "A2",
            TaskKind::Decompress2 => "D2",
        }
    }
}

/// Durations for the `7 × r` tasks of one MoE layer pass.
///
/// Chunks are equal-size partitions of the input (the paper's setting), so
/// one duration per kind suffices; per-chunk overrides are available for
/// experiments with non-uniform splits.
#[derive(Clone, Debug)]
pub struct TaskSet {
    r: usize,
    /// Duration per kind per chunk; `durations[kind_pos][chunk]`.
    durations: Vec<Vec<SimTime>>,
}

impl TaskSet {
    /// Creates a set with `r` chunks, every chunk of a kind equal.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn uniform(
        r: usize,
        compress: SimTime,
        a2a: SimTime,
        decompress: SimTime,
        expert: SimTime,
    ) -> Self {
        assert!(r > 0, "at least one chunk required");
        let per_kind = |t: SimTime| vec![t; r];
        TaskSet {
            r,
            durations: vec![
                per_kind(compress),
                per_kind(a2a),
                per_kind(decompress),
                per_kind(expert),
                per_kind(compress),
                per_kind(a2a),
                per_kind(decompress),
            ],
        }
    }

    /// Number of chunks `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Duration of `(kind, chunk)`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= r`.
    pub fn duration(&self, kind: TaskKind, chunk: usize) -> SimTime {
        let pos = TaskKind::ALL.iter().position(|&k| k == kind).expect("kind");
        self.durations[pos][chunk]
    }

    /// Overrides the duration of one `(kind, chunk)` task.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= r`.
    pub fn set_duration(&mut self, kind: TaskKind, chunk: usize, t: SimTime) {
        let pos = TaskKind::ALL.iter().position(|&k| k == kind).expect("kind");
        self.durations[pos][chunk] = t;
    }

    /// Sum of all task durations (the no-overlap time, Eq. 10).
    pub fn total(&self) -> SimTime {
        self.durations.iter().flatten().copied().sum()
    }

    /// Sum of communication durations only.
    pub fn comm_total(&self) -> SimTime {
        TaskKind::ALL
            .iter()
            .filter(|k| k.is_comm())
            .flat_map(|&k| (0..self.r).map(move |c| self.duration(k, c)))
            .sum()
    }

    /// Sum of computing durations only.
    pub fn comp_total(&self) -> SimTime {
        self.total() - self.comm_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_partition_into_comm_and_comp() {
        let comm: Vec<_> = TaskKind::ALL.iter().filter(|k| k.is_comm()).collect();
        assert_eq!(comm.len(), 2);
        assert_eq!(TaskKind::COMPUTE.len(), 5);
        assert!(TaskKind::COMPUTE.iter().all(|k| !k.is_comm()));
    }

    #[test]
    fn predecessor_chain_is_the_pipeline() {
        assert_eq!(TaskKind::Compress1.predecessor(), None);
        assert_eq!(TaskKind::AllToAll1.predecessor(), Some(TaskKind::Compress1));
        assert_eq!(
            TaskKind::Decompress2.predecessor(),
            Some(TaskKind::AllToAll2)
        );
    }

    #[test]
    fn totals_add_up() {
        let ts = TaskSet::uniform(
            2,
            SimTime::from_ms(1.0),
            SimTime::from_ms(10.0),
            SimTime::from_ms(2.0),
            SimTime::from_ms(5.0),
        );
        // Per chunk: 1+10+2+5+1+10+2 = 31; ×2 chunks = 62.
        assert!((ts.total().as_ms() - 62.0).abs() < 1e-9);
        assert!((ts.comm_total().as_ms() - 40.0).abs() < 1e-9);
        assert!((ts.comp_total().as_ms() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn per_chunk_override() {
        let mut ts = TaskSet::uniform(
            2,
            SimTime::from_ms(1.0),
            SimTime::from_ms(1.0),
            SimTime::from_ms(1.0),
            SimTime::from_ms(1.0),
        );
        ts.set_duration(TaskKind::Expert, 1, SimTime::from_ms(9.0));
        assert_eq!(ts.duration(TaskKind::Expert, 0), SimTime::from_ms(1.0));
        assert_eq!(ts.duration(TaskKind::Expert, 1), SimTime::from_ms(9.0));
    }
}
