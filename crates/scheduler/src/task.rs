//! The MoE task taxonomy and per-chunk duration sets.

use schemoe_netsim::SimTime;

/// The seven task types of one MoE layer pass (paper Eq. 3), plus their
/// backward-pass mirrors (paper §2.3: the dependency between A2A and
/// expert tasks is reversed, but the task taxonomy is the same shape).
///
/// Forward kinds and backward kinds are modelled independently: a
/// gradient exchange travels uncompressed and the expert backward runs
/// the dX+dW pair, so their durations share nothing with the forward
/// stages beyond the pipeline structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskKind {
    /// First data compression `C1` (before dispatch).
    Compress1,
    /// Dispatch all-to-all `A1`.
    AllToAll1,
    /// First decompression `D1` (after dispatch).
    Decompress1,
    /// Expert computation `E`.
    Expert,
    /// Second compression `C2` (before combine).
    Compress2,
    /// Combine all-to-all `A2`.
    AllToAll2,
    /// Second decompression `D2` (after combine).
    Decompress2,
    /// Backward: combine-gradient build + encode `C1b`.
    BwdCompress1,
    /// Backward: output-gradient all-to-all `A1b` (lane `LANE_BWD_GRAD`).
    BwdAllToAll1,
    /// Backward: gradient decode `D1b`.
    BwdDecompress1,
    /// Backward: expert dX+dW computation `Eb`.
    BwdExpert,
    /// Backward: input-gradient build + encode `C2b`.
    BwdCompress2,
    /// Backward: input-gradient all-to-all `A2b` (lane `LANE_BWD_RETURN`).
    BwdAllToAll2,
    /// Backward: input-gradient decode + scatter `D2b`.
    BwdDecompress2,
}

impl TaskKind {
    /// All *forward* kinds in data-dependency order. ([`TaskSet`] and the
    /// schedule zoo are defined over this seven-kind pipeline; backward
    /// durations are mapped onto the same positions by
    /// [`crate::backward`].)
    pub const ALL: [TaskKind; 7] = [
        TaskKind::Compress1,
        TaskKind::AllToAll1,
        TaskKind::Decompress1,
        TaskKind::Expert,
        TaskKind::Compress2,
        TaskKind::AllToAll2,
        TaskKind::Decompress2,
    ];

    /// Forward computing-task kinds only, in dependency order.
    pub const COMPUTE: [TaskKind; 5] = [
        TaskKind::Compress1,
        TaskKind::Decompress1,
        TaskKind::Expert,
        TaskKind::Compress2,
        TaskKind::Decompress2,
    ];

    /// The backward-pass kinds in data-dependency order, mirroring
    /// [`Self::ALL`] position by position.
    pub const BACKWARD: [TaskKind; 7] = [
        TaskKind::BwdCompress1,
        TaskKind::BwdAllToAll1,
        TaskKind::BwdDecompress1,
        TaskKind::BwdExpert,
        TaskKind::BwdCompress2,
        TaskKind::BwdAllToAll2,
        TaskKind::BwdDecompress2,
    ];

    /// Whether the task occupies the network (a CommTask).
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            TaskKind::AllToAll1
                | TaskKind::AllToAll2
                | TaskKind::BwdAllToAll1
                | TaskKind::BwdAllToAll2
        )
    }

    /// Whether this is a backward-pass kind.
    pub fn is_backward(self) -> bool {
        TaskKind::BACKWARD.contains(&self)
    }

    /// The forward kind occupying the same pipeline position as this
    /// backward kind (identity for forward kinds). This is how backward
    /// durations are laid into a [`TaskSet`], whose positions are the
    /// forward pipeline's.
    pub fn forward_position(self) -> TaskKind {
        match TaskKind::BACKWARD.iter().position(|&k| k == self) {
            Some(pos) => TaskKind::ALL[pos],
            None => self,
        }
    }

    /// The immediately preceding kind in the per-chunk dependency chain,
    /// or `None` for the chain head (`C1` / `C1b`).
    pub fn predecessor(self) -> Option<TaskKind> {
        let chain: &[TaskKind] = if self.is_backward() {
            &TaskKind::BACKWARD
        } else {
            &TaskKind::ALL
        };
        let pos = chain
            .iter()
            .position(|&k| k == self)
            .expect("kind in chain");
        if pos == 0 {
            None
        } else {
            Some(chain[pos - 1])
        }
    }

    /// Short label (`C1`, `A1`, ..., `C1b`, `A1b`, ...).
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::Compress1 => "C1",
            TaskKind::AllToAll1 => "A1",
            TaskKind::Decompress1 => "D1",
            TaskKind::Expert => "E",
            TaskKind::Compress2 => "C2",
            TaskKind::AllToAll2 => "A2",
            TaskKind::Decompress2 => "D2",
            TaskKind::BwdCompress1 => "C1b",
            TaskKind::BwdAllToAll1 => "A1b",
            TaskKind::BwdDecompress1 => "D1b",
            TaskKind::BwdExpert => "Eb",
            TaskKind::BwdCompress2 => "C2b",
            TaskKind::BwdAllToAll2 => "A2b",
            TaskKind::BwdDecompress2 => "D2b",
        }
    }
}

/// Durations for the `7 × r` tasks of one MoE layer pass.
///
/// Chunks are equal-size partitions of the input (the paper's setting), so
/// one duration per kind suffices; per-chunk overrides are available for
/// experiments with non-uniform splits.
///
/// Positions are the *forward* pipeline's; a backward pass is represented
/// by a second `TaskSet` holding backward durations in the same positions
/// (see [`crate::backward`]). Backward [`TaskKind`]s are accepted by
/// [`duration`](Self::duration) / [`set_duration`](Self::set_duration) and
/// map onto their mirrored position.
#[derive(Clone, Debug)]
pub struct TaskSet {
    r: usize,
    /// Duration per kind per chunk; `durations[kind_pos][chunk]`.
    durations: Vec<Vec<SimTime>>,
}

impl TaskSet {
    /// Creates a set with `r` chunks, every chunk of a kind equal, and the
    /// combine half mirroring the dispatch half (`C2 = C1`, `A2 = A1`,
    /// `D2 = D1`) — the paper's symmetric-payload setting.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn uniform(
        r: usize,
        compress: SimTime,
        a2a: SimTime,
        decompress: SimTime,
        expert: SimTime,
    ) -> Self {
        Self::per_stage(
            r,
            [compress, a2a, decompress, expert, compress, a2a, decompress],
        )
    }

    /// Creates a set with `r` chunks from seven independent per-stage
    /// durations in [`TaskKind::ALL`] order (`C1, A1, D1, E, C2, A2, D2`).
    ///
    /// Unlike [`uniform`](Self::uniform) this does not mirror the dispatch
    /// half onto the combine half, so top-k fan-in asymmetry (combine
    /// bytes ≠ dispatch bytes) is representable.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn per_stage(r: usize, stages: [SimTime; 7]) -> Self {
        assert!(r > 0, "at least one chunk required");
        TaskSet {
            r,
            durations: stages.iter().map(|&t| vec![t; r]).collect(),
        }
    }

    /// Number of chunks `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    fn pos(kind: TaskKind) -> usize {
        let fwd = kind.forward_position();
        TaskKind::ALL
            .iter()
            .position(|&k| k == fwd)
            .expect("forward_position lands in ALL")
    }

    /// Duration of `(kind, chunk)`. Backward kinds address the mirrored
    /// forward position.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= r`.
    pub fn duration(&self, kind: TaskKind, chunk: usize) -> SimTime {
        self.durations[Self::pos(kind)][chunk]
    }

    /// Overrides the duration of one `(kind, chunk)` task. Backward kinds
    /// address the mirrored forward position.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= r`.
    pub fn set_duration(&mut self, kind: TaskKind, chunk: usize, t: SimTime) {
        self.durations[Self::pos(kind)][chunk] = t;
    }

    /// Sum of all task durations (the no-overlap time, Eq. 10).
    pub fn total(&self) -> SimTime {
        self.durations.iter().flatten().copied().sum()
    }

    /// Sum of communication durations only.
    pub fn comm_total(&self) -> SimTime {
        TaskKind::ALL
            .iter()
            .filter(|k| k.is_comm())
            .flat_map(|&k| (0..self.r).map(move |c| self.duration(k, c)))
            .sum()
    }

    /// Sum of computing durations only.
    pub fn comp_total(&self) -> SimTime {
        self.total() - self.comm_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_partition_into_comm_and_comp() {
        let comm: Vec<_> = TaskKind::ALL.iter().filter(|k| k.is_comm()).collect();
        assert_eq!(comm.len(), 2);
        assert_eq!(TaskKind::COMPUTE.len(), 5);
        assert!(TaskKind::COMPUTE.iter().all(|k| !k.is_comm()));
    }

    #[test]
    fn predecessor_chain_is_the_pipeline() {
        assert_eq!(TaskKind::Compress1.predecessor(), None);
        assert_eq!(TaskKind::AllToAll1.predecessor(), Some(TaskKind::Compress1));
        assert_eq!(
            TaskKind::Decompress2.predecessor(),
            Some(TaskKind::AllToAll2)
        );
    }

    #[test]
    fn totals_add_up() {
        let ts = TaskSet::uniform(
            2,
            SimTime::from_ms(1.0),
            SimTime::from_ms(10.0),
            SimTime::from_ms(2.0),
            SimTime::from_ms(5.0),
        );
        // Per chunk: 1+10+2+5+1+10+2 = 31; ×2 chunks = 62.
        assert!((ts.total().as_ms() - 62.0).abs() < 1e-9);
        assert!((ts.comm_total().as_ms() - 40.0).abs() < 1e-9);
        assert!((ts.comp_total().as_ms() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn per_chunk_override() {
        let mut ts = TaskSet::uniform(
            2,
            SimTime::from_ms(1.0),
            SimTime::from_ms(1.0),
            SimTime::from_ms(1.0),
            SimTime::from_ms(1.0),
        );
        ts.set_duration(TaskKind::Expert, 1, SimTime::from_ms(9.0));
        assert_eq!(ts.duration(TaskKind::Expert, 0), SimTime::from_ms(1.0));
        assert_eq!(ts.duration(TaskKind::Expert, 1), SimTime::from_ms(9.0));
    }
}
