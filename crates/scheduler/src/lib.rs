//! Task scheduling for MoE layers: the paper's §3–§4 framework.
//!
//! An MoE layer decomposes into seven task types per input partition
//! (paper Eq. 3): compress → A2A → decompress → expert → compress → A2A →
//! decompress. With the input split into `r` chunks there are `7r` tasks
//! whose data dependencies are Eq. (4)–(9); computing tasks share the GPU
//! and communication tasks share the network, so one of each may run
//! concurrently.
//!
//! This crate provides:
//!
//! * [`TaskKind`] / [`TaskSet`] — the task taxonomy with per-chunk
//!   durations.
//! * [`Schedule`] — a total order of the computing tasks (communication
//!   fires as soon as ready, Eq. 13–14), plus the makespan evaluator that
//!   compiles a schedule onto the two-stream simulator.
//! * [`schedules`] — the schedule zoo: the no-overlap baseline, the
//!   stage-major pipeline existing systems use, **OptSche** (Theorem 1),
//!   and an exhaustive-search oracle used to verify OptSche's optimality.
//! * [`Profiler`] — per-task-kind linear performance models fitted from
//!   recorded samples (§3.2).
//! * [`costs`] — builds a [`TaskSet`] for a concrete layer configuration
//!   from a hardware profile, an A2A algorithm, and a codec ratio.
//! * [`executor`] — a real two-worker overlap executor that runs closures
//!   in a schedule's order with genuine wall-clock comm/comp overlap.

pub mod backward;
pub mod costs;
pub mod executor;
pub mod profiler;
pub mod schedule;
pub mod schedules;
pub mod task;

pub use backward::{backward_task_set, layer_fwd_bwd_makespan, optsche_backward};
pub use costs::MoeLayerCosts;
pub use profiler::{span_kind, Profiler};
pub use schedule::{Schedule, ScheduleError};
pub use schedules::{brute_force_best, naive_makespan, optsche, stage_major};
pub use task::{TaskKind, TaskSet};
