//! The profiler: per-task-kind performance models (paper §3.2).

use std::collections::HashMap;

use schemoe_netsim::cost::LinearModel;
use schemoe_netsim::SimTime;

use crate::task::TaskKind;

/// Records `(size, time)` samples per task kind and fits `t = a + b·size`
/// models on demand.
///
/// "Size" is task-type specific: bytes for compression and A2A, FLOPs for
/// experts. The scheduler only needs *predicted durations*, so the unit is
/// opaque here as long as recording and prediction agree.
#[derive(Debug, Default)]
pub struct Profiler {
    samples: HashMap<TaskKind, Vec<(f64, f64)>>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Records one observation of a task of `kind` at `size` taking `t`.
    pub fn record(&mut self, kind: TaskKind, size: f64, t: SimTime) {
        self.samples
            .entry(kind)
            .or_default()
            .push((size, t.as_secs()));
    }

    /// Number of samples recorded for `kind`.
    pub fn sample_count(&self, kind: TaskKind) -> usize {
        self.samples.get(&kind).map_or(0, Vec::len)
    }

    /// Fits the linear model for `kind`; `None` until two distinct sizes
    /// have been recorded.
    pub fn model(&self, kind: TaskKind) -> Option<LinearModel> {
        LinearModel::fit(self.samples.get(&kind)?)
    }

    /// Predicts the duration of a task of `kind` at `size`.
    ///
    /// Falls back to the mean of recorded samples when the model is
    /// unidentifiable (all samples at one size), and to zero with no data.
    pub fn predict(&self, kind: TaskKind, size: f64) -> SimTime {
        if let Some(m) = self.model(kind) {
            return m.predict(size);
        }
        match self.samples.get(&kind) {
            Some(s) if !s.is_empty() => {
                SimTime::from_secs(s.iter().map(|p| p.1).sum::<f64>() / s.len() as f64)
            }
            _ => SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_task_model() {
        let mut p = Profiler::new();
        for i in 1..=8u32 {
            let size = i as f64 * 1e6;
            p.record(
                TaskKind::AllToAll1,
                size,
                SimTime::from_secs(1e-4 + size * 1e-9),
            );
        }
        assert_eq!(p.sample_count(TaskKind::AllToAll1), 8);
        let m = p.model(TaskKind::AllToAll1).unwrap();
        assert!((m.a - 1e-4).abs() < 1e-7);
        assert!((m.b - 1e-9).abs() < 1e-12);
        let pred = p.predict(TaskKind::AllToAll1, 20e6);
        assert!((pred.as_secs() - (1e-4 + 0.02)).abs() < 1e-6);
    }

    #[test]
    fn single_size_falls_back_to_mean() {
        let mut p = Profiler::new();
        p.record(TaskKind::Expert, 100.0, SimTime::from_ms(2.0));
        p.record(TaskKind::Expert, 100.0, SimTime::from_ms(4.0));
        assert!(p.model(TaskKind::Expert).is_none());
        assert_eq!(p.predict(TaskKind::Expert, 100.0), SimTime::from_ms(3.0));
    }

    #[test]
    fn unknown_kind_predicts_zero() {
        let p = Profiler::new();
        assert_eq!(p.predict(TaskKind::Compress1, 1e6), SimTime::ZERO);
    }

    #[test]
    fn kinds_are_modelled_independently() {
        let mut p = Profiler::new();
        p.record(TaskKind::Compress1, 1.0, SimTime::from_ms(1.0));
        p.record(TaskKind::Compress1, 2.0, SimTime::from_ms(2.0));
        p.record(TaskKind::Decompress1, 1.0, SimTime::from_ms(10.0));
        p.record(TaskKind::Decompress1, 2.0, SimTime::from_ms(20.0));
        assert!(p.predict(TaskKind::Decompress1, 3.0) > p.predict(TaskKind::Compress1, 3.0));
    }
}
