//! The profiler: per-task-kind performance models (paper §3.2).

use std::collections::HashMap;

use schemoe_netsim::cost::LinearModel;
use schemoe_netsim::SimTime;
use schemoe_obs::FuncTrace;

use crate::task::TaskKind;

/// The [`TaskKind`] a recorded span feeds, if any.
///
/// The MoE pipeline names its stage spans `"C1"`, `"A1[c3]"`, etc. — the
/// stage mnemonic, optionally followed by a bracketed chunk index. The part
/// before `'['` identifies the kind; backward-pass spans use distinct
/// mnemonics (`"A1b"`) and feed the backward kinds, never the forward
/// models.
pub fn span_kind(name: &str) -> Option<TaskKind> {
    let stem = name.split('[').next().unwrap_or(name);
    match stem {
        "C1" => Some(TaskKind::Compress1),
        "A1" => Some(TaskKind::AllToAll1),
        "D1" => Some(TaskKind::Decompress1),
        "E" => Some(TaskKind::Expert),
        "C2" => Some(TaskKind::Compress2),
        "A2" => Some(TaskKind::AllToAll2),
        "D2" => Some(TaskKind::Decompress2),
        "C1b" => Some(TaskKind::BwdCompress1),
        "A1b" => Some(TaskKind::BwdAllToAll1),
        "D1b" => Some(TaskKind::BwdDecompress1),
        "Eb" => Some(TaskKind::BwdExpert),
        "C2b" => Some(TaskKind::BwdCompress2),
        "A2b" => Some(TaskKind::BwdAllToAll2),
        "D2b" => Some(TaskKind::BwdDecompress2),
        _ => None,
    }
}

/// Records `(size, time)` samples per task kind and fits `t = a + b·size`
/// models on demand.
///
/// "Size" is task-type specific: bytes for compression and A2A, FLOPs for
/// experts. The scheduler only needs *predicted durations*, so the unit is
/// opaque here as long as recording and prediction agree.
#[derive(Debug, Default)]
pub struct Profiler {
    samples: HashMap<TaskKind, Vec<(f64, f64)>>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Records one observation of a task of `kind` at `size` taking `t`.
    pub fn record(&mut self, kind: TaskKind, size: f64, t: SimTime) {
        self.samples
            .entry(kind)
            .or_default()
            .push((size, t.as_secs()));
    }

    /// Number of samples recorded for `kind`.
    pub fn sample_count(&self, kind: TaskKind) -> usize {
        self.samples.get(&kind).map_or(0, Vec::len)
    }

    /// Whether `kind` has at least one sample (so [`predict`](Self::predict)
    /// returns `Some`).
    pub fn covers(&self, kind: TaskKind) -> bool {
        self.sample_count(kind) > 0
    }

    /// The kinds in `kinds` that have no samples yet — the coverage gap a
    /// caller must close (or refuse to decide on) before trusting a
    /// makespan comparison.
    pub fn missing_kinds(&self, kinds: &[TaskKind]) -> Vec<TaskKind> {
        kinds.iter().copied().filter(|&k| !self.covers(k)).collect()
    }

    /// Feeds every stage span of a measured trace into the models.
    ///
    /// This is the measured-side closing of the paper's profiling loop: the
    /// same spans the recorder captures for the Perfetto timeline become
    /// `(size, time)` samples for [`TaskKind`] prediction, so OptSche plans
    /// future steps from what the hardware actually did. Spans whose names
    /// are not stage mnemonics (fabric sends, trainer phases, …) are
    /// ignored. Returns the number of samples ingested.
    pub fn ingest_trace(&mut self, trace: &FuncTrace) -> usize {
        let mut n = 0;
        for s in &trace.spans {
            if let Some(kind) = span_kind(&s.name) {
                self.record(kind, s.size, SimTime::from_secs(s.dur_us * 1e-6));
                n += 1;
            }
        }
        n
    }

    /// Fits the linear model for `kind`; `None` until two distinct sizes
    /// have been recorded.
    pub fn model(&self, kind: TaskKind) -> Option<LinearModel> {
        LinearModel::fit(self.samples.get(&kind)?)
    }

    /// Predicts the duration of a task of `kind` at `size`.
    ///
    /// Falls back to the mean of recorded samples when the model is
    /// unidentifiable (all samples at one size). Returns `None` when the
    /// kind has no samples at all: an unmeasured stage is *unknown*, not
    /// free, and callers comparing makespans must treat missing coverage as
    /// "cannot decide" rather than zero cost (the old zero-cost fallback
    /// made `choose_degree` over-pipeline whenever one kind was unsampled).
    pub fn predict(&self, kind: TaskKind, size: f64) -> Option<SimTime> {
        if let Some(m) = self.model(kind) {
            return Some(m.predict(size));
        }
        let s = self.samples.get(&kind)?;
        if s.is_empty() {
            return None;
        }
        Some(SimTime::from_secs(
            s.iter().map(|p| p.1).sum::<f64>() / s.len() as f64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_task_model() {
        let mut p = Profiler::new();
        for i in 1..=8u32 {
            let size = i as f64 * 1e6;
            p.record(
                TaskKind::AllToAll1,
                size,
                SimTime::from_secs(1e-4 + size * 1e-9),
            );
        }
        assert_eq!(p.sample_count(TaskKind::AllToAll1), 8);
        let m = p.model(TaskKind::AllToAll1).unwrap();
        assert!((m.a - 1e-4).abs() < 1e-7);
        assert!((m.b - 1e-9).abs() < 1e-12);
        let pred = p.predict(TaskKind::AllToAll1, 20e6).unwrap();
        assert!((pred.as_secs() - (1e-4 + 0.02)).abs() < 1e-6);
    }

    #[test]
    fn single_size_falls_back_to_mean() {
        let mut p = Profiler::new();
        p.record(TaskKind::Expert, 100.0, SimTime::from_ms(2.0));
        p.record(TaskKind::Expert, 100.0, SimTime::from_ms(4.0));
        assert!(p.model(TaskKind::Expert).is_none());
        assert_eq!(
            p.predict(TaskKind::Expert, 100.0),
            Some(SimTime::from_ms(3.0))
        );
    }

    #[test]
    fn unknown_kind_predicts_none_not_zero() {
        let p = Profiler::new();
        assert_eq!(p.predict(TaskKind::Compress1, 1e6), None);
        assert!(!p.covers(TaskKind::Compress1));
        assert_eq!(
            p.missing_kinds(&TaskKind::ALL),
            TaskKind::ALL.to_vec(),
            "everything is missing on an empty profiler"
        );
    }

    #[test]
    fn coverage_tracks_recorded_kinds() {
        let mut p = Profiler::new();
        for k in TaskKind::ALL {
            if k != TaskKind::AllToAll2 {
                p.record(k, 1.0, SimTime::from_ms(1.0));
            }
        }
        assert_eq!(p.missing_kinds(&TaskKind::ALL), vec![TaskKind::AllToAll2]);
        assert!(p.covers(TaskKind::Compress1));
    }

    #[test]
    fn ingests_stage_spans_and_skips_the_rest() {
        let mk = |name: &str, size: f64, dur_us: f64| schemoe_obs::SpanRecord {
            cat: "a2a",
            name: name.to_string(),
            rank: 0,
            thread: "t".to_string(),
            start_us: 0.0,
            dur_us,
            size,
            depth: 0,
        };
        let trace = FuncTrace {
            spans: vec![
                mk("A1[c0]", 1e6, 1_000.0),
                mk("A1[c1]", 2e6, 2_000.0),
                mk("E[c0]", 5e5, 700.0),
                // Not a stage mnemonic: fabric send.
                mk("send->3", 1e6, 50.0),
                // Backward A2A feeds the backward kind, not the forward one.
                mk("A1b[c0]", 1e6, 900.0),
            ],
            counters: Vec::new(),
            routing: Vec::new(),
        };
        let mut p = Profiler::new();
        assert_eq!(p.ingest_trace(&trace), 4);
        assert_eq!(p.sample_count(TaskKind::AllToAll1), 2);
        assert_eq!(p.sample_count(TaskKind::BwdAllToAll1), 1);
        assert_eq!(p.sample_count(TaskKind::Expert), 1);
        // Two distinct A1 sizes identify a model: 1 ms per MB, no offset.
        let pred = p.predict(TaskKind::AllToAll1, 4e6).unwrap();
        assert!((pred.as_secs() - 4e-3).abs() < 1e-9, "{pred:?}");
    }

    #[test]
    fn backward_spans_never_feed_forward_models() {
        let mut p = Profiler::new();
        p.record(TaskKind::BwdAllToAll1, 1e6, SimTime::from_ms(9.0));
        assert_eq!(p.sample_count(TaskKind::AllToAll1), 0);
        assert_eq!(p.predict(TaskKind::AllToAll1, 1e6), None);
    }

    #[test]
    fn kinds_are_modelled_independently() {
        let mut p = Profiler::new();
        p.record(TaskKind::Compress1, 1.0, SimTime::from_ms(1.0));
        p.record(TaskKind::Compress1, 2.0, SimTime::from_ms(2.0));
        p.record(TaskKind::Decompress1, 1.0, SimTime::from_ms(10.0));
        p.record(TaskKind::Decompress1, 2.0, SimTime::from_ms(20.0));
        assert!(p.predict(TaskKind::Decompress1, 3.0) > p.predict(TaskKind::Compress1, 3.0));
    }
}
