//! Property-based verification of Theorem 1: OptSche is optimal.

use proptest::prelude::*;
use schemoe_netsim::SimTime;
use schemoe_scheduler::{brute_force_best, naive_makespan, optsche, stage_major, TaskSet};

fn random_tasks(r: usize) -> impl Strategy<Value = TaskSet> {
    (0.01f64..20.0, 0.01f64..50.0, 0.01f64..20.0, 0.01f64..50.0).prop_map(move |(c, a, d, e)| {
        TaskSet::uniform(
            r,
            SimTime::from_ms(c),
            SimTime::from_ms(a),
            SimTime::from_ms(d),
            SimTime::from_ms(e),
        )
    })
}

proptest! {
    /// Theorem 1 for r = 2: exhaustive search over all 252 valid orders
    /// never beats the OptSche order, for arbitrary task durations.
    #[test]
    fn optsche_is_optimal_for_r2(tasks in random_tasks(2)) {
        let (_, best) = brute_force_best(&tasks);
        let opt = optsche(2).makespan(&tasks).unwrap();
        prop_assert!(
            opt.as_secs() <= best.as_secs() + 1e-12,
            "optsche {} worse than brute-force {}",
            opt, best
        );
    }

    /// Theorem 1 for r = 3 (756k orders is too many to enumerate per case,
    /// so this samples fewer cases).
    #[test]
    #[ignore = "slow: enumerates 756k schedules per case; run with --ignored"]
    fn optsche_is_optimal_for_r3(tasks in random_tasks(3)) {
        let (_, best) = brute_force_best(&tasks);
        let opt = optsche(3).makespan(&tasks).unwrap();
        prop_assert!(opt.as_secs() <= best.as_secs() + 1e-12);
    }

    /// Sanity ordering for all r: optimal ≤ stage-major ≤ naive, and the
    /// makespan is bounded below by both stream totals.
    #[test]
    fn schedule_ordering_invariants(tasks in random_tasks(3)) {
        let opt = optsche(3).makespan(&tasks).unwrap();
        let stage = stage_major(3).makespan(&tasks).unwrap();
        let naive = naive_makespan(&tasks);
        prop_assert!(opt.as_secs() <= stage.as_secs() + 1e-12);
        prop_assert!(stage.as_secs() <= naive.as_secs() + 1e-12);
        prop_assert!(opt.as_secs() + 1e-12 >= tasks.comm_total().as_secs());
        prop_assert!(opt.as_secs() + 1e-12 >= tasks.comp_total().as_secs());
    }

    /// Exchanging any two adjacent computing tasks in the OptSche order
    /// (when still dependency-valid) never shortens the makespan — the
    /// paper's local-optimality argument in the proof of Theorem 1.
    #[test]
    fn optsche_is_locally_unimprovable(tasks in random_tasks(2), i in 0usize..9) {
        let base = optsche(2);
        let opt = base.makespan(&tasks).unwrap();
        let mut swapped = base.clone();
        swapped.comp_order.swap(i, i + 1);
        // An Err means the swap violated dependencies: not a valid rival.
        if let Ok(m) = swapped.makespan(&tasks) {
            prop_assert!(
                m.as_secs() >= opt.as_secs() - 1e-12,
                "swap at {} improved {} -> {}",
                i, opt, m
            );
        }
    }
}
