//! Property-based tests shared by every codec.

use proptest::prelude::*;
use schemoe_compression::{
    Compressor, Fp16Compressor, Int8Compressor, NoCompression, ZfpCompressor,
};

fn codecs() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(NoCompression),
        Box::new(Fp16Compressor),
        Box::new(Int8Compressor),
        Box::new(ZfpCompressor::default()),
        Box::new(ZfpCompressor::new(12)),
    ]
}

proptest! {
    /// Every codec's wire size matches its `compressed_len` contract and
    /// decoding returns exactly the requested element count.
    #[test]
    fn sizes_and_counts_are_exact(data in proptest::collection::vec(-100.0f32..100.0, 0..200)) {
        for codec in codecs() {
            let wire = codec.compress(&data);
            prop_assert_eq!(
                wire.len(),
                codec.compressed_len(data.len()),
                "codec {}",
                codec.name()
            );
            let back = codec.decompress(&wire, data.len()).unwrap();
            prop_assert_eq!(back.len(), data.len());
        }
    }

    /// Lossy error never exceeds each codec's documented bound.
    #[test]
    fn error_bounds_hold(data in proptest::collection::vec(-1000.0f32..1000.0, 1..128)) {
        let absmax = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));

        // fp32: exact.
        let wire = NoCompression.compress(&data);
        prop_assert_eq!(NoCompression.decompress(&wire, data.len()).unwrap(), data.clone());

        // fp16: relative error ≤ 2^-11 per value (plus subnormal flushing,
        // irrelevant at these magnitudes).
        let wire = Fp16Compressor.compress(&data);
        let back = Fp16Compressor.decompress(&wire, data.len()).unwrap();
        for (a, b) in data.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() <= a.abs() / 2048.0 + 1e-4);
        }

        // int8: error ≤ half a quantization step of the tensor absmax.
        let int8 = Int8Compressor;
        let wire = int8.compress(&data);
        let back = int8.decompress(&wire, data.len()).unwrap();
        for (a, b) in data.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() <= absmax / 127.0 / 2.0 + 1e-5);
        }

        // zfp: error ≤ blockmax / qmax per block.
        let zfp = ZfpCompressor::default();
        let wire = zfp.compress(&data);
        let back = zfp.decompress(&wire, data.len()).unwrap();
        for (block_idx, chunk) in data.chunks(8).enumerate() {
            let m = chunk.iter().fold(0.0f32, |a, v| a.max(v.abs()));
            for (i, v) in chunk.iter().enumerate() {
                let got = back[block_idx * 8 + i];
                prop_assert!(
                    (got - v).abs() <= m / 63.0 * 1.001 + 1e-7,
                    "codec zfp block {} elem {}: {} -> {}",
                    block_idx, i, v, got
                );
            }
        }
    }

    /// Compressing twice produces identical bytes (codecs are pure).
    #[test]
    fn compression_is_deterministic(data in proptest::collection::vec(-10.0f32..10.0, 0..64)) {
        for codec in codecs() {
            prop_assert_eq!(codec.compress(&data), codec.compress(&data));
        }
    }

    /// A second round trip is a fixed point: decode(encode(decode(encode(x))))
    /// equals decode(encode(x)) for every codec (idempotent quantization).
    #[test]
    fn requantization_is_idempotent(data in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        for codec in codecs() {
            let once = codec.decompress(&codec.compress(&data), data.len()).unwrap();
            let twice = codec.decompress(&codec.compress(&once), once.len()).unwrap();
            for (a, b) in once.iter().zip(twice.iter()) {
                prop_assert!(
                    (a - b).abs() <= a.abs() * 1e-3 + 1e-6,
                    "codec {} not idempotent: {} vs {}",
                    codec.name(), a, b
                );
            }
        }
    }
}
