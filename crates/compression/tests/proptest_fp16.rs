//! Property-based tests for the fp16 codec's edge cases, checked against
//! an independent round-to-nearest-even reference built on the half grid.
//!
//! The reference encoder never mirrors the bit-twiddling of the
//! implementation: it binary-searches the actual f16 value grid (bit
//! patterns of non-negative finite halves are monotone in value) and
//! compares against midpoints, which are exactly representable in f64, so
//! every nearest/tie decision is exact.

use proptest::prelude::*;
use schemoe_compression::{f16_bits_to_f32, f32_to_f16_bits, Compressor, Fp16Compressor};

const MAX_FINITE: u16 = 0x7bff; // 65504.0
const QNAN: u16 = 0x7e00;

/// Reference nearest-even encoder over the decoded half grid.
fn reference_f32_to_f16_bits(v: f32) -> u16 {
    let sign = if v.is_sign_negative() { 0x8000u16 } else { 0 };
    if v.is_nan() {
        return sign | QNAN;
    }
    let a = v.abs() as f64;
    let val = |p: u16| f16_bits_to_f32(p) as f64;
    let top = val(MAX_FINITE);
    if a >= top {
        // The grid point after 65504 would be 65536 (top-binade spacing
        // 32); its midpoint 65520 is exact in f64. The tie goes to the
        // even pattern, which is infinity (0x7c00).
        let mid = top + 16.0;
        return if a >= mid {
            sign | 0x7c00
        } else {
            sign | MAX_FINITE
        };
    }
    // Find lo with val(lo) <= a < val(lo + 1).
    let (mut lo, mut hi) = (0u16, MAX_FINITE);
    while hi - lo > 1 {
        let m = lo + (hi - lo) / 2;
        if val(m) <= a {
            lo = m;
        } else {
            hi = m;
        }
    }
    // Midpoints carry one extra significand bit over the grid, still
    // exact in f64, so these comparisons decide rounding exactly.
    let mid = (val(lo) + val(lo + 1)) / 2.0;
    let pick = if a < mid {
        lo
    } else if a > mid {
        lo + 1
    } else if lo & 1 == 0 {
        lo // tie: the even pattern
    } else {
        lo + 1
    };
    sign | pick
}

fn check_against_reference(v: f32) {
    let got = f32_to_f16_bits(v);
    let want = reference_f32_to_f16_bits(v);
    assert_eq!(
        got,
        want,
        "encode({v}) = {got:#06x}, reference says {want:#06x} (bits {:#010x})",
        v.to_bits()
    );
}

/// All 65536 half patterns decode/re-encode exactly (NaNs canonicalize).
#[test]
fn exhaustive_half_grid_round_trips() {
    for h in 0..=u16::MAX {
        let v = f16_bits_to_f32(h);
        let back = f32_to_f16_bits(v);
        let is_nan = (h >> 10) & 0x1f == 0x1f && h & 0x3ff != 0;
        if is_nan {
            assert!(v.is_nan(), "pattern {h:#06x} should decode to NaN");
            assert_eq!(back, (h & 0x8000) | QNAN, "NaN {h:#06x} canonicalizes");
        } else {
            assert_eq!(back, h, "pattern {h:#06x} decoded to {v}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary f32 bit patterns — including NaN payloads, infinities,
    /// and f32 subnormals — encode exactly as the reference says.
    #[test]
    fn arbitrary_bits_match_reference(bits in 0u32..=u32::MAX) {
        check_against_reference(f32::from_bits(bits));
    }

    /// The subnormal/underflow boundary: f32 exponents spanning below,
    /// across, and above the half-subnormal range (unbiased -31..=-10),
    /// with low mantissa bits forced onto and around tie patterns.
    #[test]
    fn subnormal_boundary_matches_reference(
        sign in 0u32..2,
        exp in 96u32..=117,
        hi in 0u32..=0x3ff,
        low_idx in 0usize..5,
    ) {
        let low = [0u32, 0x0fff, 0x1000, 0x1001, 0x1fff][low_idx];
        let bits = (sign << 31) | (exp << 23) | (hi << 13) | low;
        check_against_reference(f32::from_bits(bits));
    }

    /// Mantissa overflow into the exponent: near-all-ones mantissas that
    /// round up and carry, across the whole half range including the
    /// overflow-to-infinity edge at unbiased +15.
    #[test]
    fn mantissa_carry_matches_reference(
        sign in 0u32..2,
        exp in 96u32..=145,
        mant in 0x7fc000u32..=0x7fffff,
    ) {
        let bits = (sign << 31) | (exp << 23) | mant;
        check_against_reference(f32::from_bits(bits));
    }

    /// Ties-to-even: discarded bits exactly 0b1_0000_0000_0000 keep an
    /// even retained mantissa and bump an odd one.
    #[test]
    fn exact_ties_round_to_even(
        sign in 0u32..2,
        exp in 113u32..=141,
        hi in 0u32..=0x3ff,
    ) {
        let bits = (sign << 31) | (exp << 23) | (hi << 13) | 0x1000;
        let v = f32::from_bits(bits);
        check_against_reference(v);
        // Independent of the reference: the retained mantissa is even.
        let h = f32_to_f16_bits(v);
        if (h >> 10) & 0x1f != 0x1f {
            prop_assert_eq!(h & 1, 0, "tie {:e} kept odd mantissa {:#06x}", v, h);
        }
    }

    /// Encoding is idempotent: re-encoding the decoded half reproduces it.
    #[test]
    fn encode_is_idempotent(bits in 0u32..=u32::MAX) {
        let h = f32_to_f16_bits(f32::from_bits(bits));
        prop_assert_eq!(f32_to_f16_bits(f16_bits_to_f32(h)), h);
    }

    /// Normal-range relative error stays within a half ulp, 2^-11.
    #[test]
    fn normal_range_relative_error_bound(
        sign in 0u32..2,
        exp in 113u32..=142,
        mant in 0u32..=0x7fffff,
    ) {
        let v = f32::from_bits((sign << 31) | (exp << 23) | mant);
        let back = f16_bits_to_f32(f32_to_f16_bits(v));
        if back.is_finite() {
            let rel = ((back as f64 - v as f64) / v as f64).abs();
            prop_assert!(rel <= 1.0 / 2048.0, "v={} back={} rel={}", v, back, rel);
        } else {
            // Only the overflow tail of the top binade may saturate.
            prop_assert!(v.abs() >= 65520.0, "v={} saturated early", v);
        }
    }

    /// The streaming codec agrees elementwise with the scalar conversion.
    #[test]
    fn codec_matches_scalar_conversion(bits in proptest::collection::vec(0u32..=u32::MAX, 0..64)) {
        let data: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let c = Fp16Compressor;
        let back = c.decompress(&c.compress(&data), data.len()).unwrap();
        for (i, (&v, &b)) in data.iter().zip(back.iter()).enumerate() {
            let want = f16_bits_to_f32(f32_to_f16_bits(v));
            if want.is_nan() {
                prop_assert!(b.is_nan(), "elem {}: {} -> {}", i, v, b);
            } else {
                prop_assert_eq!(b.to_bits(), want.to_bits(), "elem {}: {}", i, v);
            }
        }
    }
}
