//! Pluggable A2A payload compressors (the paper's `AbsCompressor`).
//!
//! ScheMoE treats data compression as a first-class schedulable task: the
//! tokens entering an all-to-all are compressed on the sender, shipped,
//! and decompressed on the receiver (§3.1). This crate provides the
//! [`Compressor`] abstraction and the four codecs the paper evaluates in
//! Table 6:
//!
//! | Codec | Rate | Lossy | Paper verdict |
//! |---|---|---|---|
//! | [`NoCompression`] | 1× | no | baseline (`MoE`) |
//! | [`Fp16Compressor`] | 2× | yes | "almost no impact" |
//! | [`Int8Compressor`] | ~4× | yes | "dramatic performance decrease" |
//! | [`ZfpCompressor`] | 4× | yes | "preserves model accuracy" |
//!
//! The `ZfpCompressor` here is a from-scratch fixed-rate block
//! floating-point codec in the spirit of ZFP (Lindstrom 2014): values are
//! grouped into blocks that share one exponent and keep truncated signed
//! mantissas, giving a hard per-block relative error bound. The original
//! ZFP library is C++ and unavailable offline; the substitution preserves
//! what the paper relies on — a transform codec at ~8 bits/value whose
//! error is relative to the local data magnitude rather than the global
//! tensor scale (which is exactly why it beats [`Int8Compressor`]'s
//! per-tensor scaling in convergence).

mod fp16;
mod identity;
mod int8;
mod zfp;

pub use fp16::{f16_bits_to_f32, f32_to_f16_bits, Fp16Compressor};
pub use identity::NoCompression;
pub use int8::Int8Compressor;
pub use zfp::ZfpCompressor;

use bytes::Bytes;
use std::fmt;

/// Errors produced when decoding a compressed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressionError {
    /// The payload length is inconsistent with the expected element count.
    CorruptPayload {
        /// Codec that rejected the payload.
        codec: &'static str,
        /// Expected compressed byte length.
        expected: usize,
        /// Actual payload length.
        actual: usize,
    },
}

impl fmt::Display for CompressionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressionError::CorruptPayload {
                codec,
                expected,
                actual,
            } => write!(f, "{codec}: payload of {actual} bytes, expected {expected}"),
        }
    }
}

impl std::error::Error for CompressionError {}

/// The `AbsCompressor` abstraction: a reversible (possibly lossy) transform
/// between `f32` tensors and wire bytes.
///
/// Implementations must be stateless and thread-safe: the same compressor
/// object is shared by every rank of the fabric and by the scheduler's
/// cost models.
pub trait Compressor: Send + Sync {
    /// Stable codec name used in reports and registries.
    fn name(&self) -> &'static str;

    /// Encodes `data` into wire bytes.
    fn compress(&self, data: &[f32]) -> Bytes;

    /// Decodes exactly `n_elems` values from `payload`.
    fn decompress(&self, payload: &[u8], n_elems: usize) -> Result<Vec<f32>, CompressionError>;

    /// Exact compressed size in bytes for `n_elems` values.
    fn compressed_len(&self, n_elems: usize) -> usize;

    /// `true` when `decompress(compress(x)) == x` bit-for-bit for finite
    /// inputs.
    fn is_lossless(&self) -> bool;

    /// Nominal input/output size ratio, used by the performance simulator.
    fn ratio(&self) -> f64 {
        if self.compressed_len(4096) == 0 {
            1.0
        } else {
            (4096.0 * 4.0) / self.compressed_len(4096) as f64
        }
    }
}

/// Round-trips `data` through a codec and returns the maximum absolute error.
///
/// Test and diagnostics helper.
///
/// # Panics
///
/// Panics if the codec rejects its own output.
pub fn roundtrip_max_error(codec: &dyn Compressor, data: &[f32]) -> f32 {
    let wire = codec.compress(data);
    let back = codec
        .decompress(&wire, data.len())
        .expect("self round-trip");
    data.iter()
        .zip(back.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_the_paper_table() {
        assert!((NoCompression.ratio() - 1.0).abs() < 1e-9);
        assert!((Fp16Compressor.ratio() - 2.0).abs() < 1e-9);
        let int8 = Int8Compressor;
        assert!(int8.ratio() > 3.5, "INT8 ratio {}", int8.ratio());
        let zfp = ZfpCompressor::default();
        assert!(
            (zfp.ratio() - 4.0).abs() < 0.05,
            "ZFP ratio {}",
            zfp.ratio()
        );
    }

    #[test]
    fn only_identity_is_lossless() {
        assert!(NoCompression.is_lossless());
        assert!(!Fp16Compressor.is_lossless());
        assert!(!Int8Compressor.is_lossless());
        assert!(!ZfpCompressor::default().is_lossless());
    }
}
