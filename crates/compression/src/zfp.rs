//! Fixed-rate block floating-point codec in the spirit of ZFP.

use bytes::Bytes;

use crate::{CompressionError, Compressor};

/// Values per block sharing one exponent.
const BLOCK: usize = 8;

/// A fixed-rate lossy codec: blocks of 8 values share one exponent byte and
/// keep `mantissa_bits`-bit signed mantissas.
///
/// With the default 7-bit mantissas a block costs `1 + 7` bytes for 8
/// values — exactly 8 bits/value, the 4× rate the paper measures for ZFP
/// (§6.2). The error bound is *per block*: for every value `v` in a block
/// whose largest magnitude is `m`,
///
/// ```text
/// |decode(encode(v)) - v| ≤ m / (2^(mantissa_bits - 1) - 1)
/// ```
///
/// so quantization noise scales with the local neighbourhood, not with the
/// whole tensor. That locality is what preserves convergence where the
/// per-tensor-scaled [`crate::Int8Compressor`] fails (Table 6).
///
/// Wire format per block: one exponent byte `e + 127` (0 ⇒ the encoder's
/// chosen exponent was −127, which also covers the all-zero block), then
/// `mantissa_bits` bytes of bit-packed two's-complement mantissas.
#[derive(Clone, Copy, Debug)]
pub struct ZfpCompressor {
    mantissa_bits: u32,
}

impl ZfpCompressor {
    /// Creates a codec with the given mantissa width.
    ///
    /// # Panics
    ///
    /// Panics unless `4 ≤ mantissa_bits ≤ 16`.
    pub fn new(mantissa_bits: u32) -> Self {
        assert!(
            (4..=16).contains(&mantissa_bits),
            "mantissa_bits {mantissa_bits} outside 4..=16"
        );
        ZfpCompressor { mantissa_bits }
    }

    /// Mantissa width in bits.
    pub fn mantissa_bits(&self) -> u32 {
        self.mantissa_bits
    }

    /// Largest representable mantissa magnitude.
    fn qmax(&self) -> i32 {
        (1 << (self.mantissa_bits - 1)) - 1
    }

    fn block_bytes(&self) -> usize {
        1 + self.mantissa_bits as usize
    }
}

impl Default for ZfpCompressor {
    /// The paper's operating point: 8 bits/value, 4× compression.
    fn default() -> Self {
        ZfpCompressor::new(7)
    }
}

impl Compressor for ZfpCompressor {
    fn name(&self) -> &'static str {
        "zfp"
    }

    fn compress(&self, data: &[f32]) -> Bytes {
        let qmax = self.qmax();
        let mb = self.mantissa_bits;
        let mut out = Vec::with_capacity(self.compressed_len(data.len()));
        for chunk in data.chunks(BLOCK) {
            let absmax = chunk.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            // Exponent e such that step = 2^e ≥ absmax / qmax.
            let e = if absmax > 0.0 {
                ((absmax / qmax as f32).log2().ceil() as i32).clamp(-127, 127)
            } else {
                -127
            };
            out.push((e + 127) as u8);
            let step = (e as f32).exp2();
            // Bit-pack `mb`-bit two's-complement mantissas, LSB-first.
            let mut acc: u64 = 0;
            let mut nbits: u32 = 0;
            let mask = (1u64 << mb) - 1;
            for i in 0..BLOCK {
                let v = chunk.get(i).copied().unwrap_or(0.0);
                let q = (v / step).round().clamp(-(qmax as f32), qmax as f32) as i32;
                acc |= ((q as u64) & mask) << nbits;
                nbits += mb;
                while nbits >= 8 {
                    out.push((acc & 0xff) as u8);
                    acc >>= 8;
                    nbits -= 8;
                }
            }
            debug_assert_eq!(nbits, 0, "8 values x {mb} bits is byte aligned");
        }
        Bytes::from(out)
    }

    fn decompress(&self, payload: &[u8], n_elems: usize) -> Result<Vec<f32>, CompressionError> {
        let expected = self.compressed_len(n_elems);
        if payload.len() != expected {
            return Err(CompressionError::CorruptPayload {
                codec: "zfp",
                expected,
                actual: payload.len(),
            });
        }
        let mb = self.mantissa_bits;
        let sign_bit = 1u64 << (mb - 1);
        let mask = (1u64 << mb) - 1;
        let mut out = Vec::with_capacity(n_elems);
        for (bi, block) in payload.chunks(self.block_bytes()).enumerate() {
            let e = block[0] as i32 - 127;
            let step = (e as f32).exp2();
            let mut acc: u64 = 0;
            let mut nbits: u32 = 0;
            let mut next_byte = 1usize;
            for i in 0..BLOCK {
                if bi * BLOCK + i >= n_elems {
                    break;
                }
                while nbits < mb {
                    acc |= (block[next_byte] as u64) << nbits;
                    next_byte += 1;
                    nbits += 8;
                }
                let raw = acc & mask;
                acc >>= mb;
                nbits -= mb;
                // Sign-extend.
                let q = if raw & sign_bit != 0 {
                    (raw as i64 - (1i64 << mb)) as i32
                } else {
                    raw as i32
                };
                out.push(q as f32 * step);
            }
        }
        Ok(out)
    }

    fn compressed_len(&self, n_elems: usize) -> usize {
        n_elems.div_ceil(BLOCK) * self.block_bytes()
    }

    fn is_lossless(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roundtrip_max_error;

    #[test]
    fn default_rate_is_4x() {
        let z = ZfpCompressor::default();
        assert_eq!(z.compressed_len(8), 8);
        assert_eq!(z.compressed_len(4096), 4096);
    }

    #[test]
    fn per_block_error_bound_holds() {
        let z = ZfpCompressor::default();
        let data: Vec<f32> = (0..64)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.173)
            .collect();
        let wire = z.compress(&data);
        let back = z.decompress(&wire, data.len()).unwrap();
        for (block_idx, chunk) in data.chunks(8).enumerate() {
            let m = chunk.iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let bound = m / 63.0 + 1e-7;
            for (i, v) in chunk.iter().enumerate() {
                let got = back[block_idx * 8 + i];
                assert!(
                    (got - v).abs() <= bound,
                    "block {block_idx} elem {i}: {v} -> {got}, bound {bound}"
                );
            }
        }
    }

    #[test]
    fn outlier_only_hurts_its_own_block() {
        // The INT8 failure case from Table 6 does not apply here: small
        // values in *other* blocks keep full relative precision.
        let z = ZfpCompressor::default();
        let mut data = vec![0.01f32; 64];
        data[0] = 100.0;
        let wire = z.compress(&data);
        let back = z.decompress(&wire, 64).unwrap();
        // Values in the outlier's block are coarse...
        assert!((back[1] - 0.01).abs() > 1e-4);
        // ...but every other block retains ~1.6% relative accuracy.
        for i in 8..64 {
            assert!(
                (back[i] - 0.01).abs() <= 0.01 / 63.0 + 1e-7,
                "elem {i}: {}",
                back[i]
            );
        }
    }

    #[test]
    fn zero_blocks_are_exact() {
        let z = ZfpCompressor::default();
        assert_eq!(roundtrip_max_error(&z, &[0.0f32; 32]), 0.0);
    }

    #[test]
    fn partial_final_block_round_trips() {
        let z = ZfpCompressor::default();
        let data = [1.0f32, -2.0, 3.0]; // 3 of 8 slots used.
        let wire = z.compress(&data);
        assert_eq!(wire.len(), z.compressed_len(3));
        let back = z.decompress(&wire, 3).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in data.iter().zip(back.iter()) {
            assert!((a - b).abs() <= 3.0 / 63.0 + 1e-6);
        }
    }

    #[test]
    fn higher_rate_is_more_accurate() {
        let data: Vec<f32> = (0..128).map(|i| (i as f32 * 0.77).sin()).collect();
        let coarse = roundtrip_max_error(&ZfpCompressor::new(5), &data);
        let medium = roundtrip_max_error(&ZfpCompressor::new(7), &data);
        let fine = roundtrip_max_error(&ZfpCompressor::new(12), &data);
        assert!(
            fine < medium && medium < coarse,
            "{fine} < {medium} < {coarse}"
        );
    }

    #[test]
    fn huge_and_tiny_magnitudes_survive() {
        let z = ZfpCompressor::default();
        let data = [1e30f32, -1e30, 1e-30, -1e-30, 0.0, 1e30, 1e-30, 0.5];
        let wire = z.compress(&data);
        let back = z.decompress(&wire, 8).unwrap();
        // All in one block: bound is 1e30/63.
        for (a, b) in data.iter().zip(back.iter()) {
            assert!((a - b).abs() <= 1e30 / 63.0 * 1.01);
        }
    }

    #[test]
    fn wrong_length_is_rejected() {
        let z = ZfpCompressor::default();
        assert!(matches!(
            z.decompress(&[0u8; 3], 8),
            Err(CompressionError::CorruptPayload { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "outside 4..=16")]
    fn silly_rates_are_rejected() {
        ZfpCompressor::new(2);
    }
}
