//! The lossless pass-through codec (plain little-endian `f32`).

use bytes::Bytes;

use crate::{CompressionError, Compressor};

/// No compression: values are shipped as little-endian `f32` bytes.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCompression;

impl Compressor for NoCompression {
    fn name(&self) -> &'static str {
        "fp32"
    }

    fn compress(&self, data: &[f32]) -> Bytes {
        let mut out = Vec::with_capacity(data.len() * 4);
        for v in data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Bytes::from(out)
    }

    fn decompress(&self, payload: &[u8], n_elems: usize) -> Result<Vec<f32>, CompressionError> {
        if payload.len() != n_elems * 4 {
            return Err(CompressionError::CorruptPayload {
                codec: "fp32",
                expected: n_elems * 4,
                actual: payload.len(),
            });
        }
        Ok(payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn compressed_len(&self, n_elems: usize) -> usize {
        n_elems * 4
    }

    fn is_lossless(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_exact() {
        let data = [1.5f32, -2.25, 0.0, f32::MIN_POSITIVE, 3.4e38];
        let wire = NoCompression.compress(&data);
        assert_eq!(wire.len(), 20);
        let back = NoCompression.decompress(&wire, 5).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn wrong_length_is_rejected() {
        let err = NoCompression.decompress(&[0u8; 7], 2).unwrap_err();
        assert!(matches!(err, CompressionError::CorruptPayload { .. }));
    }

    #[test]
    fn empty_input_round_trips() {
        let wire = NoCompression.compress(&[]);
        assert!(wire.is_empty());
        assert!(NoCompression.decompress(&wire, 0).unwrap().is_empty());
    }
}
