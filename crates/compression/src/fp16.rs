//! IEEE 754 half-precision codec, implemented from scratch.

use bytes::Bytes;

use crate::{CompressionError, Compressor};

/// Converts an `f32` to IEEE 754 binary16 bits with round-to-nearest-even.
///
/// Handles normals, subnormals, overflow to infinity, and NaN (quieted).
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf or NaN.
        return if mant == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00
        };
    }
    // Re-bias: f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflow to infinity.
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        // Normalized half. Round mantissa from 23 to 10 bits, ties to even.
        let mut m = mant >> 13;
        let rest = mant & 0x1fff;
        if rest > 0x1000 || (rest == 0x1000 && (m & 1) == 1) {
            m += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if m == 0x400 {
            // Mantissa rounding overflowed into the exponent.
            m = 0;
            e += 1;
            if e >= 0x1f {
                return sign | 0x7c00;
            }
        }
        return sign | ((e as u16) << 10) | (m as u16);
    }
    if unbiased >= -25 {
        // Subnormal half. Inputs with unbiased exponent -25 sit between
        // zero and the smallest subnormal 2^-24; the same rounding picks
        // the nearer of the two (ties to the even pattern, zero).
        let shift = (-14 - unbiased) as u32; // 1..=11
        let full = mant | 0x0080_0000; // implicit leading 1
        let total_shift = 13 + shift;
        let mut m = full >> total_shift;
        let rest = full & ((1 << total_shift) - 1);
        let half = 1u32 << (total_shift - 1);
        if rest > half || (rest == half && (m & 1) == 1) {
            m += 1;
        }
        return sign | (m as u16);
    }
    // Underflow to signed zero.
    sign
}

/// Converts IEEE 754 binary16 bits to an `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x3ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal, value m·2^-24: normalize so that a mantissa
            // whose highest set bit is j lands on unbiased exponent
            // j - 24 (biased 103 + j).
            let mut e = 0i32;
            let mut m = m;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x3ff;
            sign | (((127 - 15 + e + 1) as u32) << 23) | (m << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Half-precision codec: 2 bytes per value, 2× ratio.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fp16Compressor;

impl Compressor for Fp16Compressor {
    fn name(&self) -> &'static str {
        "fp16"
    }

    fn compress(&self, data: &[f32]) -> Bytes {
        let mut out = Vec::with_capacity(data.len() * 2);
        for &v in data {
            out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
        }
        Bytes::from(out)
    }

    fn decompress(&self, payload: &[u8], n_elems: usize) -> Result<Vec<f32>, CompressionError> {
        if payload.len() != n_elems * 2 {
            return Err(CompressionError::CorruptPayload {
                codec: "fp16",
                expected: n_elems * 2,
                actual: payload.len(),
            });
        }
        Ok(payload
            .chunks_exact(2)
            .map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
            .collect())
    }

    fn compressed_len(&self, n_elems: usize) -> usize {
        n_elems * 2
    }

    fn is_lossless(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_halves_round_trip_losslessly() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, 6.1035156e-5] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(back, v, "value {v}");
        }
    }

    #[test]
    fn relative_error_is_within_half_epsilon() {
        // Half has 11 significand bits: relative error ≤ 2^-11.
        for i in 1..2000 {
            let v = i as f32 * 0.137;
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            let rel = (back - v).abs() / v.abs();
            assert!(rel <= 1.0 / 2048.0 + 1e-7, "v={v} back={back} rel={rel}");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e10)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e10)), f32::NEG_INFINITY);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn tiny_values_flush_toward_zero_range() {
        // Below the half subnormal range, values become ±0.
        let tiny = 1e-10f32;
        let back = f16_bits_to_f32(f32_to_f16_bits(tiny));
        assert_eq!(back, 0.0);
        let back = f16_bits_to_f32(f32_to_f16_bits(-tiny));
        assert_eq!(back, -0.0);
    }

    #[test]
    fn subnormal_halves_round_trip() {
        // 2^-24 is the smallest positive half subnormal: pattern 0x0001.
        let v = (-24f32).exp2();
        assert_eq!(f32_to_f16_bits(v), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), v);
        let back = f16_bits_to_f32(f32_to_f16_bits(v));
        assert_eq!(back, v, "v={v} back={back}");
        // The largest subnormal, 1023·2^-24, is exact as well.
        let big = 1023.0 * v;
        assert_eq!(f32_to_f16_bits(big), 0x03ff);
        assert_eq!(f16_bits_to_f32(0x03ff), big);
    }

    #[test]
    fn values_just_below_min_subnormal_round_up_not_flush() {
        // (2^-25, 2^-24) is nearer the smallest subnormal than zero.
        let v = 1.5f32 * (-25f32).exp2();
        assert_eq!(f32_to_f16_bits(v), 0x0001);
        assert_eq!(f32_to_f16_bits(-v), 0x8001);
        // Exactly 2^-25 is the midpoint: ties-to-even flushes to ±0.
        let mid = (-25f32).exp2();
        assert_eq!(f32_to_f16_bits(mid), 0x0000);
        assert_eq!(f32_to_f16_bits(-mid), 0x8000);
        // One ulp above the midpoint rounds up to the smallest subnormal.
        let above = f32::from_bits(mid.to_bits() + 1);
        assert_eq!(f32_to_f16_bits(above), 0x0001);
    }

    #[test]
    fn codec_roundtrip_shapes() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.31).collect();
        let c = Fp16Compressor;
        let wire = c.compress(&data);
        assert_eq!(wire.len(), 200);
        let back = c.decompress(&wire, 100).unwrap();
        for (a, b) in data.iter().zip(back.iter()) {
            assert!((a - b).abs() < 0.02, "a={a} b={b}");
        }
    }

    #[test]
    fn rounding_is_to_nearest_even() {
        // 1.0 + 2^-11 is exactly between two halves; must round to even (1.0).
        let v = 1.0f32 + 1.0 / 2048.0;
        let back = f16_bits_to_f32(f32_to_f16_bits(v));
        assert_eq!(back, 1.0);
        // 1.0 + 3*2^-11 is between 1+2^-10 and 1+2^-9; rounds to even (1+2^-9).
        let v = 1.0f32 + 3.0 / 2048.0;
        let back = f16_bits_to_f32(f32_to_f16_bits(v));
        assert_eq!(back, 1.0 + 2.0 / 1024.0);
    }
}
