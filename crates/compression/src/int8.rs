//! Linear INT8 quantization with a per-tensor scale.

use bytes::Bytes;

use crate::{CompressionError, Compressor};

/// INT8 codec: one global absmax scale, then 8-bit signed quantization.
///
/// The per-*tensor* scale is what makes this codec coarse: a single outlier
/// stretches the quantization step for every value, which is the mechanism
/// behind the convergence degradation the paper reports for `MoE w/INT8`
/// (Table 6). Contrast with [`crate::ZfpCompressor`], which scales per
/// small block.
///
/// Wire format: 4-byte little-endian `f32` scale, then one `i8` per value.
#[derive(Clone, Copy, Debug, Default)]
pub struct Int8Compressor;

impl Compressor for Int8Compressor {
    fn name(&self) -> &'static str {
        "int8"
    }

    fn compress(&self, data: &[f32]) -> Bytes {
        let absmax = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
        let mut out = Vec::with_capacity(4 + data.len());
        out.extend_from_slice(&scale.to_le_bytes());
        for &v in data {
            let q = (v / scale).round().clamp(-127.0, 127.0) as i8;
            out.push(q as u8);
        }
        Bytes::from(out)
    }

    fn decompress(&self, payload: &[u8], n_elems: usize) -> Result<Vec<f32>, CompressionError> {
        if payload.len() != 4 + n_elems {
            return Err(CompressionError::CorruptPayload {
                codec: "int8",
                expected: 4 + n_elems,
                actual: payload.len(),
            });
        }
        let scale = f32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
        Ok(payload[4..]
            .iter()
            .map(|&b| (b as i8) as f32 * scale)
            .collect())
    }

    fn compressed_len(&self, n_elems: usize) -> usize {
        4 + n_elems
    }

    fn is_lossless(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roundtrip_max_error;

    #[test]
    fn uniform_data_error_is_bounded_by_half_step() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32 / 255.0) * 2.0 - 1.0).collect();
        let err = roundtrip_max_error(&Int8Compressor, &data);
        // Step = absmax/127; max error = step/2.
        assert!(err <= 0.5 / 127.0 + 1e-6, "err {err}");
    }

    #[test]
    fn outlier_destroys_precision_of_small_values() {
        // This is the Table 6 failure mode: one large value makes the
        // quantization step coarser than the small values themselves.
        let mut data = vec![0.01f32; 100];
        data[0] = 100.0;
        let wire = Int8Compressor.compress(&data);
        let back = Int8Compressor.decompress(&wire, data.len()).unwrap();
        // Small values collapse to zero.
        assert_eq!(back[1], 0.0);
        // But the outlier survives.
        assert!((back[0] - 100.0).abs() < 1.0);
    }

    #[test]
    fn all_zero_tensor_round_trips() {
        let data = vec![0.0f32; 16];
        let err = roundtrip_max_error(&Int8Compressor, &data);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn signs_are_preserved() {
        let data = [-1.0f32, 1.0, -0.5, 0.5];
        let wire = Int8Compressor.compress(&data);
        let back = Int8Compressor.decompress(&wire, 4).unwrap();
        for (a, b) in data.iter().zip(back.iter()) {
            assert_eq!(a.signum(), b.signum());
        }
    }

    #[test]
    fn wrong_length_is_rejected() {
        let err = Int8Compressor.decompress(&[0u8; 10], 20).unwrap_err();
        assert!(matches!(err, CompressionError::CorruptPayload { .. }));
    }
}
