//! Property: the whole overlapped training step is bit-identical to the
//! serial step.
//!
//! `distributed_full_step` runs the pipelined forward, the pipelined
//! backward, and the replicated-parameter allreduce folded into the
//! backward task graph. Whatever the topology, partition degree, codec,
//! or liveness (healthy, or degraded with one dead rank), every live
//! rank's forward output, input gradients, parameter gradients, and
//! reduced replicated values must equal the serial step's bit for bit.

use proptest::prelude::*;
use schemoe_cluster::{Fabric, Topology};
use schemoe_collectives::NcclA2A;
use schemoe_compression::{Compressor, Fp16Compressor, NoCompression};
use schemoe_models::distributed_full_step;
use schemoe_moe::{DistributedMoeLayer, Expert, FfExpert, Placement, TopKGate};
use schemoe_tensor::rng::{self, seeded};
use schemoe_tensor::Tensor;

const M: usize = 6;
const H: usize = 8;
const REPLICATED: usize = 16;

type StepOut = Option<(Tensor, Tensor, Vec<f32>, Vec<Vec<f32>>)>;

#[allow(clippy::too_many_arguments)]
fn run_step(
    topo: Topology,
    dead: Option<usize>,
    degree: usize,
    k: usize,
    codec_idx: usize,
    x_global: &Tensor,
    n_local: usize,
) -> Vec<StepOut> {
    let p = topo.world_size();
    let live: Vec<bool> = (0..p).map(|r| Some(r) != dead).collect();
    Fabric::run(topo, move |mut h| {
        let me = h.rank();
        if Some(me) == dead {
            return None;
        }
        let gate = TopKGate::new(M, p, k, 8.0, &mut seeded(777));
        let experts: Vec<Box<dyn Expert>> =
            vec![Box::new(FfExpert::new(M, H, &mut seeded(2000 + me as u64)))];
        let codec: Box<dyn Compressor> = match codec_idx {
            0 => Box::new(NoCompression),
            _ => Box::new(Fp16Compressor),
        };
        let mut layer = DistributedMoeLayer::new(gate, experts, codec, Box::new(NcclA2A))
            .with_partition_degree(degree)
            .with_recv_timeout(std::time::Duration::from_secs(30));
        if let Some(d) = dead {
            layer.mark_rank_dead(d);
        }
        let mut x = Tensor::zeros(&[n_local, M]);
        for r in 0..n_local {
            x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
        }
        let mut replicated: Vec<f32> = (0..REPLICATED)
            .map(|i| ((me * REPLICATED + i) % 23) as f32 * 0.5)
            .collect();
        let (y, dx) =
            distributed_full_step(&mut h, &mut layer, &x, 0, &mut replicated, &live).unwrap();
        let mut grads = Vec::new();
        layer.visit_params(&mut |prm| grads.push(prm.grad.data().to_vec()));
        Some((y, dx, replicated, grads))
    })
}

/// One robustness mode per case: a non-static placement with replica
/// fan-out and a migrated expert (0), one dead rank in degraded mode (1),
/// or the dead rank's expert hosted on a failover buddy (2).
type RobustOut = Option<(Tensor, Tensor, Vec<f32>, Vec<Vec<f32>>, Vec<u64>, u64, u64)>;

fn run_robust_step(
    topo: Topology,
    mode: usize,
    degree: usize,
    k: usize,
    cap: f64,
    x_global: &Tensor,
    n_local: usize,
) -> Vec<RobustOut> {
    let p = topo.world_size();
    let dead = (mode > 0).then(|| p - 1);
    let live: Vec<bool> = (0..p).map(|r| Some(r) != dead).collect();
    Fabric::run(topo, move |mut h| {
        let me = h.rank();
        if Some(me) == dead {
            return None;
        }
        let gate = TopKGate::new(M, p, k, cap, &mut seeded(777));
        let experts: Vec<Box<dyn Expert>> =
            vec![Box::new(FfExpert::new(M, H, &mut seeded(2000 + me as u64)))];
        let mut layer =
            DistributedMoeLayer::new(gate, experts, Box::new(NoCompression), Box::new(NcclA2A))
                .with_partition_degree(degree)
                .with_recv_timeout(std::time::Duration::from_secs(30));
        match mode {
            0 => {
                // Expert 0 fans out across ranks 0 and 1; the last
                // expert migrates off its home onto rank 0. Guest
                // bodies mirror the home's seeding, exactly as the
                // placement controller's state transfer reproduces.
                let mut servers: Vec<Vec<usize>> = (0..p).map(|e| vec![e]).collect();
                servers[0] = vec![0, 1];
                servers[p - 1] = vec![0];
                if me == 1 {
                    layer.install_guest_expert(
                        me,
                        0,
                        Box::new(FfExpert::new(M, H, &mut seeded(2000))),
                    );
                }
                if me == 0 && p > 1 {
                    layer.install_guest_expert(
                        me,
                        p - 1,
                        Box::new(FfExpert::new(M, H, &mut seeded(2000 + (p - 1) as u64))),
                    );
                }
                layer.set_placement(me, Placement::new(1, 1, servers));
            }
            1 => layer.mark_rank_dead(dead.unwrap()),
            _ => {
                let d = dead.unwrap();
                layer.mark_rank_dead(d);
                layer.set_failover_route(d, 0);
                if me == 0 {
                    let ward: Box<dyn Expert> =
                        Box::new(FfExpert::new(M, H, &mut seeded(2000 + d as u64)));
                    layer.install_hosted_experts(d, vec![ward]);
                }
            }
        }
        let mut x = Tensor::zeros(&[n_local, M]);
        for r in 0..n_local {
            x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
        }
        let mut replicated: Vec<f32> = (0..REPLICATED)
            .map(|i| ((me * REPLICATED + i) % 23) as f32 * 0.5)
            .collect();
        let (y, dx) =
            distributed_full_step(&mut h, &mut layer, &x, 0, &mut replicated, &live).unwrap();
        let mut grads = Vec::new();
        layer.visit_params(&mut |prm| grads.push(prm.grad.data().to_vec()));
        for e in layer.guest_expert_ids() {
            layer.visit_serving_params(me, e, &mut |prm| grads.push(prm.grad.data().to_vec()));
        }
        let (loads, shed, routed, _p99) = layer.take_load_stats();
        Some((y, dx, replicated, grads, loads, shed, routed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn overlapped_full_step_bit_identical_to_serial(
        nodes in 1usize..3,
        gpus in 1usize..3,
        n_local in 1usize..6,
        k_raw in 1usize..3,
        degree in 2usize..9,
        codec_idx in 0usize..2,
        kill in 0usize..4,
        seed in 0u64..200,
    ) {
        let topo = Topology::new(nodes, gpus);
        let p = topo.world_size();
        let k = k_raw.min(p);
        // kill == 0 keeps everyone alive; otherwise one rank dies and the
        // step must still agree with the degraded serial step.
        let dead = (kill > 0 && p > 1).then(|| (kill - 1) % p);
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(seed));
        let serial = run_step(topo, dead, 1, k, codec_idx, &x_global, n_local);
        let overlapped = run_step(topo, dead, degree, k, codec_idx, &x_global, n_local);
        for me in 0..p {
            if Some(me) == dead {
                prop_assert!(overlapped[me].is_none());
                continue;
            }
            let (ys, dxs, reds, gs) = serial[me].as_ref().unwrap();
            let (yo, dxo, redo, go) = overlapped[me].as_ref().unwrap();
            let ydiff = yo.max_abs_diff(ys).unwrap();
            prop_assert!(ydiff == 0.0, "rank {} forward diverged by {}", me, ydiff);
            let dxdiff = dxo.max_abs_diff(dxs).unwrap();
            prop_assert!(dxdiff == 0.0, "rank {} input grads diverged by {}", me, dxdiff);
            prop_assert_eq!(redo, reds, "rank {} reduced values diverged", me);
            prop_assert_eq!(go, gs, "rank {} param grads diverged", me);
        }
    }

    /// Property: capacity-factor shedding and replica fan-out routing are
    /// bit-deterministic across thread interleavings (partition degrees)
    /// and compose with one-dead-rank degraded mode and hosted-expert
    /// failover. Outputs, gradients, reduced values, per-expert routed
    /// loads, and shed counts must all agree bit for bit between any two
    /// pipeline schedules of the same step.
    #[test]
    fn shed_and_placed_routing_bit_deterministic_across_interleavings(
        nodes in 1usize..3,
        gpus in 2usize..4,
        n_local in 2usize..6,
        k_raw in 1usize..3,
        degree_a in 1usize..9,
        degree_b in 1usize..9,
        mode in 0usize..3,
        seed in 0u64..200,
    ) {
        let topo = Topology::new(nodes, gpus);
        let p = topo.world_size();
        let k = k_raw.min(p);
        // A tight factor forces overload shedding on odd seeds; a loose
        // one keeps every token admitted. Both must replay identically.
        let cap = if seed % 2 == 1 { 0.6 } else { 8.0 };
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(seed));
        let a = run_robust_step(topo, mode, degree_a, k, cap, &x_global, n_local);
        let b = run_robust_step(topo, mode, degree_b, k, cap, &x_global, n_local);
        let dead = (mode > 0).then(|| p - 1);
        for me in 0..p {
            if Some(me) == dead {
                prop_assert!(a[me].is_none());
                prop_assert!(b[me].is_none());
                continue;
            }
            let (ya, dxa, reda, ga, la, sheda, routeda) = a[me].as_ref().unwrap();
            let (yb, dxb, redb, gb, lb, shedb, routedb) = b[me].as_ref().unwrap();
            prop_assert!(ya.max_abs_diff(yb).unwrap() == 0.0, "rank {} forward diverged", me);
            prop_assert!(dxa.max_abs_diff(dxb).unwrap() == 0.0, "rank {} input grads diverged", me);
            prop_assert_eq!(reda, redb, "rank {} reduced values diverged", me);
            prop_assert_eq!(ga, gb, "rank {} param grads diverged", me);
            prop_assert_eq!(la, lb, "rank {} routed loads diverged", me);
            prop_assert_eq!(sheda, shedb, "rank {} shed counts diverged", me);
            prop_assert_eq!(routeda, routedb, "rank {} admitted counts diverged", me);
            prop_assert!(*routeda > 0, "rank {} routed nothing", me);
        }
    }
}
