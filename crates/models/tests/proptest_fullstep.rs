//! Property: the whole overlapped training step is bit-identical to the
//! serial step.
//!
//! `distributed_full_step` runs the pipelined forward, the pipelined
//! backward, and the replicated-parameter allreduce folded into the
//! backward task graph. Whatever the topology, partition degree, codec,
//! or liveness (healthy, or degraded with one dead rank), every live
//! rank's forward output, input gradients, parameter gradients, and
//! reduced replicated values must equal the serial step's bit for bit.

use proptest::prelude::*;
use schemoe_cluster::{Fabric, Topology};
use schemoe_collectives::NcclA2A;
use schemoe_compression::{Compressor, Fp16Compressor, NoCompression};
use schemoe_models::distributed_full_step;
use schemoe_moe::{DistributedMoeLayer, Expert, FfExpert, TopKGate};
use schemoe_tensor::rng::{self, seeded};
use schemoe_tensor::Tensor;

const M: usize = 6;
const H: usize = 8;
const REPLICATED: usize = 16;

type StepOut = Option<(Tensor, Tensor, Vec<f32>, Vec<Vec<f32>>)>;

#[allow(clippy::too_many_arguments)]
fn run_step(
    topo: Topology,
    dead: Option<usize>,
    degree: usize,
    k: usize,
    codec_idx: usize,
    x_global: &Tensor,
    n_local: usize,
) -> Vec<StepOut> {
    let p = topo.world_size();
    let live: Vec<bool> = (0..p).map(|r| Some(r) != dead).collect();
    Fabric::run(topo, move |mut h| {
        let me = h.rank();
        if Some(me) == dead {
            return None;
        }
        let gate = TopKGate::new(M, p, k, 8.0, &mut seeded(777));
        let experts: Vec<Box<dyn Expert>> =
            vec![Box::new(FfExpert::new(M, H, &mut seeded(2000 + me as u64)))];
        let codec: Box<dyn Compressor> = match codec_idx {
            0 => Box::new(NoCompression),
            _ => Box::new(Fp16Compressor),
        };
        let mut layer = DistributedMoeLayer::new(gate, experts, codec, Box::new(NcclA2A))
            .with_partition_degree(degree)
            .with_recv_timeout(std::time::Duration::from_secs(30));
        if let Some(d) = dead {
            layer.mark_rank_dead(d);
        }
        let mut x = Tensor::zeros(&[n_local, M]);
        for r in 0..n_local {
            x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
        }
        let mut replicated: Vec<f32> = (0..REPLICATED)
            .map(|i| ((me * REPLICATED + i) % 23) as f32 * 0.5)
            .collect();
        let (y, dx) =
            distributed_full_step(&mut h, &mut layer, &x, 0, &mut replicated, &live).unwrap();
        let mut grads = Vec::new();
        layer.visit_params(&mut |prm| grads.push(prm.grad.data().to_vec()));
        Some((y, dx, replicated, grads))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn overlapped_full_step_bit_identical_to_serial(
        nodes in 1usize..3,
        gpus in 1usize..3,
        n_local in 1usize..6,
        k_raw in 1usize..3,
        degree in 2usize..9,
        codec_idx in 0usize..2,
        kill in 0usize..4,
        seed in 0u64..200,
    ) {
        let topo = Topology::new(nodes, gpus);
        let p = topo.world_size();
        let k = k_raw.min(p);
        // kill == 0 keeps everyone alive; otherwise one rank dies and the
        // step must still agree with the degraded serial step.
        let dead = (kill > 0 && p > 1).then(|| (kill - 1) % p);
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(seed));
        let serial = run_step(topo, dead, 1, k, codec_idx, &x_global, n_local);
        let overlapped = run_step(topo, dead, degree, k, codec_idx, &x_global, n_local);
        for me in 0..p {
            if Some(me) == dead {
                prop_assert!(overlapped[me].is_none());
                continue;
            }
            let (ys, dxs, reds, gs) = serial[me].as_ref().unwrap();
            let (yo, dxo, redo, go) = overlapped[me].as_ref().unwrap();
            let ydiff = yo.max_abs_diff(ys).unwrap();
            prop_assert!(ydiff == 0.0, "rank {} forward diverged by {}", me, ydiff);
            let dxdiff = dxo.max_abs_diff(dxs).unwrap();
            prop_assert!(dxdiff == 0.0, "rank {} input grads diverged by {}", me, dxdiff);
            prop_assert_eq!(redo, reds, "rank {} reduced values diverged", me);
            prop_assert_eq!(go, gs, "rank {} param grads diverged", me);
        }
    }
}
