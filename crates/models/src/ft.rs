//! Fault-tolerant distributed MoE training.
//!
//! [`run_ft_rank`] is the per-rank body of a distributed language-model
//! training loop that survives the faults injected by
//! [`schemoe_cluster::FaultPlan`]: dropped, delayed, and corrupted
//! messages, and ranks killed mid-step. Run it on every rank of a
//! [`Fabric`](schemoe_cluster::Fabric) (with or without a fault plan) and
//! each survivor returns an [`FtReport`].
//!
//! The model is a tiny expert-parallel LM — embedding →
//! [`DistributedMoeLayer`] → linear head → softmax cross-entropy — trained
//! on next-token prediction over [`RegimeMarkov`] sequences. The
//! embedding, gate, and head are replicated (grad-allreduced each step);
//! each rank owns one expert.
//!
//! # Recovery state machine
//!
//! Every step runs as a sequence of *attempts*. One attempt is:
//!
//! 1. zero gradients, take a fresh tag window;
//! 2. `try_step`: forward, backward, and a live-rank gradient allreduce —
//!    any injected fault surfaces here as a typed
//!    [`FabricError`](schemoe_cluster::FabricError);
//! 3. a **vote round**: ranks exchange `(status, suspect-bitmask)`
//!    messages (sent [`VOTE_COPIES`] times each to survive drops, two
//!    gossip rounds so suspicions reach everyone) and derive a shared
//!    verdict *without any barrier* — a killed rank must never be waited
//!    on unconditionally;
//! 4. verdict **commit**: every live rank applies the optimizer step and
//!    advances; verdict **retry** (a transient `Timeout`/`Corrupt`/
//!    `Worker` fault somewhere): every rank backs off and reruns the
//!    attempt under fresh tags; verdict **death** (a peer is
//!    `Disconnected` or unresponsive): survivors mark it dead in the MoE
//!    layer (degraded routing), restore the last checkpoint, and rewind to
//!    the checkpointed step.
//!
//! The optimizer step happens only *after* an all-OK verdict, so
//! replicated parameters cannot diverge when one rank fails mid-attempt.
//! Checkpoints are taken in memory every [`FtConfig::checkpoint_every`]
//! committed steps; batches are a pure function of `(seed, step, rank)`,
//! so rewinding the step counter replays identical data.

use std::time::Duration;

use bytes::Bytes;
use schemoe_cluster::{FabricError, RankHandle};
use schemoe_collectives::{NcclA2A, TAG_STRIDE};
use schemoe_compression::NoCompression;
use schemoe_moe::{allreduce_live, DistributedMoeLayer, Expert, FfExpert, TopKGate};
use schemoe_tensor::checkpoint;
use schemoe_tensor::nn::{Embedding, Linear, Module, Param, SoftmaxCrossEntropy};
use schemoe_tensor::optim::Sgd;
use schemoe_tensor::rng::seeded;

use crate::data::RegimeMarkov;

/// How many duplicates of each vote message are sent. A vote is lost only
/// if every copy is dropped, so the loss probability is `drop_prob ^
/// VOTE_COPIES` per (link, round).
pub const VOTE_COPIES: u64 = 4;

/// Tag offset (from the end of an attempt's tag window) of the gradient
/// allreduce.
const ALLREDUCE_LANE: u64 = TAG_STRIDE - 4096;

/// Tag offset of the vote lane; round 2 adds [`VOTE_COPIES`].
const VOTE_LANE: u64 = TAG_STRIDE - 256;

/// Hyperparameters and recovery policy for [`run_ft_rank`].
#[derive(Clone, Copy, Debug)]
pub struct FtConfig {
    /// Vocabulary size of the synthetic LM task.
    pub vocab: usize,
    /// Number of Markov regimes in the data generator.
    pub regimes: usize,
    /// Embedding size `M`.
    pub model_dim: usize,
    /// Expert hidden size `H`.
    pub hidden_dim: usize,
    /// Top-k routing.
    pub k: usize,
    /// Gate capacity factor.
    pub capacity_factor: f64,
    /// Sequences per rank per step.
    pub seqs_per_rank: usize,
    /// Tokens per sequence (the sampled sequence is one longer, shifted
    /// for next-token targets).
    pub seq_len: usize,
    /// Training steps to commit.
    pub steps: usize,
    /// SGD learning rate (no momentum: optimizer state is not
    /// checkpointed, so restores must not inherit stale velocity).
    pub lr: f32,
    /// Master seed: model init, data, and per-step batches all derive from
    /// it, so two runs with the same seed see identical inputs.
    pub seed: u64,
    /// Transient-fault retries per step before a silent peer is escalated
    /// to a death suspicion.
    pub retry_budget: u32,
    /// Base backoff between retries; multiplied by the attempt number.
    pub backoff_ms: u64,
    /// Checkpoint cadence in committed steps.
    pub checkpoint_every: usize,
    /// Per-message deadline inside the vote protocol.
    pub vote_timeout_ms: u64,
}

impl FtConfig {
    /// A small configuration that trains in well under a second per rank —
    /// the shape used by the chaos tests.
    pub fn tiny(steps: usize) -> Self {
        FtConfig {
            vocab: 16,
            regimes: 2,
            model_dim: 16,
            hidden_dim: 32,
            k: 2,
            capacity_factor: 2.0,
            seqs_per_rank: 4,
            seq_len: 8,
            steps,
            lr: 0.1,
            seed: 7,
            retry_budget: 3,
            backoff_ms: 1,
            checkpoint_every: 5,
            vote_timeout_ms: 500,
        }
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What one rank experienced over a fault-tolerant training run.
#[derive(Clone, Debug)]
pub struct FtReport {
    /// Loss of the last committed step (`NaN` if none committed).
    pub final_loss: f32,
    /// Per-step committed losses; entries past a death are `NaN`.
    pub loss_curve: Vec<f32>,
    /// `Some(step)` if this rank died (was killed, or excommunicated by
    /// the cluster vote) while working on `step`.
    pub died_at_step: Option<usize>,
    /// Ranks this rank believes dead at the end of the run.
    pub dead_ranks: Vec<usize>,
    /// Step attempts rerun because of a transient fault verdict.
    pub retries: u64,
    /// Checkpoint restores performed after death verdicts.
    pub restores: u64,
}

/// The outcome of one cluster-wide vote.
struct Verdict {
    /// Some rank (possibly this one) reported a fault this attempt.
    any_error: bool,
    /// Bitmask of ranks the cluster now considers dead.
    suspects: u64,
}

/// Visits every parameter of the model triple in a fixed order (the order
/// checkpoints and the optimizer rely on).
fn visit_all(
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    f: &mut dyn FnMut(&mut Param),
) {
    embed.visit_params(f);
    moe.visit_params(f);
    head.visit_params(f);
}

/// Visits only the replicated parameters (embedding, gate, head) whose
/// gradients must be averaged across live ranks. Expert parameters are
/// rank-local and excluded.
fn visit_replicated(
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    f: &mut dyn FnMut(&mut Param),
) {
    embed.visit_params(f);
    moe.visit_params(&mut |p| {
        if p.name.starts_with("gate.") {
            f(p);
        }
    });
    head.visit_params(f);
}

/// One forward/backward/grad-sync attempt. Any fabric fault aborts the
/// attempt with a typed error; no parameter is updated here.
#[allow(clippy::too_many_arguments)]
fn try_step(
    h: &mut RankHandle,
    cfg: &FtConfig,
    markov: &RegimeMarkov,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    ce: &mut SoftmaxCrossEntropy,
    live: &[bool],
    step: usize,
    tag: u64,
) -> Result<f32, FabricError> {
    let me = h.rank();
    // The batch is a pure function of (seed, step, rank): a rewound step
    // replays exactly the same tokens.
    let mut rng = seeded(cfg.seed ^ 0x5EED_0000 ^ ((step as u64) << 8) ^ me as u64);
    let l = cfg.seq_len;
    let toks = markov.sample_batch(cfg.seqs_per_rank, l + 1, &mut rng);
    let mut inputs = Vec::with_capacity(cfg.seqs_per_rank * l);
    let mut targets = Vec::with_capacity(cfg.seqs_per_rank * l);
    for s in 0..cfg.seqs_per_rank {
        let row = &toks[s * (l + 1)..(s + 1) * (l + 1)];
        inputs.extend_from_slice(&row[..l]);
        targets.extend_from_slice(&row[1..]);
    }

    let x = embed.forward(&inputs);
    let hid = moe.forward(h, &x, tag)?;
    let logits = head.forward(&hid);
    let loss = ce.forward(&logits, &targets);
    let dlogits = ce.backward();
    let dhid = head.backward(&dlogits);
    let dx = moe.backward(h, &dhid)?;
    embed.backward(&dx);

    // Average the replicated gradients over the live ranks.
    let mut flat: Vec<f32> = Vec::new();
    visit_replicated(embed, moe, head, &mut |p| {
        flat.extend_from_slice(p.grad.data());
    });
    allreduce_live(h, &mut flat, tag + ALLREDUCE_LANE, live)?;
    let scale = 1.0 / live.iter().filter(|&&a| a).count() as f32;
    let mut off = 0usize;
    visit_replicated(embed, moe, head, &mut |p| {
        let n = p.grad.numel();
        for (g, &r) in p.grad.data_mut().iter_mut().zip(&flat[off..off + n]) {
            *g = r * scale;
        }
        off += n;
    });
    Ok(loss)
}

/// One gossip round of the vote protocol: broadcast `(status, suspects)`
/// to every live peer ([`VOTE_COPIES`] copies), then collect each peer's
/// message under a deadline. A peer whose every copy is missing or
/// damaged forces an error verdict; with `suspect_unresponsive` it is
/// also added to the suspect set (reserved for attempts past the retry
/// budget — a voter merely stalled in a receive-deadline chain must not
/// get evicted). Returns the unioned view, or an error if *this* rank
/// died mid-round.
fn vote_round(
    h: &mut RankHandle,
    live: &[bool],
    base: u64,
    status: u8,
    suspects: u64,
    deadline: Duration,
    suspect_unresponsive: bool,
) -> Result<(bool, u64), FabricError> {
    let me = h.rank();
    let mut buf = [0u8; 9];
    buf[0] = status;
    buf[1..9].copy_from_slice(&suspects.to_le_bytes());
    let msg = Bytes::copy_from_slice(&buf);
    for (r, &alive) in live.iter().enumerate() {
        if r == me || !alive {
            continue;
        }
        for c in 0..VOTE_COPIES {
            match h.send(r, base + c, msg.clone()) {
                Ok(()) => {}
                // Our own kill threshold fired: we are the dead rank.
                Err(FabricError::Disconnected { peer }) if peer == me => {
                    return Err(FabricError::Disconnected { peer })
                }
                // The link misbehaved; the peer's receive deadline and the
                // remaining copies cover it.
                Err(_) => {}
            }
        }
    }
    let mut any = status != 0;
    let mut sus = suspects;
    for (r, &alive) in live.iter().enumerate() {
        if r == me || !alive {
            continue;
        }
        let mut heard = None;
        for c in 0..VOTE_COPIES {
            match h.recv_timeout(r, base + c, deadline) {
                Ok(payload) if payload.len() == 9 => {
                    heard = Some(payload);
                    break;
                }
                Ok(_) => {} // malformed: treat like a corrupt copy
                Err(FabricError::Disconnected { peer }) if peer == me => {
                    return Err(FabricError::Disconnected { peer })
                }
                Err(_) => {} // timeout / corrupt / peer gone: try the next copy
            }
        }
        match heard {
            Some(p) => {
                any |= p[0] != 0;
                sus |= u64::from_le_bytes(p[1..9].try_into().expect("9-byte vote"));
            }
            None => {
                // Unresponsive across every copy: at minimum the attempt
                // must be retried; past the retry budget, presume death.
                any = true;
                if suspect_unresponsive {
                    sus |= 1u64 << r;
                }
            }
        }
    }
    Ok((any, sus))
}

/// Two-round vote: round one spreads first-hand observations, round two
/// confirms the union so every live rank lands on the same verdict.
fn vote(
    h: &mut RankHandle,
    live: &[bool],
    tag: u64,
    status: u8,
    suspects: u64,
    deadline: Duration,
    suspect_unresponsive: bool,
) -> Result<Verdict, FabricError> {
    let base = tag + VOTE_LANE;
    let (a1, s1) = vote_round(
        h,
        live,
        base,
        status,
        suspects,
        deadline,
        suspect_unresponsive,
    )?;
    let (a2, s2) = vote_round(
        h,
        live,
        base + VOTE_COPIES,
        u8::from(a1),
        s1,
        deadline,
        suspect_unresponsive,
    )?;
    Ok(Verdict {
        any_error: a2,
        suspects: s2,
    })
}

/// Runs the fault-tolerant training loop on one rank. See the module docs
/// for the protocol; call inside `Fabric::run` or `Fabric::run_with_faults`.
///
/// # Panics
///
/// Panics if the world is larger than 64 ranks (the vote bitmask width) or
/// if an in-memory checkpoint fails to restore (it was produced by this
/// very process, so damage indicates a bug, not a fault).
pub fn run_ft_rank(h: &mut RankHandle, cfg: &FtConfig) -> FtReport {
    let me = h.rank();
    let p = h.world_size();
    assert!(p <= 64, "vote bitmask supports at most 64 ranks");

    // Replicated modules share one seed; the expert is per-rank.
    let mut embed = Embedding::new(cfg.vocab, cfg.model_dim, &mut seeded(cfg.seed ^ 0xE3BED));
    let gate = TopKGate::new(
        cfg.model_dim,
        p,
        cfg.k,
        cfg.capacity_factor,
        &mut seeded(cfg.seed ^ 0x6A7E),
    );
    let expert: Box<dyn Expert> = Box::new(FfExpert::new(
        cfg.model_dim,
        cfg.hidden_dim,
        &mut seeded(cfg.seed ^ 0xE8_0000 ^ me as u64),
    ));
    let mut moe = DistributedMoeLayer::new(
        gate,
        vec![expert],
        Box::new(NoCompression),
        Box::new(NcclA2A),
    )
    .with_recv_timeout(Duration::from_millis(cfg.vote_timeout_ms.max(100) * 4));
    let mut head = Linear::new(cfg.model_dim, cfg.vocab, &mut seeded(cfg.seed ^ 0x4EAD));
    let mut ce = SoftmaxCrossEntropy::new();
    let markov = RegimeMarkov::new(cfg.vocab, cfg.regimes, &mut seeded(cfg.seed ^ 0xDA7A));
    let mut opt = Sgd::new(cfg.lr);

    let mut live = vec![true; p];
    let mut tag: u64 = 0;
    let mut step = 0usize;
    let mut loss_curve = vec![f32::NAN; cfg.steps];
    let mut retries = 0u64;
    let mut restores = 0u64;
    let vote_dl = Duration::from_millis(cfg.vote_timeout_ms);

    let mut ckpt = checkpoint::save(&mut |f| visit_all(&mut embed, &mut moe, &mut head, f));
    let mut ckpt_step = 0usize;

    let report = |live: &[bool], curve: Vec<f32>, died: Option<usize>, retries, restores| {
        let last = curve.iter().rev().find(|l| !l.is_nan()).copied();
        FtReport {
            final_loss: last.unwrap_or(f32::NAN),
            loss_curve: curve,
            died_at_step: died,
            dead_ranks: (0..p).filter(|&r| !live[r]).collect(),
            retries,
            restores,
        }
    };

    'train: while step < cfg.steps {
        let mut attempt = 0u32;
        loop {
            if h.is_dead() {
                return report(&live, loss_curve, Some(step), retries, restores);
            }
            visit_all(&mut embed, &mut moe, &mut head, &mut |prm| prm.zero_grad());
            let step_tag = tag;
            tag += TAG_STRIDE;

            let outcome = try_step(
                h, cfg, &markov, &mut embed, &mut moe, &mut head, &mut ce, &live, step, step_tag,
            );
            if h.is_dead() {
                return report(&live, loss_curve, Some(step), retries, restores);
            }
            // First-hand evidence: a disconnected peer is dead; timeouts
            // and corruption are transient until the retry budget is
            // spent, after which a *silent* peer is presumed dead (a
            // killed rank that never exits looks like a pure timeout).
            // Corruption never escalates — it implicates the link, not
            // the peer's liveness, and a flaky link must not get a live
            // rank excommunicated.
            let (status, mut suspects): (u8, u64) = match &outcome {
                Ok(_) => (0, 0),
                Err(FabricError::Disconnected { peer }) if *peer != me => (1, 1u64 << *peer),
                Err(_) => (1, 0),
            };
            if attempt >= cfg.retry_budget {
                if let Err(FabricError::Timeout { peer, .. }) = &outcome {
                    suspects |= 1u64 << *peer;
                }
            }

            let escalate = attempt >= cfg.retry_budget;
            let verdict = match vote(h, &live, step_tag, status, suspects, vote_dl, escalate) {
                Ok(v) => v,
                // Only a self-death escapes the vote.
                Err(_) => return report(&live, loss_curve, Some(step), retries, restores),
            };

            if verdict.suspects & (1u64 << me) != 0 {
                // The cluster has given up on this rank (e.g. our outbound
                // links are black holes). Exit rather than split-brain.
                return report(&live, loss_curve, Some(step), retries, restores);
            }
            let newly_dead: Vec<usize> = (0..p)
                .filter(|&r| live[r] && verdict.suspects & (1u64 << r) != 0)
                .collect();
            if !newly_dead.is_empty() {
                let _span = schemoe_obs::enabled()
                    .then(|| schemoe_obs::span("ft", format!("restore after {newly_dead:?} died")));
                for &r in &newly_dead {
                    live[r] = false;
                    moe.mark_rank_dead(r);
                }
                checkpoint::load(&ckpt, &mut |f| {
                    visit_all(&mut embed, &mut moe, &mut head, f)
                })
                .expect("in-memory checkpoint must restore");
                restores += 1;
                step = ckpt_step;
                continue 'train;
            }
            if verdict.any_error {
                retries += 1;
                schemoe_obs::counters_for_rank(me).add_retry();
                attempt += 1;
                std::thread::sleep(Duration::from_millis(
                    cfg.backoff_ms * u64::from(attempt.min(5)),
                ));
                continue;
            }

            // All-OK verdict: commit the step everywhere.
            let loss = outcome.expect("all-OK verdict implies a local success");
            opt.step_params(&mut |f| visit_all(&mut embed, &mut moe, &mut head, f));
            loss_curve[step] = loss;
            step += 1;
            if step.is_multiple_of(cfg.checkpoint_every) || step == cfg.steps {
                ckpt = checkpoint::save(&mut |f| visit_all(&mut embed, &mut moe, &mut head, f));
                ckpt_step = step;
            }
            break;
        }
    }

    report(&live, loss_curve, None, retries, restores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_cluster::{Fabric, FaultPlan, Topology};

    fn mean_final_loss(reports: &[FtReport]) -> f32 {
        let survivors: Vec<&FtReport> = reports
            .iter()
            .filter(|r| r.died_at_step.is_none())
            .collect();
        assert!(!survivors.is_empty(), "every rank died");
        survivors.iter().map(|r| r.final_loss).sum::<f32>() / survivors.len() as f32
    }

    #[test]
    fn fault_free_training_converges() {
        let cfg = FtConfig::tiny(12);
        let reports = Fabric::run(Topology::new(2, 2), |mut h| run_ft_rank(&mut h, &cfg));
        for r in &reports {
            assert_eq!(r.died_at_step, None);
            assert_eq!(r.retries, 0);
            assert_eq!(r.restores, 0);
            assert!(r.dead_ranks.is_empty());
            assert_eq!(r.loss_curve.len(), 12);
            assert!(r.loss_curve.iter().all(|l| l.is_finite()));
        }
        // Replicated losses are identical across ranks only in expectation
        // (data differs per rank); the mean must fall.
        let first = reports.iter().map(|r| r.loss_curve[0]).sum::<f32>() / 4.0;
        let last = mean_final_loss(&reports);
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn training_survives_dropped_messages_via_retries() {
        let cfg = FtConfig::tiny(6);
        // A lossy but alive fabric: ~1% of payload messages vanish. The
        // handle-level deadline turns each loss into a Timeout, the vote
        // round turns it into a cluster-wide retry.
        let plan = FaultPlan::seeded(11)
            .with_drop_prob(0.01)
            .with_recv_deadline(Duration::from_millis(300));
        let reports =
            Fabric::run_with_faults(Topology::new(2, 2), plan, |mut h| run_ft_rank(&mut h, &cfg));
        for r in &reports {
            assert_eq!(r.died_at_step, None, "no rank should die from drops");
            assert!(r.final_loss.is_finite());
        }
        let total_retries: u64 = reports.iter().map(|r| r.retries).sum();
        assert!(
            total_retries > 0,
            "1% drop over 6 steps should trigger a retry"
        );
    }

    #[test]
    fn a_killed_rank_is_detected_and_training_completes_degraded() {
        let cfg = FtConfig::tiny(8);
        // Rank 3 dies after 40 sends — mid-epoch, after the first
        // checkpoint window.
        let plan = FaultPlan::seeded(5)
            .kill_after(3, 40)
            .with_recv_deadline(Duration::from_millis(300));
        let reports =
            Fabric::run_with_faults(Topology::new(2, 2), plan, |mut h| run_ft_rank(&mut h, &cfg));
        assert!(
            reports[3].died_at_step.is_some(),
            "rank 3 must observe its death"
        );
        for (r, rep) in reports.iter().enumerate() {
            if r == 3 {
                continue;
            }
            assert_eq!(rep.died_at_step, None, "rank {r} should survive");
            assert_eq!(rep.dead_ranks, vec![3], "rank {r} should bury rank 3");
            assert!(rep.restores >= 1, "rank {r} should restore a checkpoint");
            assert!(rep.final_loss.is_finite());
            assert!(
                rep.loss_curve.iter().all(|l| l.is_finite()),
                "every step must commit after recovery"
            );
        }
    }
}
