//! Fault-tolerant distributed MoE training.
//!
//! [`run_ft_rank`] is the per-rank body of a distributed language-model
//! training loop that survives the faults injected by
//! [`schemoe_cluster::FaultPlan`]: dropped, delayed, and corrupted
//! messages, and ranks killed mid-step. Run it on every rank of a
//! [`Fabric`](schemoe_cluster::Fabric) (with or without a fault plan) and
//! each survivor returns an [`FtReport`].
//!
//! The model is a tiny expert-parallel LM — embedding →
//! [`DistributedMoeLayer`] → linear head → softmax cross-entropy — trained
//! on next-token prediction over [`RegimeMarkov`] sequences. The
//! embedding, gate, and head are replicated (grad-allreduced each step);
//! each rank owns one expert.
//!
//! # Recovery state machine
//!
//! Every step runs as a sequence of *attempts*. One attempt is:
//!
//! 1. zero gradients, take a fresh tag window;
//! 2. `try_step`: forward, backward, and a live-rank gradient allreduce —
//!    any injected fault surfaces here as a typed
//!    [`FabricError`](schemoe_cluster::FabricError);
//! 3. a **vote round**: ranks exchange `(status, suspect-bitmask)`
//!    messages (sent [`VOTE_COPIES`] times each to survive drops, two
//!    gossip rounds so suspicions reach everyone) and derive a shared
//!    verdict *without any barrier* — a killed rank must never be waited
//!    on unconditionally;
//! 4. verdict **commit**: every live rank applies the optimizer step and
//!    advances; verdict **retry** (a transient `Timeout`/`Corrupt`/
//!    `Worker` fault somewhere): every rank backs off and reruns the
//!    attempt under fresh tags; verdict **death** (a peer is
//!    `Disconnected` or unresponsive): survivors mark it dead in the MoE
//!    layer (degraded routing), restore the last checkpoint, and rewind to
//!    the checkpointed step.
//!
//! The optimizer step happens only *after* an all-OK verdict, so
//! replicated parameters cannot diverge when one rank fails mid-attempt.
//! Checkpoints are taken in memory every [`FtConfig::checkpoint_every`]
//! committed steps; batches are a pure function of `(seed, step, rank)`,
//! so rewinding the step counter replays identical data.
//!
//! # Elastic membership: rejoin
//!
//! A rank whose [`FaultPlan`](schemoe_cluster::FaultPlan) schedules a
//! revival (`revive_after`) does not exit when it dies — it enters *limbo*:
//! it burns send attempts with [`RankHandle::try_revive`] until the plan's
//! revive point reopens its pipe (a pure function of the attempt counter,
//! so replays are bit-identical), then announces itself to every rank on a
//! control-plane tag. Survivors poll for announcements at a fixed step
//! cadence ([`FtConfig::rejoin_check_every`]); on seeing one they bump the
//! membership epoch, re-admit the rank, and the lowest live rank — the
//! *donor* — streams the replicated parameters and their optimizer-state
//! slots as one CRC-sealed checkpoint payload in bounded chunks. The
//! rejoiner reassembles, **verifies the seal, and only then applies**:
//! a transfer torn by a donor death or link damage leaves it untouched, at
//! its old epoch, and it simply re-announces. Every membership change —
//! burial or rejoin — advances the epoch stamped on data frames, so a rank
//! that has not observed the transition has its traffic rejected as
//! [`FabricError::StaleEpoch`] instead of feeding stale collectives.
//!
//! # Buddy replication and hot failover
//!
//! With [`FtConfig::replica_interval`] `K > 0`, every `K` committed steps
//! each rank streams its expert weights **and** optimizer velocity to the
//! buddy at `(rank + 1) mod n` as one CRC-sealed, delta-encoded frame
//! (see [`schemoe_moe::DeltaEncoder`]), scheduled on the two-worker
//! overlap executor so the encode overlaps the inbound frame from this
//! rank's own ward. When a rank is buried, its buddy *activates* the
//! replica: every survivor installs a failover route in the MoE layer,
//! the buddy rebuilds the dead rank's expert (replica if one arrived,
//! deterministic re-init otherwise) and hosts it, and the gate keeps the
//! full expert set — a death costs at most `K` steps of expert staleness
//! instead of an expert-shaped hole in the model. On rejoin the invite
//! names the host, which streams the hosted expert (trained while its
//! owner was dead) back on a dedicated handback lane; the rejoiner
//! applies it, routes clear, and full ownership resumes.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use schemoe_cluster::storage::{write_atomic, ChaosFs, ChaosFsPlan, RealFs, StorageFs};
use schemoe_cluster::{AdaptiveDeadline, FabricError, RankHandle};
use schemoe_collectives::{NcclA2A, TAG_STRIDE};
use schemoe_compression::NoCompression;
use schemoe_moe::{
    allreduce_live, decide_plan, DeltaEncoder, DistributedMoeLayer, Expert, FfExpert,
    GradAllreduce, LoadReport, Placement, PlacementPlan, PolicyConfig, ReplicaStore, TopKGate,
};
use schemoe_scheduler::executor::{run_overlapped_cancellable, ExecTask, Worker};
use schemoe_tensor::checkpoint;
use schemoe_tensor::nn::{Embedding, Linear, Module, Param, SoftmaxCrossEntropy};
use schemoe_tensor::optim::Sgd;
use schemoe_tensor::rng::seeded;
use schemoe_tensor::snapshot::{self, Manifest, ManifestEntry, Shard, ShardReplica};
use schemoe_tensor::Tensor;

use crate::data::RegimeMarkov;

/// How many duplicates of each vote message are sent. A vote is lost only
/// if every copy is dropped, so the loss probability is `drop_prob ^
/// VOTE_COPIES` per (link, round).
pub const VOTE_COPIES: u64 = 4;

/// Tag offset (from the end of an attempt's tag window) of the gradient
/// allreduce. The step uses two disjoint allreduce lanes (`allreduce_live`
/// occupies two tags per call): `+ 0` for gradients folded into the MoE
/// backward task graph, `+ 2` for those that only exist after it.
pub const ALLREDUCE_LANE: u64 = TAG_STRIDE - 4096;

/// Tag offset of the vote lane; round 2 adds [`VOTE_COPIES`].
const VOTE_LANE: u64 = TAG_STRIDE - 256;

/// Control-plane tag namespaces for the rejoin protocol. They sit far above
/// every training-step window (step tags grow from 0 by [`TAG_STRIDE`] per
/// attempt), so rejoin traffic can never collide with step traffic.
const ANNOUNCE_TAG: u64 = 1 << 62;
const INVITE_TAG: u64 = (1 << 62) + 1024;
const DECISION_TAG: u64 = (1 << 62) + 2048;
const XFER_NS: u64 = 1 << 63;

/// Bounded chunk size for rejoin state transfers: the payload is shipped in
/// frames of at most this many bytes, so a transfer never sends one
/// unbounded message.
pub const TRANSFER_CHUNK: usize = 4096;

/// Copies of each transfer frame. Like vote copies, redundancy makes a
/// single dropped or damaged copy survivable; a chunk is lost only if every
/// copy is.
const XFER_COPIES: u64 = 2;

/// Rejoin rounds a rank in limbo attempts before giving up for good.
const MAX_REJOIN_ROUNDS: usize = 8;

/// Control-plane tag a parked rank pings on, looking for other parked
/// ranks across a partition (see [`park_until_heal`]).
const PARK_TAG: u64 = (1 << 62) + 3072;

/// Control-plane tag the lowest parked rank broadcasts the common resume
/// point on once the parked set reassembles a majority.
const RESUME_TAG: u64 = (1 << 62) + 4096;

/// Park rounds a quorum-less rank waits for the cluster to heal before
/// giving up for good. Each round re-announces, re-pings, and polls for
/// invites and resumes, so the bound is on patience, not correctness.
const MAX_PARK_ROUNDS: usize = 256;

/// Transfer tags are scoped by the committed step of the rejoin round, so
/// chunks left parked by a torn round can never be misread by a later one.
fn xfer_tag(step: usize) -> u64 {
    XFER_NS + (step as u64) * 4096
}

/// Tag namespace for buddy-replication frames. It sits far above the
/// rejoin control plane (`(1 << 62) + small`) and far below the transfer
/// namespace (`1 << 63`), so replica frames can never collide with step,
/// vote, or rejoin traffic.
const REPLICA_NS: u64 = (1 << 62) + (1 << 32);

/// Tag namespace for rejoin handback streams (the hosted expert returning
/// to its revived owner). Disjoint from [`XFER_NS`]'s chunk windows.
const HANDBACK_NS: u64 = (1 << 63) + (1 << 62);

/// Replica frames are scoped by the committed step of their quantum, so a
/// frame parked by a late sender can never be misread by a later quantum.
fn replica_tag(step: usize) -> u64 {
    REPLICA_NS + (step as u64) * 8
}

/// Handback streams are scoped by the committed step of the rejoin round,
/// mirroring [`xfer_tag`].
fn handback_tag(step: usize) -> u64 {
    HANDBACK_NS + (step as u64) * 4096
}

/// Tag namespace for durable-snapshot acks: each rank tells the
/// coordinator its shard reached disk. Sits above [`REPLICA_NS`]'s
/// step-scoped windows (steps are small) and below [`HANDBACK_NS`], so
/// snapshot control traffic can never collide with any other lane.
const SNAPSHOT_NS: u64 = (1 << 62) + (2u64 << 32);

/// Ack frames are scoped by generation, so a straggler's ack for a
/// failed generation can never be mistaken for the next one's.
fn snapshot_ack_tag(generation: u64) -> u64 {
    SNAPSHOT_NS + generation * 8
}

/// Tag namespace for the placement protocol: load reports, plans, readies,
/// decisions, stall probes, and staged expert transfers. Sits above
/// [`SNAPSHOT_NS`]'s generation-scoped windows and below [`HANDBACK_NS`],
/// so placement traffic can never collide with any other lane.
const PLACEMENT_NS: u64 = (1 << 62) + (3u64 << 32);

/// Placement frames are scoped by the committed step of their quantum; a
/// 1 MiB window per quantum leaves room for per-expert transfer streams.
fn placement_tag(step: usize) -> u64 {
    PLACEMENT_NS + (step as u64) * (1 << 20)
}

/// Offsets inside a quantum's placement window. Report/plan/ready/decision
/// each get an 8-tag band ([`XFER_COPIES`]/[`VOTE_COPIES`] duplicates fit
/// well inside); probes get their own; transfers for expert `e` stream on
/// `base + 4096 * (1 + e)` so chunk sub-tags never cross experts.
const PL_REPORT: u64 = 0;
const PL_PLAN: u64 = 8;
const PL_READY: u64 = 16;
const PL_DECISION: u64 = 24;
const PL_PROBE: u64 = 32;

/// Sender-side timed probes per peer in a placement quantum. The max of
/// the batch stands in for the p99 link stall; chaos shaping sleeps the
/// sender, so shaped links read high while in-process links read ~0.
const PLACEMENT_PROBES: usize = 3;

/// Failure-domain labels for up to 64 ranks — one 4-bit label per rank
/// (16 domains), packed into four words so the map stays `Copy` like the
/// [`FtConfig`] that carries it. Two ranks with the same label share a
/// failure domain (a host, a rack, a power feed) and are expected to die
/// together; buddy placement routes replicas across domains so a single
/// domain loss never takes an expert and its replica at once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DomainMap {
    words: [u64; 4],
}

impl DomainMap {
    /// Builds a map from one label per rank.
    ///
    /// # Panics
    ///
    /// Panics past 64 ranks or a label ≥ 16 (the packing width).
    pub fn from_labels(labels: &[u8]) -> DomainMap {
        assert!(labels.len() <= 64, "domain maps cover at most 64 ranks");
        let mut words = [0u64; 4];
        for (r, &l) in labels.iter().enumerate() {
            assert!(l < 16, "domain labels are 4-bit (got {l})");
            words[r / 16] |= u64::from(l) << ((r % 16) * 4);
        }
        DomainMap { words }
    }

    /// The domain label of `rank` (0 for ranks past the labelled prefix).
    pub fn label(&self, rank: usize) -> u8 {
        ((self.words[rank / 16] >> ((rank % 16) * 4)) & 0xF) as u8
    }
}

/// The replication buddy of `rank` in an `n`-rank world: the next rank
/// (scanning forward, wrapping) in a *different* failure domain when a
/// domain map is given, falling back to the plain ring neighbour
/// `(rank + 1) % n` when no map is set or every rank shares one domain.
/// Pure and identical on every rank, so survivors agree on failover hosts
/// without any coordination.
pub fn buddy_of(rank: usize, n: usize, domains: Option<&DomainMap>) -> usize {
    if n == 0 {
        return rank;
    }
    if let Some(d) = domains {
        let mine = d.label(rank);
        for i in 1..n {
            let c = (rank + i) % n;
            if d.label(c) != mine {
                return c;
            }
        }
    }
    (rank + 1) % n
}

/// Hyperparameters and recovery policy for [`run_ft_rank`].
#[derive(Clone, Copy, Debug)]
pub struct FtConfig {
    /// Vocabulary size of the synthetic LM task.
    pub vocab: usize,
    /// Number of Markov regimes in the data generator.
    pub regimes: usize,
    /// Embedding size `M`.
    pub model_dim: usize,
    /// Expert hidden size `H`.
    pub hidden_dim: usize,
    /// Top-k routing.
    pub k: usize,
    /// Gate capacity factor.
    pub capacity_factor: f64,
    /// Sequences per rank per step.
    pub seqs_per_rank: usize,
    /// Tokens per sequence (the sampled sequence is one longer, shifted
    /// for next-token targets).
    pub seq_len: usize,
    /// Training steps to commit.
    pub steps: usize,
    /// SGD learning rate (no momentum: optimizer state is not
    /// checkpointed, so restores must not inherit stale velocity).
    pub lr: f32,
    /// Master seed: model init, data, and per-step batches all derive from
    /// it, so two runs with the same seed see identical inputs.
    pub seed: u64,
    /// Transient-fault retries per step before a silent peer is escalated
    /// to a death suspicion.
    pub retry_budget: u32,
    /// Base backoff between retries; multiplied by the attempt number.
    pub backoff_ms: u64,
    /// Checkpoint cadence in committed steps.
    pub checkpoint_every: usize,
    /// Per-message deadline inside the vote protocol.
    pub vote_timeout_ms: u64,
    /// Committed-step cadence at which survivors poll for rejoin
    /// announcements from revivable dead ranks. `0` disables rejoin.
    pub rejoin_check_every: usize,
    /// Optional per-link adaptive receive-deadline policy, installed on the
    /// rank handle at startup (see
    /// [`AdaptiveDeadline`](schemoe_cluster::AdaptiveDeadline)): deadlines
    /// stretch with each link's observed p99 wait instead of misclassifying
    /// a straggler as dead.
    pub adaptive_deadline: Option<AdaptiveDeadline>,
    /// Buddy-replication quantum in committed steps: every `K` steps each
    /// rank streams its expert weights + optimizer velocity to the buddy
    /// at `(rank + 1) mod n`, so a death costs at most `K` steps of expert
    /// staleness instead of an expert-shaped hole. `0` disables
    /// replication (the reroute-only behaviour).
    pub replica_interval: usize,
    /// Optional failure-domain labels steering buddy placement: each
    /// rank's buddy becomes the next rank in a *different* domain (see
    /// [`buddy_of`]), so losing one domain never takes an expert and its
    /// replica together. `None` keeps the plain `(rank + 1) mod n` ring.
    pub replica_domains: Option<DomainMap>,
    /// Partition degree `r` of the MoE layer's overlapped pipeline.
    /// `1` runs the serial path; higher degrees chunk the all-to-alls and
    /// overlap them with compute in both forward and backward. The loss
    /// trajectory is bit-identical at every degree.
    pub partition_degree: usize,
    /// Start in limbo: skip step 0 and enter the rejoin announce loop
    /// immediately. This is the entry point for a *fresh process* joining
    /// an already-running cluster (a respawned worker on a reconnectable
    /// transport); the rank trains only after an invite installs the
    /// survivors' state.
    pub rejoin: bool,
    /// Placement quantum in committed steps: every `K` steps the cluster
    /// exchanges load reports and the coordinator may replicate hot
    /// experts, migrate cold ones off gray ranks, and retune the shed
    /// capacity factor. `0` disables the placement controller (the static
    /// expert layout).
    pub placement_interval: usize,
    /// Replica cap per expert in a placement plan (static home included).
    pub placement_max_replicas: usize,
    /// An expert is *hot* when its busiest server's share exceeds this
    /// multiple of the mean per-rank load.
    pub placement_hot_factor: f64,
    /// A rank is *gray* when its observed link stall exceeds this multiple
    /// of the cluster median (and an absolute floor).
    pub placement_gray_factor: f64,
    /// Overload-shed capacity override is clamped to at least this
    /// fraction of the configured capacity factor, bounding token loss.
    pub placement_shed_floor: f64,
}

impl FtConfig {
    /// A small configuration that trains in well under a second per rank —
    /// the shape used by the chaos tests.
    pub fn tiny(steps: usize) -> Self {
        FtConfig {
            vocab: 16,
            regimes: 2,
            model_dim: 16,
            hidden_dim: 32,
            k: 2,
            capacity_factor: 2.0,
            seqs_per_rank: 4,
            seq_len: 8,
            steps,
            lr: 0.1,
            seed: 7,
            retry_budget: 3,
            backoff_ms: 1,
            checkpoint_every: 5,
            vote_timeout_ms: 500,
            rejoin_check_every: 2,
            adaptive_deadline: None,
            replica_interval: 0,
            replica_domains: None,
            partition_degree: 1,
            rejoin: false,
            placement_interval: 0,
            placement_max_replicas: 2,
            placement_hot_factor: 1.75,
            placement_gray_factor: 4.0,
            placement_shed_floor: 0.5,
        }
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the rejoin polling cadence (`0` disables rejoin).
    pub fn with_rejoin_check_every(mut self, every: usize) -> Self {
        self.rejoin_check_every = every;
        self
    }

    /// Starts this rank in limbo: it announces itself and waits for an
    /// invite instead of training from step 0. Used by respawned worker
    /// processes joining a running cluster over a reconnectable transport.
    pub fn with_rejoin(mut self) -> Self {
        self.rejoin = true;
        self
    }

    /// Installs an adaptive per-link receive-deadline policy.
    pub fn with_adaptive_deadline(mut self, policy: AdaptiveDeadline) -> Self {
        self.adaptive_deadline = Some(policy);
        self
    }

    /// Sets the buddy-replication quantum (`0` disables replication).
    pub fn with_replica_interval(mut self, interval: usize) -> Self {
        self.replica_interval = interval;
        self
    }

    /// Installs failure-domain labels for buddy placement.
    pub fn with_replica_domains(mut self, domains: DomainMap) -> Self {
        self.replica_domains = Some(domains);
        self
    }

    /// Sets the MoE partition degree (`1` = serial, no overlap).
    pub fn with_partition_degree(mut self, degree: usize) -> Self {
        self.partition_degree = degree.max(1);
        self
    }

    /// Sets the placement quantum (`0` disables the controller).
    pub fn with_placement_interval(mut self, interval: usize) -> Self {
        self.placement_interval = interval;
        self
    }

    /// Sets the replica cap per expert in placement plans.
    pub fn with_placement_max_replicas(mut self, max: usize) -> Self {
        self.placement_max_replicas = max.max(1);
        self
    }

    /// Sets the hot-expert replication threshold.
    pub fn with_placement_hot_factor(mut self, factor: f64) -> Self {
        self.placement_hot_factor = factor;
        self
    }

    /// Sets the gray-rank stall threshold multiple.
    pub fn with_placement_gray_factor(mut self, factor: f64) -> Self {
        self.placement_gray_factor = factor;
        self
    }
}

/// Durable-snapshot policy for [`run_ft_rank_durable`]. Kept apart from
/// the `Copy` [`FtConfig`] because it owns a path and an optional fault
/// plan.
///
/// All ranks of a job must point at the same `dir` (the launcher passes
/// one `--snapshot-dir` to every worker). A generation is *committed*
/// only once the coordinator has renamed its manifest into place; shards
/// without a manifest are invisible to [`resume`](Self::with_resume).
#[derive(Clone, Debug)]
pub struct SnapshotCfg {
    /// Shared directory holding shard and manifest files.
    pub dir: PathBuf,
    /// Commit a generation every `interval` committed steps (`0` disables
    /// writes; resume still works against an existing directory).
    pub interval: usize,
    /// Complete generations retained by GC; clamped to at least 1 so the
    /// newest complete generation is never deleted.
    pub keep: usize,
    /// Restore from the newest fully-restorable generation before
    /// training (cold start if the directory holds none).
    pub resume: bool,
    /// Optional seeded storage-fault plan injected beneath every
    /// snapshot write of this rank (salt = rank).
    pub chaos: Option<Arc<ChaosFsPlan>>,
}

impl SnapshotCfg {
    /// Snapshot into `dir` every `interval` steps with default retention.
    pub fn new(dir: impl Into<PathBuf>, interval: usize) -> Self {
        Self {
            dir: dir.into(),
            interval,
            keep: 2,
            resume: false,
            chaos: None,
        }
    }

    /// Overrides how many complete generations GC retains.
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }

    /// Restores from the newest fully-restorable generation at startup.
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Injects a seeded [`ChaosFsPlan`] beneath this rank's writes.
    pub fn with_chaos(mut self, plan: Arc<ChaosFsPlan>) -> Self {
        self.chaos = Some(plan);
        self
    }
}

/// What one rank experienced over a fault-tolerant training run.
#[derive(Clone, Debug)]
pub struct FtReport {
    /// Loss of the last committed step (`NaN` if none committed).
    pub final_loss: f32,
    /// Per-step committed losses; entries past a death are `NaN`, and a
    /// revived rank's dead window (death through rejoin) stays `NaN`.
    pub loss_curve: Vec<f32>,
    /// `Some(step)` if this rank died (was killed, or excommunicated by
    /// the cluster vote) while working on `step`.
    pub died_at_step: Option<usize>,
    /// Ranks this rank believes dead at the end of the run.
    pub dead_ranks: Vec<usize>,
    /// Step attempts rerun because of a transient fault verdict.
    pub retries: u64,
    /// Checkpoint restores performed after death verdicts.
    pub restores: u64,
    /// Membership epoch this rank ended the run at.
    pub final_epoch: u32,
    /// Every epoch this rank entered after 0, in order — one entry per
    /// observed membership change (burial or rejoin). Bit-identical across
    /// same-seed replays.
    pub epoch_transitions: Vec<u32>,
    /// Successful rejoins this rank performed after a scheduled revival.
    pub rejoins: u64,
    /// Times this rank parked: it could not assemble a voting majority
    /// (`floor(live/2) + 1`) against silence-only suspicions, so it
    /// stopped stepping and waited for the partition to heal instead of
    /// burying the unreachable side.
    pub parks: u64,
    /// State-transfer bytes this rank shipped as a donor plus bytes it
    /// applied as a rejoiner.
    pub transfer_bytes: u64,
    /// Replica quanta this rank successfully streamed to its buddy.
    pub replica_quanta: u64,
    /// Replica frame bytes this rank streamed to its buddy.
    pub replica_bytes: u64,
    /// Failover activations this rank performed as a buddy (hosting a dead
    /// rank's expert).
    pub failover_activations: u64,
    /// Hosted experts this rank streamed back to their revived owners.
    pub handbacks: u64,
    /// Handback bytes: shipped as a host plus applied as a rejoiner.
    pub handback_bytes: u64,
    /// Per-activation replica staleness in committed steps (how far behind
    /// the live trajectory the activated replica was).
    pub failover_staleness_steps: Vec<u64>,
    /// Snapshot shards this rank wrote durably (tmp + fsync + rename).
    pub snapshot_shards: u64,
    /// Bytes of shard payload this rank wrote durably.
    pub snapshot_bytes: u64,
    /// Generations this rank committed as coordinator (manifest renamed
    /// into place after every live rank acked durable).
    pub snapshot_generations: u64,
    /// Old complete generations this rank garbage-collected.
    pub snapshot_gc: u64,
    /// `Some(step)` if this rank restored from a snapshot at startup.
    pub resumed_at_step: Option<usize>,
    /// Restores that rebuilt this rank's expert from a buddy's on-disk
    /// replica because its own shard was missing or corrupt.
    pub snapshot_reconstructions: u64,
    /// Wall-clock milliseconds the startup restore scan + apply took
    /// (0.0 when resume was not requested).
    pub restore_ms: f64,
    /// Placement plans this rank committed (static refreshes included).
    pub placement_plans: u64,
    /// Expert replications committed across all plans (extra servers
    /// beyond the first, summed per plan).
    pub placement_replications: u64,
    /// Experts committed to serve away from their static home.
    pub placement_migrations: u64,
    /// Ranks demoted to serving no experts, summed per committed plan.
    pub placement_demotions: u64,
    /// Bytes of expert state streamed for placement transfers (shipped as
    /// a home plus applied as a new server).
    pub placement_transfer_bytes: u64,
    /// Token-to-expert assignments the gate admitted on this rank.
    pub tokens_routed: u64,
    /// Token-to-expert assignments shed by capacity-factor overload
    /// protection on this rank.
    pub tokens_shed: u64,
}

/// Replication bookkeeping one rank accumulates over a run; folded into the
/// [`FtReport`] at the end.
#[derive(Clone, Debug, Default)]
struct ReplicaStats {
    quanta: u64,
    bytes: u64,
    activations: u64,
    handbacks: u64,
    handback_bytes: u64,
    staleness: Vec<u64>,
}

/// Durable-snapshot bookkeeping one rank accumulates over a run; folded
/// into the [`FtReport`] at the end.
#[derive(Clone, Debug, Default)]
struct SnapStats {
    shards: u64,
    bytes: u64,
    generations: u64,
    gc: u64,
    reconstructions: u64,
    resumed_at: Option<usize>,
    restore_ms: f64,
}

/// Placement bookkeeping one rank accumulates over a run; folded into the
/// [`FtReport`] at the end.
#[derive(Clone, Debug, Default)]
struct PlacementStats {
    plans: u64,
    replications: u64,
    migrations: u64,
    demotions: u64,
    transfer_bytes: u64,
    version: u64,
    routed: u64,
    shed: u64,
}

/// The outcome of one cluster-wide vote.
struct Verdict {
    /// Some rank (possibly this one) reported a fault this attempt.
    any_error: bool,
    /// Bitmask of ranks the cluster now considers dead.
    suspects: u64,
    /// Subset of `suspects` backed by first-hand disconnection evidence —
    /// a closed link or a posted death — rather than silence. A confirmed
    /// death is buried regardless of quorum (a crashed rank cannot be on
    /// the other side of a partition); silence-only suspicions can bury
    /// a peer only while the remaining voters still form a majority.
    confirmed: u64,
}

/// Visits every parameter of the model triple in a fixed order (the order
/// checkpoints and the optimizer rely on).
fn visit_all(
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    f: &mut dyn FnMut(&mut Param),
) {
    embed.visit_params(f);
    moe.visit_params(f);
    head.visit_params(f);
}

/// Visits only the replicated parameters (embedding, gate, head) whose
/// gradients must be averaged across live ranks. Expert parameters are
/// rank-local and excluded.
fn visit_replicated(
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    f: &mut dyn FnMut(&mut Param),
) {
    embed.visit_params(f);
    moe.visit_params(&mut |p| {
        if p.name.starts_with("gate.") {
            f(p);
        }
    });
    head.visit_params(f);
}

/// One forward/backward/grad-sync attempt. Any fabric fault aborts the
/// attempt with a typed error; no parameter is updated here.
#[allow(clippy::too_many_arguments)]
fn try_step(
    h: &mut RankHandle,
    cfg: &FtConfig,
    markov: &RegimeMarkov,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    ce: &mut SoftmaxCrossEntropy,
    live: &[bool],
    step: usize,
    tag: u64,
) -> Result<f32, FabricError> {
    let me = h.rank();
    // The batch is a pure function of (seed, step, rank): a rewound step
    // replays exactly the same tokens.
    let mut rng = seeded(cfg.seed ^ 0x5EED_0000 ^ ((step as u64) << 8) ^ me as u64);
    let l = cfg.seq_len;
    let toks = markov.sample_batch(cfg.seqs_per_rank, l + 1, &mut rng);
    let mut inputs = Vec::with_capacity(cfg.seqs_per_rank * l);
    let mut targets = Vec::with_capacity(cfg.seqs_per_rank * l);
    for s in 0..cfg.seqs_per_rank {
        let row = &toks[s * (l + 1)..(s + 1) * (l + 1)];
        inputs.extend_from_slice(&row[..l]);
        targets.extend_from_slice(&row[1..]);
    }

    let x = embed.forward(&inputs);
    let hid = moe.forward(h, &x, tag)?;
    let logits = head.forward(&hid);
    let loss = ce.forward(&logits, &targets);
    let dlogits = ce.backward();
    let dhid = head.backward(&dlogits);

    // Split replicated-gradient allreduce. The head's gradients are final
    // before the MoE backward starts, so their reduction is folded into
    // the backward task graph and overlaps the backward all-to-alls on the
    // comm worker. Embedding and gate gradients only exist afterwards and
    // are reduced on a second, disjoint lane (`allreduce_live` uses two
    // tags per call). Per-element sums are unchanged, so the loss curve is
    // bit-identical to the old single fused allreduce.
    let mut head_flat: Vec<f32> = Vec::new();
    head.visit_params(&mut |p| head_flat.extend_from_slice(p.grad.data()));
    let dx = moe.backward_with_allreduce(
        h,
        &dhid,
        Some(GradAllreduce {
            values: &mut head_flat,
            tag: tag + ALLREDUCE_LANE,
            live,
        }),
    )?;
    embed.backward(&dx);

    let mut flat: Vec<f32> = Vec::new();
    embed.visit_params(&mut |p| flat.extend_from_slice(p.grad.data()));
    moe.visit_params(&mut |p| {
        if p.name.starts_with("gate.") {
            flat.extend_from_slice(p.grad.data());
        }
    });
    allreduce_live(h, &mut flat, tag + ALLREDUCE_LANE + 2, live)?;

    let scale = 1.0 / live.iter().filter(|&&a| a).count() as f32;
    let write_back = |p: &mut Param, src: &[f32], off: &mut usize| {
        let n = p.grad.numel();
        for (g, &r) in p.grad.data_mut().iter_mut().zip(&src[*off..*off + n]) {
            *g = r * scale;
        }
        *off += n;
    };
    let mut off = 0usize;
    embed.visit_params(&mut |p| write_back(p, &flat, &mut off));
    moe.visit_params(&mut |p| {
        if p.name.starts_with("gate.") {
            write_back(p, &flat, &mut off);
        }
    });
    let mut hoff = 0usize;
    head.visit_params(&mut |p| write_back(p, &head_flat, &mut hoff));

    // Per-expert sync-group gradient reduce under a committed placement.
    // Every member of `sync_group(e)` — the serving ranks plus the static
    // home, which always stays a member so transfers can source from it —
    // receives the *unscaled sum* of the members' partial gradients and
    // applies the identical update. A member the router sent no tokens to
    // contributes zeros (its body was untouched this attempt), so the sum
    // is the full-batch gradient regardless of how tokens fanned out.
    // Groups of one (the static layout) skip the wire entirely.
    if let Some(pl) = moe.placement().cloned() {
        for e in 0..pl.n_experts() {
            let group = pl.sync_group(e);
            if group.len() < 2 || !group.contains(&me) {
                continue;
            }
            let mut mask = vec![false; live.len()];
            for &r in &group {
                mask[r] = true;
            }
            let mut flat: Vec<f32> = Vec::new();
            moe.visit_serving_params(me, e, &mut |p| flat.extend_from_slice(p.grad.data()));
            allreduce_live(h, &mut flat, tag + ALLREDUCE_LANE + 4 + 2 * e as u64, &mask)?;
            let mut off = 0usize;
            moe.visit_serving_params(me, e, &mut |p| {
                let n = p.grad.numel();
                p.grad.data_mut().copy_from_slice(&flat[off..off + n]);
                off += n;
            });
        }
    }
    Ok(loss)
}

/// Pure tally of one vote round: folds the messages actually heard into
/// `(any_error, suspects, confirmed, unheard)`. `heard[r]` is
/// `Some((status, suspects, confirmed))` for a live peer whose vote
/// arrived and `None` for one that was silent across every copy; self and
/// already-dead entries are skipped.
///
/// A silent peer forces an error verdict (the attempt cannot commit) and
/// lands in the *unheard* mask — it is NOT folded into the suspect set
/// here. Whether silence escalates to a death suspicion is [`vote`]'s
/// decision, made only from silence in *both* rounds: a peer that answers
/// late is a voter, not a suspect, and must not be double-counted as both.
/// The confirmed mask gossips separately so every voter learns which
/// suspicions carry first-hand disconnection evidence (see [`Verdict`]).
fn tally_round(
    me: usize,
    live: &[bool],
    status: u8,
    suspects: u64,
    confirmed: u64,
    heard: &[Option<(u8, u64, u64)>],
) -> (bool, u64, u64, u64) {
    let mut any = status != 0;
    let mut sus = suspects;
    let mut conf = confirmed;
    let mut unheard = 0u64;
    for (r, &alive) in live.iter().enumerate() {
        if r == me || !alive {
            continue;
        }
        match heard[r] {
            Some((peer_status, peer_sus, peer_conf)) => {
                any |= peer_status != 0;
                sus |= peer_sus;
                conf |= peer_conf;
            }
            None => {
                any = true;
                unheard |= 1u64 << r;
            }
        }
    }
    (any, sus, conf, unheard)
}

/// One gossip round of the vote protocol: broadcast
/// `(status, suspects, confirmed)` to every live peer ([`VOTE_COPIES`]
/// copies), then collect each peer's message under a deadline and
/// [`tally_round`] the result. Returns
/// `(any_error, suspects, confirmed, unheard)`, or an error if *this*
/// rank died mid-round.
fn vote_round(
    h: &mut RankHandle,
    live: &[bool],
    base: u64,
    status: u8,
    suspects: u64,
    confirmed: u64,
    deadline: Duration,
) -> Result<(bool, u64, u64, u64), FabricError> {
    let me = h.rank();
    let mut buf = [0u8; 17];
    buf[0] = status;
    buf[1..9].copy_from_slice(&suspects.to_le_bytes());
    buf[9..17].copy_from_slice(&confirmed.to_le_bytes());
    let msg = Bytes::copy_from_slice(&buf);
    for (r, &alive) in live.iter().enumerate() {
        if r == me || !alive {
            continue;
        }
        for c in 0..VOTE_COPIES {
            match h.send(r, base + c, msg.clone()) {
                Ok(()) => {}
                // Our own kill threshold fired: we are the dead rank.
                Err(FabricError::Disconnected { peer }) if peer == me => {
                    return Err(FabricError::Disconnected { peer })
                }
                // The link misbehaved; the peer's receive deadline and the
                // remaining copies cover it.
                Err(_) => {}
            }
        }
    }
    let mut heard: Vec<Option<(u8, u64, u64)>> = vec![None; live.len()];
    for (r, &alive) in live.iter().enumerate() {
        if r == me || !alive {
            continue;
        }
        for c in 0..VOTE_COPIES {
            match h.recv_timeout(r, base + c, deadline) {
                Ok(payload) if payload.len() == 17 => {
                    heard[r] = Some((
                        payload[0],
                        u64::from_le_bytes(payload[1..9].try_into().expect("17-byte vote")),
                        u64::from_le_bytes(payload[9..17].try_into().expect("17-byte vote")),
                    ));
                    break;
                }
                Ok(_) => {} // malformed: treat like a corrupt copy
                Err(FabricError::Disconnected { peer }) if peer == me => {
                    return Err(FabricError::Disconnected { peer })
                }
                Err(_) => {} // timeout / corrupt / peer gone: try the next copy
            }
        }
    }
    Ok(tally_round(me, live, status, suspects, confirmed, &heard))
}

/// Two-round vote: round one spreads first-hand observations, round two
/// confirms the union so every live rank lands on the same verdict.
///
/// Round two rebroadcasts only *evidence* — first-hand suspicions and
/// suspicions heard from peers — never round one's unheard mask. A peer
/// that missed its round-one copy window but answers in round two is
/// therefore counted once, as a voter; with `escalate` (attempts past the
/// retry budget) only a peer silent in **both** rounds is presumed dead.
#[allow(clippy::too_many_arguments)]
fn vote(
    h: &mut RankHandle,
    live: &[bool],
    tag: u64,
    status: u8,
    suspects: u64,
    confirmed: u64,
    deadline: Duration,
    escalate: bool,
) -> Result<Verdict, FabricError> {
    let base = tag + VOTE_LANE;
    let (a1, s1, c1, u1) = vote_round(h, live, base, status, suspects, confirmed, deadline)?;
    let (a2, s2, c2, u2) = vote_round(h, live, base + VOTE_COPIES, u8::from(a1), s1, c1, deadline)?;
    let mut suspects = s2;
    if escalate {
        // Escalated silence is *presumed* death, never confirmed: it is
        // exactly the evidence class a partition forges, so it stays
        // subject to the majority-quorum rule at burial time.
        suspects |= u1 & u2;
    }
    Ok(Verdict {
        any_error: a2,
        suspects,
        confirmed: c2,
    })
}

/// Flags each parameter of [`visit_all`]'s fixed order as replicated
/// (`true`) or rank-local (`false`). The optimizer's velocity slots follow
/// the same order, so the flags select both the weights and the optimizer
/// state that a rejoin transfer must carry.
fn replicated_flags(
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
) -> Vec<bool> {
    let mut flags = Vec::new();
    embed.visit_params(&mut |_| flags.push(true));
    moe.visit_params(&mut |p| flags.push(p.name.starts_with("gate.")));
    head.visit_params(&mut |_| flags.push(true));
    flags
}

/// Serializes the donor's replicated parameters **and** their optimizer
/// velocity slots as one CRC-sealed checkpoint payload — exactly what a
/// rejoining rank needs to continue the replicated trajectory bit-for-bit.
/// Expert parameters are rank-local and excluded (the rejoiner's own expert
/// survived in its thread; it simply did not train while dead).
pub fn replicated_state_payload(
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
) -> Vec<u8> {
    opt.ensure_state(&mut |f| visit_all(embed, moe, head, f));
    let flags = replicated_flags(embed, moe, head);
    checkpoint::save(&mut |f| {
        visit_replicated(embed, moe, head, f);
        let mut i = 0usize;
        opt.visit_state(&mut |p| {
            if flags[i] {
                f(p);
            }
            i += 1;
        });
    })
}

/// Applies a payload produced by [`replicated_state_payload`] to this
/// rank's replicated modules and optimizer state. Callers must have
/// verified the seal first (see [`receive_state`]); a mismatch here is a
/// protocol bug, not a link fault.
pub fn apply_replicated_state(
    payload: &[u8],
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
) -> Result<(), checkpoint::CheckpointError> {
    opt.ensure_state(&mut |f| visit_all(embed, moe, head, f));
    let flags = replicated_flags(embed, moe, head);
    checkpoint::load(payload, &mut |f| {
        visit_replicated(embed, moe, head, f);
        let mut i = 0usize;
        opt.visit_state(&mut |p| {
            if flags[i] {
                f(p);
            }
            i += 1;
        });
    })
}

/// Global indices (in [`visit_all`]'s fixed order, which the optimizer's
/// velocity slots mirror) of the rank-local expert parameters. Identical on
/// every rank — the model structure is — so a host can rebuild a ward's
/// velocity slot names without ever holding the ward's optimizer.
fn expert_velocity_indices(
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
) -> Vec<usize> {
    replicated_flags(embed, moe, head)
        .iter()
        .enumerate()
        .filter(|&(_, &replicated)| !replicated)
        .map(|(i, _)| i)
        .collect()
}

/// Serializes this rank's expert weights **and** their optimizer velocity
/// slots as one CRC-sealed checkpoint payload — the replica a buddy needs
/// to continue the expert's trajectory with at most a quantum of staleness.
/// The complement of [`replicated_state_payload`].
pub fn expert_state_payload(
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
) -> Vec<u8> {
    opt.ensure_state(&mut |f| visit_all(embed, moe, head, f));
    let flags = replicated_flags(embed, moe, head);
    checkpoint::save(&mut |f| {
        moe.visit_params(&mut |p| {
            if !p.name.starts_with("gate.") {
                f(p);
            }
        });
        let mut i = 0usize;
        opt.visit_state(&mut |p| {
            if !flags[i] {
                f(p);
            }
            i += 1;
        });
    })
}

/// Applies a payload produced by [`expert_state_payload`] (or a host's
/// [`hosted_replica_payload`] of the same expert) to this rank's own expert
/// and its velocity slots. Callers must have verified the seal first.
pub fn apply_own_expert_state(
    payload: &[u8],
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
) -> Result<(), checkpoint::CheckpointError> {
    opt.ensure_state(&mut |f| visit_all(embed, moe, head, f));
    let flags = replicated_flags(embed, moe, head);
    checkpoint::load(payload, &mut |f| {
        moe.visit_params(&mut |p| {
            if !p.name.starts_with("gate.") {
                f(p);
            }
        });
        let mut i = 0usize;
        opt.visit_state(&mut |p| {
            if !flags[i] {
                f(p);
            }
            i += 1;
        });
    })
}

/// Serializes a hosted expert and the host-side velocity the buddy trained
/// it with, in the exact layout of [`expert_state_payload`] — velocity
/// entries are named by the *global* slot indices (`vel_indices`) so the
/// revived owner's strict positional load accepts the frame.
fn hosted_replica_payload(
    moe: &mut DistributedMoeLayer,
    dead: usize,
    vel: &[Tensor],
    vel_indices: &[usize],
) -> Vec<u8> {
    checkpoint::save(&mut |f| {
        moe.visit_hosted_params(dead, f);
        for (k, &i) in vel_indices.iter().enumerate() {
            let mut p = Param::new(format!("opt.v{i}"), vel[k].clone());
            f(&mut p);
        }
    })
}

/// Applies a verified replica frame payload to the hosted copy of `dead`'s
/// expert and the host-side velocity vector.
fn apply_hosted_replica(
    payload: &[u8],
    moe: &mut DistributedMoeLayer,
    dead: usize,
    vel: &mut [Tensor],
    vel_indices: &[usize],
) -> Result<(), checkpoint::CheckpointError> {
    checkpoint::load(payload, &mut |f| {
        moe.visit_hosted_params(dead, f);
        for (k, &i) in vel_indices.iter().enumerate() {
            let mut p = Param::new(format!("opt.v{i}"), vel[k].clone());
            f(&mut p);
            vel[k] = p.value;
        }
    })
}

/// Applies a verified [`expert_state_payload`] frame from expert `e`'s
/// static home to this rank's *guest* body and a guest velocity vector —
/// the receiving side of a placement transfer. Same layout discipline as
/// [`apply_hosted_replica`]: velocity entries are named by the global slot
/// indices, so the frame a home produces loads positionally.
fn apply_guest_state(
    payload: &[u8],
    moe: &mut DistributedMoeLayer,
    me: usize,
    e: usize,
    vel: &mut [Tensor],
    vel_indices: &[usize],
) -> Result<(), checkpoint::CheckpointError> {
    checkpoint::load(payload, &mut |f| {
        moe.visit_serving_params(me, e, f);
        for (k, &i) in vel_indices.iter().enumerate() {
            let mut p = Param::new(format!("opt.v{i}"), vel[k].clone());
            f(&mut p);
            vel[k] = p.value;
        }
    })
}

/// Streams a sealed state payload to `to` in bounded chunks: a 16-byte
/// header `[total_bytes u64][n_chunks u64]` on `tag`, then chunk `i` on
/// `tag + 1 + i`, each frame sent [`XFER_COPIES`] times on the
/// control-plane path (transfers cross an epoch boundary by construction).
/// Returns the byte count shipped (header + payload, one copy).
///
/// Only a self-death aborts the stream — link faults are covered by the
/// duplicate copies and the receiver's seal check.
pub fn stream_state(
    h: &mut RankHandle,
    to: usize,
    tag: u64,
    payload: &[u8],
) -> Result<u64, FabricError> {
    let me = h.rank();
    let nchunks = payload.len().div_ceil(TRANSFER_CHUNK);
    assert!(nchunks < 4094, "transfer exceeds its tag window");
    let mut hdr = [0u8; 16];
    hdr[..8].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    hdr[8..].copy_from_slice(&(nchunks as u64).to_le_bytes());
    let mut frames: Vec<(u64, Bytes)> = vec![(tag, Bytes::copy_from_slice(&hdr))];
    for (i, chunk) in payload.chunks(TRANSFER_CHUNK).enumerate() {
        frames.push((tag + 1 + i as u64, Bytes::copy_from_slice(chunk)));
    }
    for (t, msg) in frames {
        for _ in 0..XFER_COPIES {
            match h.send_control(to, t, msg.clone()) {
                Ok(()) => {}
                Err(FabricError::Disconnected { peer }) if peer == me => {
                    return Err(FabricError::Disconnected { peer })
                }
                Err(_) => {}
            }
        }
    }
    Ok(16 + payload.len() as u64)
}

/// Receives a state transfer streamed by [`stream_state`]:
/// **parse, verify, then let the caller apply**. The reassembled payload is
/// returned only after its length matches the header and its checkpoint
/// seal verifies — a transfer torn by a donor death, a dropped chunk, or
/// link damage yields an error and leaves no partial state anywhere.
pub fn receive_state(
    h: &mut RankHandle,
    from: usize,
    tag: u64,
    deadline: Duration,
) -> Result<Vec<u8>, FabricError> {
    let me = h.rank();
    let recv_frame = |h: &mut RankHandle, t: u64| -> Result<Option<Bytes>, FabricError> {
        for _ in 0..XFER_COPIES {
            match h.recv_timeout(from, t, deadline) {
                Ok(m) => return Ok(Some(m)),
                Err(FabricError::Disconnected { peer }) if peer == me => {
                    return Err(FabricError::Disconnected { peer })
                }
                Err(_) => {} // timeout / damaged copy: try the next one
            }
        }
        Ok(None)
    };
    let hdr = match recv_frame(h, tag)? {
        Some(m) if m.len() == 16 => m,
        _ => return Err(FabricError::Corrupt { peer: from, tag }),
    };
    let total = u64::from_le_bytes(hdr[..8].try_into().expect("16-byte header")) as usize;
    let nchunks = u64::from_le_bytes(hdr[8..].try_into().expect("16-byte header")) as usize;
    // A damaged header that slipped through CRC cannot be allowed to drive
    // an unbounded allocation or a bogus chunk walk.
    if total > (1 << 28) || nchunks != total.div_ceil(TRANSFER_CHUNK) {
        return Err(FabricError::Corrupt { peer: from, tag });
    }
    let mut buf = Vec::with_capacity(total);
    for i in 0..nchunks {
        let t = tag + 1 + i as u64;
        match recv_frame(h, t)? {
            Some(m) => buf.extend_from_slice(&m),
            None => return Err(FabricError::Corrupt { peer: from, tag: t }),
        }
    }
    if buf.len() != total || checkpoint::verify(&buf).is_err() {
        return Err(FabricError::Corrupt { peer: from, tag });
    }
    Ok(buf)
}

/// One buddy-replication quantum. Each rank streams its expert frame to
/// [`buddy_of`]`(rank)` and absorbs a frame from every *ward* — each rank
/// whose buddy it is — scheduled on the two-worker overlap executor: the
/// send is queued before the receives and every rank follows the same
/// schedule, so the exchange cannot deadlock — the receive deadline bounds
/// the wait even when a ward died between the vote and this quantum.
/// Without a domain map the buddy graph is the plain ring and each rank
/// has exactly one ward; domain-aware placement can assign several wards
/// to one rank (it is not a permutation), hence the per-ward store map.
///
/// A skipped send (dead buddy) or failed send breaks the delta chain, so
/// the encoder is reset and the next frame the buddy sees is a full
/// resync. A missed or damaged inbound frame is simply dropped: the store
/// keeps its previous replica and later deltas are rejected until the
/// ward's periodic full frame re-anchors the chain.
#[allow(clippy::too_many_arguments)]
fn replicate_quantum(
    h: &mut RankHandle,
    cfg: &FtConfig,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
    live: &[bool],
    enc: &mut DeltaEncoder,
    stores: &mut BTreeMap<usize, ReplicaStore>,
    repl: &mut ReplicaStats,
    step: usize,
) {
    let me = h.rank();
    let p = h.world_size();
    let domains = cfg.replica_domains;
    let buddy = buddy_of(me, p, domains.as_ref());
    let wards: Vec<usize> = (0..p)
        .filter(|&r| r != me && live[r] && buddy_of(r, p, domains.as_ref()) == me)
        .collect();
    let send_to_buddy = buddy != me && live[buddy];
    if !send_to_buddy {
        enc.reset();
    }
    if !send_to_buddy && wards.is_empty() {
        return;
    }
    let deadline = Duration::from_millis(cfg.vote_timeout_ms);
    let tag = replica_tag(step);
    let quantum = step as u64;
    let out_frame: Mutex<Option<Vec<u8>>> = Mutex::new(None);
    let in_frames: Vec<Mutex<Option<Bytes>>> = wards.iter().map(|_| Mutex::new(None)).collect();
    let sent: Mutex<Option<(bool, usize)>> = Mutex::new(None);
    let handle = Mutex::new(&mut *h);
    let stores_mx = Mutex::new(&mut *stores);
    let cancel = AtomicBool::new(false);
    let mut tasks: Vec<ExecTask<'_>> = vec![
        ExecTask {
            worker: Worker::Compute,
            deps: vec![],
            span: Some(("replication", format!("encode@{step}"))),
            run: Box::new(|| {
                if send_to_buddy {
                    let payload = expert_state_payload(embed, moe, head, opt);
                    *out_frame.lock().expect("mailbox") = Some(enc.encode(&payload, quantum));
                }
            }),
        },
        ExecTask {
            worker: Worker::Comm,
            deps: vec![0],
            span: Some(("replication", format!("send@{step}"))),
            run: Box::new(|| {
                if let Some(frame) = out_frame.lock().expect("mailbox").take() {
                    let n = frame.len();
                    let ok = handle
                        .lock()
                        .expect("handle")
                        .send(buddy, tag, Bytes::from(frame))
                        .is_ok();
                    *sent.lock().expect("mailbox") = Some((ok, n));
                }
            }),
        },
    ];
    for (k, &ward) in wards.iter().enumerate() {
        let in_frame = &in_frames[k];
        let handle = &handle;
        let stores_mx = &stores_mx;
        let recv_idx = tasks.len();
        tasks.push(ExecTask {
            worker: Worker::Comm,
            deps: vec![],
            span: Some(("replication", format!("recv{ward}@{step}"))),
            run: Box::new(move || {
                if let Ok(m) = handle
                    .lock()
                    .expect("handle")
                    .recv_timeout(ward, tag, deadline)
                {
                    *in_frame.lock().expect("mailbox") = Some(m);
                }
            }),
        });
        tasks.push(ExecTask {
            worker: Worker::Compute,
            deps: vec![recv_idx],
            span: Some(("replication", format!("apply{ward}@{step}"))),
            run: Box::new(move || {
                if let Some(m) = in_frame.lock().expect("mailbox").take() {
                    // A damaged or out-of-chain frame leaves the store
                    // untouched; the ward's next full frame re-anchors it.
                    let _ = stores_mx
                        .lock()
                        .expect("stores")
                        .entry(ward)
                        .or_default()
                        .apply(&m);
                }
            }),
        });
    }
    if run_overlapped_cancellable(tasks, &cancel).is_err() {
        enc.reset();
        return;
    }
    match sent.into_inner().ok().flatten() {
        Some((true, n)) => {
            repl.quanta += 1;
            repl.bytes += n as u64;
            schemoe_obs::counters_for_rank(me).add_replica_sent(n);
        }
        Some((false, _)) => enc.reset(),
        None => {}
    }
}

/// One durable-snapshot quantum, scheduled on the two-worker overlap
/// executor so the fsync'd write rides the comm worker while compute is
/// free: every live rank encodes its shard (replicated modules + own
/// expert + hosted/stored replicas + step/seed) on the compute worker,
/// writes it via write-tmp → fsync → rename on the comm worker, and acks
/// `[generation, len, crc]` to the coordinator (lowest live rank). The
/// coordinator overlaps ack collection with its own encode, then commits
/// the generation by atomically writing a manifest listing every acked
/// shard — only after *all* live ranks acked durable — and runs
/// retention GC. Any failure (torn write, ENOSPC, missing ack) simply
/// leaves the generation uncommitted: training continues and resume
/// falls back to the previous complete generation.
#[allow(clippy::too_many_arguments)]
fn snapshot_quantum(
    h: &mut RankHandle,
    cfg: &FtConfig,
    s: &SnapshotCfg,
    fs: &dyn StorageFs,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
    live: &[bool],
    stores: &BTreeMap<usize, ReplicaStore>,
    hosted_vel: &BTreeMap<usize, Vec<Tensor>>,
    vel_indices: &[usize],
    snap: &mut SnapStats,
    step: usize,
    generation: u64,
) {
    let me = h.rank();
    let p = h.world_size();
    let Some(coordinator) = (0..p).find(|&r| live[r]) else {
        return;
    };
    let peers: Vec<usize> = (0..p).filter(|&r| live[r] && r != coordinator).collect();
    let deadline = Duration::from_millis(cfg.vote_timeout_ms.max(100) * 2);
    let tag = snapshot_ack_tag(generation);
    let shard_path = s.dir.join(snapshot::shard_file_name(generation, me));
    // Captured before `moe` is mutably borrowed by the encode task: the
    // active placement rides the manifest so a resumed job restarts with
    // the same expert layout it snapshotted under.
    let placement_blob = moe.placement().map(|pl| pl.encode()).unwrap_or_default();

    let encoded: Mutex<Option<Vec<u8>>> = Mutex::new(None);
    // `(len, crc)` of this rank's shard once it is durable on disk.
    let wrote: Mutex<Option<(u32, u32)>> = Mutex::new(None);
    let acks: Mutex<BTreeMap<usize, (u32, u32)>> = Mutex::new(BTreeMap::new());
    // Generations GC'd, present only once the manifest rename committed.
    let committed: Mutex<Option<u64>> = Mutex::new(None);
    let handle = Mutex::new(&mut *h);
    let cancel = AtomicBool::new(false);

    let mut tasks: Vec<ExecTask<'_>> = vec![
        ExecTask {
            worker: Worker::Compute,
            deps: vec![],
            span: Some(("durability", format!("encode-g{generation}@{step}"))),
            run: Box::new(|| {
                let mut replicas: Vec<ShardReplica> = stores
                    .iter()
                    .filter_map(|(&ward, st)| {
                        st.replica().map(|(q, payload)| ShardReplica {
                            ward: ward as u32,
                            quantum: q,
                            payload: payload.to_vec(),
                        })
                    })
                    .collect();
                // A hosted expert keeps training after failover, so its
                // live state supersedes whatever stored frame it was
                // activated from.
                for r in moe.hosted_dead_ranks() {
                    let Some(vel) = hosted_vel.get(&r) else {
                        continue;
                    };
                    let payload = hosted_replica_payload(moe, r, vel, vel_indices);
                    match replicas.iter_mut().find(|rep| rep.ward == r as u32) {
                        Some(rep) => {
                            rep.quantum = step as u64;
                            rep.payload = payload;
                        }
                        None => replicas.push(ShardReplica {
                            ward: r as u32,
                            quantum: step as u64,
                            payload,
                        }),
                    }
                }
                let shard = Shard {
                    generation,
                    rank: me as u32,
                    world: p as u32,
                    step: step as u64,
                    seed: cfg.seed,
                    replicated: replicated_state_payload(embed, moe, head, opt),
                    expert: expert_state_payload(embed, moe, head, opt),
                    replicas,
                };
                *encoded.lock().expect("mailbox") = Some(shard.encode());
            }),
        },
        ExecTask {
            worker: Worker::Comm,
            deps: vec![0],
            span: Some(("durability", format!("write-g{generation}@{step}"))),
            run: Box::new(|| {
                if let Some(bytes) = encoded.lock().expect("mailbox").take() {
                    if write_atomic(fs, &shard_path, &bytes).is_ok() {
                        let len = bytes.len() as u32;
                        let crc = checkpoint::crc32(&bytes);
                        *wrote.lock().expect("mailbox") = Some((len, crc));
                        if me != coordinator {
                            // Durable-ack frame: [generation u64][len u32][crc u32].
                            let mut ack = [0u8; 16];
                            ack[..8].copy_from_slice(&generation.to_le_bytes());
                            ack[8..12].copy_from_slice(&len.to_le_bytes());
                            ack[12..].copy_from_slice(&crc.to_le_bytes());
                            let msg = Bytes::copy_from_slice(&ack);
                            for _ in 0..VOTE_COPIES {
                                let _ = handle.lock().expect("handle").send_control(
                                    coordinator,
                                    tag,
                                    msg.clone(),
                                );
                            }
                        }
                    }
                }
            }),
        },
    ];
    if me == coordinator {
        let handle = &handle;
        let acks_ref = &acks;
        let wrote_ref = &wrote;
        let committed_ref = &committed;
        let peers_ref = &peers;
        let collect_idx = tasks.len();
        tasks.push(ExecTask {
            worker: Worker::Comm,
            deps: vec![],
            span: Some(("durability", format!("collect-g{generation}@{step}"))),
            run: Box::new(move || {
                for &r in peers_ref {
                    for _ in 0..VOTE_COPIES {
                        match handle
                            .lock()
                            .expect("handle")
                            .recv_timeout(r, tag, deadline)
                        {
                            Ok(m) if m.len() == 16 => {
                                let g = u64::from_le_bytes(m[..8].try_into().expect("16-byte ack"));
                                if g == generation {
                                    let len = u32::from_le_bytes(
                                        m[8..12].try_into().expect("16-byte ack"),
                                    );
                                    let crc = u32::from_le_bytes(
                                        m[12..].try_into().expect("16-byte ack"),
                                    );
                                    acks_ref.lock().expect("mailbox").insert(r, (len, crc));
                                    break;
                                }
                                // A straggler ack from a failed generation:
                                // keep draining copies.
                            }
                            Ok(_) => {}      // damaged copy: try the next one
                            Err(_) => break, // silent peer: shard not durable in time
                        }
                    }
                }
            }),
        });
        tasks.push(ExecTask {
            worker: Worker::Comm,
            deps: vec![1, collect_idx],
            span: Some(("durability", format!("commit-g{generation}@{step}"))),
            run: Box::new(move || {
                // The manifest's existence IS the commit: write it only
                // once our own shard and every peer's shard are durable.
                let Some((own_len, own_crc)) = *wrote_ref.lock().expect("mailbox") else {
                    return;
                };
                let acks = acks_ref.lock().expect("mailbox");
                if peers_ref.iter().any(|r| !acks.contains_key(r)) {
                    return;
                }
                let mut entries: Vec<ManifestEntry> = Vec::with_capacity(peers_ref.len() + 1);
                entries.push(ManifestEntry {
                    rank: me as u32,
                    name: snapshot::shard_file_name(generation, me),
                    len: own_len,
                    crc: own_crc,
                });
                for &r in peers_ref {
                    let (len, crc) = acks[&r];
                    entries.push(ManifestEntry {
                        rank: r as u32,
                        name: snapshot::shard_file_name(generation, r),
                        len,
                        crc,
                    });
                }
                entries.sort_by_key(|e| e.rank);
                let man = Manifest {
                    generation,
                    world: p as u32,
                    step: step as u64,
                    seed: cfg.seed,
                    shards: entries,
                    placement: placement_blob.clone(),
                };
                let mpath = s.dir.join(snapshot::manifest_file_name(generation));
                if write_atomic(fs, &mpath, &man.encode()).is_ok() {
                    let removed = gc_generations(fs, &s.dir, s.keep);
                    *committed_ref.lock().expect("mailbox") = Some(removed);
                }
            }),
        });
    }
    if run_overlapped_cancellable(tasks, &cancel).is_err() {
        return;
    }
    if let Some((len, _)) = wrote.into_inner().ok().flatten() {
        snap.shards += 1;
        snap.bytes += u64::from(len);
        schemoe_obs::counters_for_rank(me).add_snapshot_write(len as usize);
    }
    if let Some(removed) = committed.into_inner().ok().flatten() {
        snap.generations += 1;
        snap.gc += removed;
        let counters = schemoe_obs::counters_for_rank(me);
        counters.add_snapshot_generation();
        for _ in 0..removed {
            counters.add_snapshot_gc();
        }
    }
}

/// One placement quantum: every rank probes its links and drains its
/// routing-load accumulators into a [`LoadReport`]; the coordinator
/// (lowest live rank) runs the deterministic policy ([`decide_plan`]) —
/// replicate hot experts onto underloaded ranks, migrate experts off gray
/// ranks, retune the shed capacity factor — and the plan commits through
/// a two-phase protocol on the [`PLACEMENT_NS`] tag namespace: reports →
/// plan → staged expert transfers (CRC-sealed [`stream_state`] frames,
/// parse-verify-apply) → all-ranks READY → coordinator DECISION. Any
/// failure anywhere aborts the quantum on that rank: staged guest bodies
/// are discarded and routing stays on the old placement. A rank that
/// dies mid-quantum tears the protocol, but the next step's vote buries
/// it and the burial path resets *everyone* to the static layout, so a
/// torn commit can never leave ranks routing on divergent placements for
/// more than one attempt.
///
/// Stall probes time this rank's own control sends: chaos latency and
/// bandwidth shaping sleep the *sender*, so the outbound link cost lands
/// in the probe; healthy in-process links read ~0 µs, below the gray
/// floor, keeping no-chaos replays plan-deterministic.
#[allow(clippy::too_many_arguments)]
fn placement_quantum(
    h: &mut RankHandle,
    cfg: &FtConfig,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
    live: &[bool],
    guest_vel: &mut BTreeMap<usize, Vec<Tensor>>,
    vel_indices: &[usize],
    pstats: &mut PlacementStats,
    step: usize,
) {
    let me = h.rank();
    let p = h.world_size();
    let epr = moe.experts_per_rank();
    // The transfer payload is `expert_state_payload`, which carries *all*
    // of a rank's local experts in one frame — unambiguous only at one
    // expert per rank (the shape the FT loop always builds).
    if epr != 1 {
        return;
    }
    let n_experts = p * epr;
    let Some(coordinator) = (0..p).find(|&r| live[r]) else {
        return;
    };
    let deadline = Duration::from_millis(cfg.vote_timeout_ms.max(100) * 2);
    let base = placement_tag(step);

    // Phase 1 — stall probes, sender-side timed. Everyone probes everyone
    // (sends are buffered, so the phase cannot deadlock), then drains the
    // inbound probes so the step-scoped window closes clean.
    let probe = Bytes::from(vec![0u8; 64]);
    let mut stall_p99_us = vec![0u64; p];
    for r in (0..p).filter(|&r| live[r] && r != me) {
        let mut worst = 0u64;
        for _ in 0..PLACEMENT_PROBES {
            let t0 = Instant::now();
            if h.send_control(r, base + PL_PROBE, probe.clone()).is_err() {
                return;
            }
            worst = worst.max(t0.elapsed().as_micros() as u64);
        }
        stall_p99_us[r] = worst;
    }
    for r in (0..p).filter(|&r| live[r] && r != me) {
        for _ in 0..PLACEMENT_PROBES {
            let _ = h.recv_timeout(r, base + PL_PROBE, deadline);
        }
    }

    // Phase 2 — drain this rank's routing-load accumulators.
    let (mut loads, shed, routed, service_p99_us) = moe.take_load_stats();
    loads.resize(n_experts, 0);
    pstats.routed += routed;
    pstats.shed += shed;
    let report = LoadReport {
        rank: me,
        loads,
        shed,
        routed,
        service_p99_us,
        stall_p99_us,
    };

    // Phase 3 — reports to the coordinator, plan back out. The plan frame
    // is `[1][plan]`, or a 1-byte no-plan marker when any report was
    // missing, so peers never stall a full deadline on the no-plan path.
    let plan: Option<PlacementPlan> = if me == coordinator {
        let mut reports: Vec<Option<LoadReport>> = (0..p).map(|_| None).collect();
        reports[me] = Some(report);
        for r in (0..p).filter(|&r| live[r] && r != me) {
            for _ in 0..XFER_COPIES {
                match h.recv_timeout(r, base + PL_REPORT, deadline) {
                    Ok(m) => match LoadReport::decode(&m) {
                        Ok(rep) if rep.rank == r => {
                            reports[r] = Some(rep);
                            break;
                        }
                        _ => {} // damaged copy: try the next one
                    },
                    Err(_) => break, // silent peer: no report this quantum
                }
            }
        }
        let have_all = (0..p).filter(|&r| live[r]).all(|r| reports[r].is_some());
        let decided = have_all.then(|| {
            decide_plan(
                n_experts,
                epr,
                live,
                &reports,
                cfg.capacity_factor,
                &PolicyConfig {
                    hot_factor: cfg.placement_hot_factor,
                    gray_factor: cfg.placement_gray_factor,
                    max_replicas: cfg.placement_max_replicas,
                    shed_floor: cfg.placement_shed_floor,
                    min_tokens: 1,
                },
                pstats.version + 1,
            )
        });
        let frame = match &decided {
            Some(plan) => {
                let mut f = vec![1u8];
                f.extend_from_slice(&plan.encode());
                Bytes::from(f)
            }
            None => Bytes::from_static(&[0u8]),
        };
        for r in (0..p).filter(|&r| live[r] && r != me) {
            for _ in 0..XFER_COPIES {
                if h.send_control(r, base + PL_PLAN, frame.clone()).is_err() {
                    return;
                }
            }
        }
        decided
    } else {
        let frame = Bytes::from(report.encode());
        for _ in 0..XFER_COPIES {
            if h.send_control(coordinator, base + PL_REPORT, frame.clone())
                .is_err()
            {
                return;
            }
        }
        let mut got = None;
        for _ in 0..XFER_COPIES {
            match h.recv_timeout(coordinator, base + PL_PLAN, deadline) {
                Ok(m) if m.first() == Some(&1) => {
                    if let Ok(plan) = PlacementPlan::decode(&m[1..]) {
                        got = Some(plan);
                        break;
                    }
                }
                Ok(_) => break,  // explicit no-plan marker (or damage: abort)
                Err(_) => break, // silent coordinator: abort
            }
        }
        got
    };
    let Some(plan) = plan else {
        // No plan this quantum: nothing was staged, nothing to abort. The
        // coordinator's READY collection (if it decided a plan we never
        // saw) times out and aborts there too.
        return;
    };

    // Phase 4 — stage transfers. For each expert gaining a server outside
    // its old sync group, the static home (always in sync — see the
    // per-expert gradient reduce in `try_step`) streams weights +
    // velocity; the new server installs a deterministically-seeded guest
    // body and applies the verified payload over it.
    let current = moe
        .placement()
        .cloned()
        .unwrap_or_else(|| Placement::static_layout(n_experts, epr));
    let next = plan.placement.clone();
    let mut ok = true;
    let mut staged: Vec<usize> = Vec::new();
    'experts: for e in 0..n_experts {
        let recvs = next.receivers_vs(&current, e);
        if recvs.is_empty() {
            continue;
        }
        let home = next.static_home(e);
        let tag_e = base + 4096 * (1 + e as u64);
        if me == home {
            let payload = expert_state_payload(embed, moe, head, opt);
            for &r in &recvs {
                match stream_state(h, r, tag_e, &payload) {
                    Ok(n) => {
                        pstats.transfer_bytes += n;
                        schemoe_obs::counters_for_rank(me).add_placement_transfer(n as usize);
                    }
                    Err(_) => {
                        ok = false;
                        break 'experts;
                    }
                }
            }
        } else if recvs.contains(&me) {
            let mut rng = seeded(cfg.seed ^ 0xE8_0000 ^ home as u64);
            moe.install_guest_expert(
                me,
                e,
                Box::new(FfExpert::new(cfg.model_dim, cfg.hidden_dim, &mut rng)),
            );
            staged.push(e);
            let mut vel: Vec<Tensor> = Vec::new();
            moe.visit_serving_params(me, e, &mut |prm| {
                vel.push(Tensor::zeros(prm.value.dims()));
            });
            match receive_state(h, home, tag_e, deadline) {
                Ok(payload)
                    if apply_guest_state(&payload, moe, me, e, &mut vel, vel_indices).is_ok() =>
                {
                    pstats.transfer_bytes += 16 + payload.len() as u64;
                    schemoe_obs::counters_for_rank(me).add_placement_transfer(16 + payload.len());
                    guest_vel.insert(e, vel);
                }
                _ => {
                    ok = false;
                    break 'experts;
                }
            }
        }
    }

    // Phase 5 — READY / DECISION. The plan activates only if *every* rank
    // staged cleanly; one torn transfer aborts the whole quantum so no
    // two ranks ever route on different placements.
    let commit = if me == coordinator {
        let mut all_ok = ok;
        for r in (0..p).filter(|&r| live[r] && r != me) {
            let mut heard = false;
            for _ in 0..VOTE_COPIES {
                match h.recv_timeout(r, base + PL_READY, deadline) {
                    Ok(m) if m.len() == 1 => {
                        heard = true;
                        all_ok &= m[0] == 1;
                        break;
                    }
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            all_ok &= heard;
        }
        let frame = Bytes::from(vec![u8::from(all_ok)]);
        for r in (0..p).filter(|&r| live[r] && r != me) {
            for _ in 0..VOTE_COPIES {
                let _ = h.send_control(r, base + PL_DECISION, frame.clone());
            }
        }
        all_ok
    } else {
        let frame = Bytes::from(vec![u8::from(ok)]);
        for _ in 0..VOTE_COPIES {
            let _ = h.send_control(coordinator, base + PL_READY, frame.clone());
        }
        let mut decision = false;
        for _ in 0..VOTE_COPIES {
            match h.recv_timeout(coordinator, base + PL_DECISION, deadline) {
                Ok(m) if m.len() == 1 => {
                    decision = m[0] == 1;
                    break;
                }
                Ok(_) => {}      // damaged copy: try the next one
                Err(_) => break, // silent coordinator: abort
            }
        }
        decision
    };

    if commit {
        let replications: u64 = (0..n_experts)
            .map(|e| (next.servers(e).len().saturating_sub(1)) as u64)
            .sum();
        let migrations = (0..n_experts)
            .filter(|&e| !next.servers(e).contains(&next.static_home(e)))
            .count() as u64;
        let demotions = (0..p)
            .filter(|&r| live[r] && next.served_by(r).is_empty())
            .count() as u64;
        pstats.plans += 1;
        pstats.replications += replications;
        pstats.migrations += migrations;
        pstats.demotions += demotions;
        pstats.version = next.version();
        moe.set_placement(me, next.clone());
        moe.set_capacity_factor(plan.capacity_override.unwrap_or(cfg.capacity_factor));
        guest_vel.retain(|&e, _| next.servers(e).contains(&me) && next.static_home(e) != me);
        schemoe_obs::counters_for_rank(me).add_placement_plan(replications, migrations, demotions);
    } else {
        for e in staged {
            moe.discard_guest_expert(e);
            guest_vel.remove(&e);
        }
    }
}

/// Restores this rank's state from the newest generation *every* rank
/// can restore from. All ranks scan the same directory (no concurrent
/// writers at startup) and apply the same deterministic rule, so they
/// agree on the resume step without exchanging a message. A rank is
/// restorable at a generation if its own shard is bit-exact per the
/// manifest, or any valid shard embeds a buddy replica of it. Payloads
/// are CRC-verified *before* any state is touched — a failure at any
/// point falls back to the next older generation, never a half-applied
/// model. Returns `(step, generation)` on success.
#[allow(clippy::too_many_arguments)]
fn resume_from_disk(
    fs: &dyn StorageFs,
    s: &SnapshotCfg,
    cfg: &FtConfig,
    me: usize,
    p: usize,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
    snap: &mut SnapStats,
    guest_vel: &mut BTreeMap<usize, Vec<Tensor>>,
    vel_indices: &[usize],
) -> Option<(usize, u64)> {
    let entries = fs.list(&s.dir).ok()?;
    let mut gens: Vec<u64> = entries
        .iter()
        .filter_map(|path| path.file_name().and_then(|n| n.to_str()))
        .filter_map(snapshot::manifest_generation)
        .collect();
    gens.sort_unstable();
    for &g in gens.iter().rev() {
        let Ok(mbytes) = fs.read(&s.dir.join(snapshot::manifest_file_name(g))) else {
            continue;
        };
        let Ok(man) = Manifest::decode(&mbytes) else {
            continue;
        };
        // A manifest from a different run shape or seed is not ours to
        // resume, and one at or past the configured horizon would end
        // the run without committing a step.
        if man.world != p as u32 || man.seed != cfg.seed || man.step as usize >= cfg.steps {
            continue;
        }
        // Parse + verify every listed shard; a torn, truncated, or
        // bit-rotted one simply drops out and may be covered by a buddy
        // replica embedded in a surviving shard.
        let mut shards: Vec<Option<Shard>> = (0..p).map(|_| None).collect();
        for e in &man.shards {
            let r = e.rank as usize;
            if r >= p {
                continue;
            }
            let Ok(bytes) = fs.read(&s.dir.join(&e.name)) else {
                continue;
            };
            if !Manifest::entry_matches(e, &bytes) {
                continue;
            }
            let Ok(sh) = Shard::decode(&bytes) else {
                continue;
            };
            if sh.generation == man.generation
                && sh.world == man.world
                && sh.step == man.step
                && sh.seed == man.seed
                && sh.rank == e.rank
            {
                shards[r] = Some(sh);
            }
        }
        let covered = |r: usize| {
            shards[r].is_some()
                || shards.iter().flatten().any(|sh| {
                    sh.replicas
                        .iter()
                        .any(|rep| rep.ward == r as u32 && !rep.payload.is_empty())
                })
        };
        if shards.iter().flatten().next().is_none() || !(0..p).all(covered) {
            continue;
        }
        let (replicated, expert, reconstructed) = match &shards[me] {
            Some(sh) => (sh.replicated.clone(), sh.expert.clone(), false),
            None => {
                // Buddy-shard reconstruction: the replicated half is
                // identical across ranks at a committed step, so any
                // valid shard donates it; the expert comes from the
                // replica a surviving shard embeds for this rank.
                let donor = shards.iter().flatten().next()?;
                let rep = shards
                    .iter()
                    .flatten()
                    .flat_map(|sh| sh.replicas.iter())
                    .find(|rep| rep.ward == me as u32)?;
                (donor.replicated.clone(), rep.payload.clone(), true)
            }
        };
        if checkpoint::verify(&replicated).is_err() || checkpoint::verify(&expert).is_err() {
            continue;
        }
        // After the seals verify, a mismatch means the operator resumed
        // with a different model shape under the same seed — a config
        // error, not a storage fault. Refuse loudly rather than train on
        // a half-applied model.
        apply_replicated_state(&replicated, embed, moe, head, opt)
            .expect("verified snapshot payload must match the configured model");
        apply_own_expert_state(&expert, embed, moe, head, opt)
            .expect("verified snapshot payload must match the configured model");
        if reconstructed {
            snap.reconstructions += 1;
            schemoe_obs::counters_for_rank(me).add_snapshot_reconstruction();
        }
        // Rebuild the snapshotted expert placement, if one was active.
        // Guest bodies load from the shard of each expert's static home —
        // home stays in sync under a committed placement, so its shard
        // carries the authoritative expert state. Requires every rank's
        // own shard (guest state lives nowhere else); a partial directory
        // falls back to the static layout rather than a torn placement.
        if !man.placement.is_empty() {
            if let Ok(pl) = Placement::decode(&man.placement) {
                let epr = moe.experts_per_rank();
                if pl.experts_per_rank() == epr
                    && pl.n_experts() == p * epr
                    && (0..p).all(|r| shards[r].is_some())
                {
                    let mut ok = true;
                    for e in pl.guests_of(me) {
                        let home = pl.static_home(e);
                        let payload = shards[home]
                            .as_ref()
                            .map(|sh| sh.expert.clone())
                            .unwrap_or_default();
                        if checkpoint::verify(&payload).is_err() {
                            ok = false;
                            break;
                        }
                        let mut rng = seeded(cfg.seed ^ 0xE8_0000 ^ home as u64);
                        moe.install_guest_expert(
                            me,
                            e,
                            Box::new(FfExpert::new(cfg.model_dim, cfg.hidden_dim, &mut rng)),
                        );
                        let mut vel: Vec<Tensor> = Vec::new();
                        moe.visit_serving_params(me, e, &mut |prm| {
                            vel.push(Tensor::zeros(prm.value.dims()));
                        });
                        apply_guest_state(&payload, moe, me, e, &mut vel, vel_indices)
                            .expect("verified snapshot payload must match the configured model");
                        guest_vel.insert(e, vel);
                    }
                    if ok {
                        moe.set_placement(me, pl);
                    } else {
                        for e in moe.guest_expert_ids() {
                            moe.discard_guest_expert(e);
                        }
                        guest_vel.clear();
                    }
                }
            }
        }
        return Some((man.step as usize, man.generation));
    }
    None
}

/// Retention GC: deletes complete generations beyond the newest `keep`
/// (clamped to 1, so the last complete generation is never deleted).
/// The manifest goes first — a crash mid-GC leaves orphan shards that
/// resume cannot see, never a manifest pointing at deleted shards.
fn gc_generations(fs: &dyn StorageFs, dir: &Path, keep: usize) -> u64 {
    let Ok(entries) = fs.list(dir) else { return 0 };
    let mut gens: Vec<u64> = entries
        .iter()
        .filter_map(|path| path.file_name().and_then(|n| n.to_str()))
        .filter_map(snapshot::manifest_generation)
        .collect();
    gens.sort_unstable();
    let keep = keep.max(1);
    if gens.len() <= keep {
        return 0;
    }
    let mut removed = 0u64;
    for &g in &gens[..gens.len() - keep] {
        let mpath = dir.join(snapshot::manifest_file_name(g));
        let names: Vec<String> = fs
            .read(&mpath)
            .ok()
            .and_then(|b| Manifest::decode(&b).ok())
            .map(|m| m.shards.into_iter().map(|e| e.name).collect())
            .unwrap_or_default();
        if fs.remove(&mpath).is_err() {
            continue;
        }
        for n in names {
            let _ = fs.remove(&dir.join(n));
        }
        removed += 1;
    }
    removed
}

/// The re-admission ticket survivors send a rejoining rank: where to resume
/// (`step`, `tag`), the membership epoch after the rejoin bump, who streams
/// state, which host (if any) streams the hosted expert back, and the
/// post-admission live set and failover routes.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Invite {
    step: usize,
    tag: u64,
    epoch: u32,
    donor: usize,
    live: u64,
    /// Failover host that will stream the hosted expert back on the
    /// handback lane, encoded as `host + 1`; `0` means no handback (the
    /// rejoiner resumes from its checkpoint-stale own expert).
    handback: u32,
    /// Failover routes still active after this admission, as
    /// `(dead, host)` rank pairs — the rejoiner must install them to agree
    /// with the survivors' routing.
    routes: Vec<(u8, u8)>,
}

impl Invite {
    fn encode(&self) -> Bytes {
        let mut b = Vec::with_capacity(40 + 2 * self.routes.len());
        b.extend_from_slice(&(self.step as u64).to_le_bytes());
        b.extend_from_slice(&self.tag.to_le_bytes());
        b.extend_from_slice(&self.epoch.to_le_bytes());
        b.extend_from_slice(&(self.donor as u32).to_le_bytes());
        b.extend_from_slice(&self.live.to_le_bytes());
        b.extend_from_slice(&self.handback.to_le_bytes());
        b.extend_from_slice(&(self.routes.len() as u32).to_le_bytes());
        for &(d, host) in &self.routes {
            b.push(d);
            b.push(host);
        }
        Bytes::from(b)
    }

    fn decode(b: &[u8]) -> Option<Invite> {
        if b.len() < 40 {
            return None;
        }
        let n = u32::from_le_bytes(b[36..40].try_into().ok()?) as usize;
        if b.len() != 40 + 2 * n {
            return None;
        }
        Some(Invite {
            step: u64::from_le_bytes(b[..8].try_into().ok()?) as usize,
            tag: u64::from_le_bytes(b[8..16].try_into().ok()?),
            epoch: u32::from_le_bytes(b[16..20].try_into().ok()?),
            donor: u32::from_le_bytes(b[20..24].try_into().ok()?) as usize,
            live: u64::from_le_bytes(b[24..32].try_into().ok()?),
            handback: u32::from_le_bytes(b[32..36].try_into().ok()?),
            routes: (0..n).map(|i| (b[40 + 2 * i], b[41 + 2 * i])).collect(),
        })
    }
}

/// Where a successfully rejoined rank resumes training.
struct RejoinPoint {
    step: usize,
    tag: u64,
}

/// The dead rank's half of the rejoin protocol. Returns `Some` once state
/// has been verified and applied (the caller resumes training at the
/// returned point), `None` if this rank has no scheduled revival or every
/// rejoin round failed.
///
/// The revival spin burns send attempts via [`RankHandle::try_revive`], so
/// the probe count — like every other decision on this path — is a pure
/// function of the fault plan, never of wall clock. On a reconnectable
/// transport with no fault plan there is nothing to wait for: the code is
/// running, so the process is alive — it goes straight to the announce
/// loop (the respawned-worker path).
#[allow(clippy::too_many_arguments)]
fn limbo_rejoin(
    h: &mut RankHandle,
    cfg: &FtConfig,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
    live: &mut [bool],
    epoch_transitions: &mut Vec<u32>,
    transfer_bytes: &mut u64,
    repl: &mut ReplicaStats,
) -> Option<RejoinPoint> {
    if cfg.rejoin_check_every == 0 {
        return None;
    }
    // Two ways back in: a fault plan that schedules this rank's revival
    // (the simulated path — spin until the pipe reopens) or a
    // reconnectable transport (the code is running, so the process is
    // alive: announce directly, even when a fault plan or chaos plan was
    // installed only for deadlines or link faults). Neither → stay dead.
    let scheduled = h
        .fault_plan()
        .is_some_and(|plan| plan.revive_threshold(h.rank()).is_some());
    if scheduled {
        let mut probes = 0u64;
        while !h.try_revive() {
            probes += 1;
            if probes > 1_000_000 {
                return None; // the scheduled revival never fires; stay dead
            }
        }
    } else if !h.reconnectable() {
        return None;
    }
    announce_and_rejoin(
        h,
        cfg,
        embed,
        moe,
        head,
        opt,
        live,
        epoch_transitions,
        transfer_bytes,
        repl,
    )
}

/// The announce → invite → state-transfer loop of a rejoining rank,
/// shared by the simulated-revival path ([`limbo_rejoin`]) and a fresh
/// process started with [`FtConfig::rejoin`]. Announces to every peer,
/// takes the max-step invite, applies the streamed state under the
/// invite's epoch and live mask, and receives the hosted-expert handback
/// if one is due.
#[allow(clippy::too_many_arguments)]
fn announce_and_rejoin(
    h: &mut RankHandle,
    cfg: &FtConfig,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
    live: &mut [bool],
    epoch_transitions: &mut Vec<u32>,
    transfer_bytes: &mut u64,
    repl: &mut ReplicaStats,
) -> Option<RejoinPoint> {
    let me = h.rank();
    let p = h.world_size();
    let vote_dl = Duration::from_millis(cfg.vote_timeout_ms);
    // Survivors only notice the announcement after burying us (a vote) and
    // reaching a rejoin quantum, so the first wait is generous.
    let long_dl = Duration::from_millis(cfg.vote_timeout_ms * 32);
    for _round in 0..MAX_REJOIN_ROUNDS {
        let msg = Bytes::copy_from_slice(&[me as u8]);
        for r in 0..p {
            if r == me {
                continue;
            }
            for _ in 0..VOTE_COPIES {
                let _ = h.send_control(r, ANNOUNCE_TAG, msg.clone());
            }
        }
        // Collect invites from whoever answers; the max-step one wins, so a
        // stale copy from an earlier torn round can never be re-actioned.
        let mut best: Option<Invite> = None;
        let mut waited_long = false;
        for r in 0..p {
            if r == me {
                continue;
            }
            let mut dl = if best.is_some() || waited_long {
                vote_dl
            } else {
                waited_long = true;
                long_dl
            };
            while let Ok(m) = h.recv_timeout(r, INVITE_TAG, dl) {
                dl = Duration::from_millis(50); // drain parked duplicates
                if let Some(inv) = Invite::decode(&m) {
                    if best.as_ref().is_none_or(|b| inv.step > b.step) {
                        best = Some(inv);
                    }
                }
            }
        }
        let Some(inv) = best else { continue };
        match apply_invite(
            h,
            cfg,
            &inv,
            embed,
            moe,
            head,
            opt,
            live,
            epoch_transitions,
            transfer_bytes,
            repl,
        ) {
            Some(pt) => return Some(pt),
            // Torn transfer: nothing was applied and our epoch is
            // unchanged. Announce again; survivors will re-bury us if we
            // stay silent too long, which re-opens the next round.
            None => continue,
        }
    }
    None
}

/// Applies one accepted invite: receives and verifies the donor's state
/// stream, adopts the invite's epoch / live mask / failover routes, and
/// receives the hosted-expert handback if one is due. Shared by the
/// announce loop ([`announce_and_rejoin`]) and a parked rank re-admitted
/// by a quorate other side ([`park_until_heal`]). Returns `None` when the
/// transfer was torn — nothing was applied and the caller's epoch is
/// unchanged, so it can simply announce again.
#[allow(clippy::too_many_arguments)]
fn apply_invite(
    h: &mut RankHandle,
    cfg: &FtConfig,
    inv: &Invite,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
    live: &mut [bool],
    epoch_transitions: &mut Vec<u32>,
    transfer_bytes: &mut u64,
    repl: &mut ReplicaStats,
) -> Option<RejoinPoint> {
    let vote_dl = Duration::from_millis(cfg.vote_timeout_ms);
    let payload = receive_state(h, inv.donor, xfer_tag(inv.step), vote_dl * 4).ok()?;
    apply_replicated_state(&payload, embed, moe, head, opt)
        .expect("a verified transfer payload must apply");
    *transfer_bytes += payload.len() as u64 + 16;
    h.set_epoch(inv.epoch);
    h.mark_peer_reachable(h.rank());
    epoch_transitions.push(inv.epoch);
    for (r, slot) in live.iter_mut().enumerate() {
        *slot = inv.live & (1u64 << r) != 0;
        if *slot {
            moe.mark_rank_alive(r);
            // The invite's live mask is the authoritative membership:
            // deaths and re-admissions that happened while this rank was
            // in limbo never reached its local liveness board (on process
            // transports the board is per-endpoint, not shared), so reset
            // the board to match. On the shared-board channel backend
            // these entries are already clear and this is a no-op.
            h.mark_peer_reachable(r);
        } else {
            moe.mark_rank_dead(r);
        }
    }
    // Adopt the survivors' failover routing (set after the live-flag
    // loop: mark_rank_dead prunes routes hosted by dead ranks, which
    // would drop freshly installed entries).
    moe.clear_failover_routes();
    for &(d, host) in &inv.routes {
        moe.set_failover_route(d as usize, host as usize);
    }
    // The host streams the hosted expert — trained while this rank was
    // dead — back on the handback lane. A torn handback falls back to
    // the checkpoint-stale own expert.
    if inv.handback != 0 {
        let host = (inv.handback - 1) as usize;
        if let Ok(hb) = receive_state(h, host, handback_tag(inv.step), vote_dl * 4) {
            apply_own_expert_state(&hb, embed, moe, head, opt)
                .expect("a verified handback payload must apply");
            repl.handback_bytes += hb.len() as u64 + 16;
        }
    }
    Some(RejoinPoint {
        step: inv.step,
        tag: inv.tag,
    })
}

/// Outcome of a parked rank's wait for the cluster to heal.
enum ParkOutcome {
    /// The parked set reassembled a voting majority on its own (a tied or
    /// multi-way partition healed): resume stepping at `step` under a
    /// fresh `tag` window. No epoch bump and no restore — nothing
    /// committed anywhere while parked, because commits require a
    /// unanimous vote the partition made impossible.
    Resumed { step: usize, tag: u64 },
    /// A quorate other side buried this rank, heard its announce, and
    /// re-admitted it through the normal invite / state-transfer path.
    Rejoined(RejoinPoint),
    /// The cluster never healed within the round budget.
    Dead,
}

/// A rank that cannot assemble a voting majority *parks*: it stops
/// stepping — a minority that buried the unreachable majority would fork
/// the replicated trajectory — but keeps answering control-plane traffic.
/// Each round it ANNOUNCEs (so a quorate side's coordinator can re-admit
/// it), pings [`PARK_TAG`] (so fellow parked ranks can find each other
/// across a healing partition), and polls for INVITE and [`RESUME_TAG`]
/// messages. Once the parked set itself reaches a majority of the
/// effective world (every configured rank not buried on confirmed crash
/// evidence) — a tie healing, or parked minorities merging — the lowest
/// parked rank picks a tag window beyond every parked rank's and
/// broadcasts the common resume point. A partition therefore costs
/// staleness, never divergence.
///
/// Only pings that agree on this rank's `(epoch, step)` count toward the
/// resume quorum: a rank whose membership history diverged before parking
/// (it buried a confirmed death the other side never saw) must come back
/// through the invite path instead of a bare resume.
#[allow(clippy::too_many_arguments)]
fn park_until_heal(
    h: &mut RankHandle,
    cfg: &FtConfig,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
    live: &mut [bool],
    epoch_transitions: &mut Vec<u32>,
    transfer_bytes: &mut u64,
    repl: &mut ReplicaStats,
    step: usize,
    tag: u64,
    effective_world: usize,
) -> ParkOutcome {
    let me = h.rank();
    let p = h.world_size();
    let majority = effective_world / 2 + 1;
    // Latest matching (same epoch, same step) park ping per rank: the tag
    // each parked peer has reached, for the coordinator's resume pick.
    let mut parked: Vec<Option<u64>> = vec![None; p];
    let ping_dl = Duration::from_millis(50);
    for _round in 0..MAX_PARK_ROUNDS {
        // Announce + ping every rank, every round. The sends double as
        // liveness traffic and carry each link's fault windows toward
        // their heal points on index-driven chaos plans.
        let announce = Bytes::copy_from_slice(&[me as u8]);
        let mut ping = [0u8; 21];
        ping[0] = me as u8;
        ping[1..5].copy_from_slice(&h.epoch().to_le_bytes());
        ping[5..13].copy_from_slice(&(step as u64).to_le_bytes());
        ping[13..21].copy_from_slice(&tag.to_le_bytes());
        let ping_msg = Bytes::copy_from_slice(&ping);
        for r in 0..p {
            if r == me {
                continue;
            }
            for _ in 0..VOTE_COPIES {
                let _ = h.send_control(r, ANNOUNCE_TAG, announce.clone());
                let _ = h.send_control(r, PARK_TAG, ping_msg.clone());
            }
        }
        // A quorate other side may have buried us and answered the
        // announce: take the freshest invite and try to apply it. A torn
        // transfer applies nothing; keep parking and re-announce.
        let mut best: Option<Invite> = None;
        for r in 0..p {
            if r == me {
                continue;
            }
            let mut dl = ping_dl;
            while let Ok(m) = h.recv_timeout(r, INVITE_TAG, dl) {
                dl = Duration::from_millis(10);
                if let Some(inv) = Invite::decode(&m) {
                    if best.as_ref().is_none_or(|b| inv.step > b.step) {
                        best = Some(inv);
                    }
                }
            }
        }
        if let Some(inv) = best {
            if let Some(pt) = apply_invite(
                h,
                cfg,
                &inv,
                embed,
                moe,
                head,
                opt,
                live,
                epoch_transitions,
                transfer_bytes,
                repl,
            ) {
                drain_park_traffic(h);
                return ParkOutcome::Rejoined(pt);
            }
        }
        // Collect fellow parked ranks.
        for r in 0..p {
            if r == me {
                continue;
            }
            while let Ok(m) = h.recv_timeout(r, PARK_TAG, ping_dl) {
                if m.len() == 21 && m[0] as usize == r {
                    let e = u32::from_le_bytes(m[1..5].try_into().expect("21-byte ping"));
                    let s = u64::from_le_bytes(m[5..13].try_into().expect("21-byte ping"));
                    let t = u64::from_le_bytes(m[13..21].try_into().expect("21-byte ping"));
                    if e == h.epoch() && s as usize == step {
                        parked[r] = Some(t);
                    }
                }
            }
        }
        // A RESUME from the coordinator: adopt its resume point.
        for r in 0..p {
            if r == me {
                continue;
            }
            if let Ok(m) = h.recv_timeout(r, RESUME_TAG, Duration::from_millis(10)) {
                if m.len() == 16 {
                    let s = u64::from_le_bytes(m[..8].try_into().expect("16-byte resume"));
                    let t = u64::from_le_bytes(m[8..16].try_into().expect("16-byte resume"));
                    // Only a resume for *this* park point with a tag beyond
                    // ours counts: redundant copies of an earlier cycle's
                    // broadcast (or a resume meant for a parked set whose
                    // history diverged from ours) are dropped, and the
                    // divergent rank comes back through the invite path.
                    if s as usize == step && t > tag {
                        drain_park_traffic(h);
                        return ParkOutcome::Resumed {
                            step: s as usize,
                            tag: t,
                        };
                    }
                }
            }
        }
        // Enough parked ranks to vote again? The lowest parked rank
        // coordinates; everyone else keeps looping until its RESUME
        // arrives. The resume tag clears every parked rank's window so
        // post-resume traffic can never collide with pre-park leftovers.
        let heard = parked.iter().filter(|t| t.is_some()).count();
        if 1 + heard >= majority {
            let lowest = (0..p)
                .find(|&r| r == me || parked[r].is_some())
                .expect("this rank is parked");
            if lowest == me {
                let max_tag = parked.iter().flatten().copied().fold(tag, u64::max);
                let resume_tag = max_tag + TAG_STRIDE;
                let mut buf = [0u8; 16];
                buf[..8].copy_from_slice(&(step as u64).to_le_bytes());
                buf[8..].copy_from_slice(&resume_tag.to_le_bytes());
                let msg = Bytes::copy_from_slice(&buf);
                for r in 0..p {
                    if r == me {
                        continue;
                    }
                    for _ in 0..VOTE_COPIES {
                        let _ = h.send_control(r, RESUME_TAG, msg.clone());
                    }
                }
                drain_park_traffic(h);
                return ParkOutcome::Resumed {
                    step,
                    tag: resume_tag,
                };
            }
        }
    }
    ParkOutcome::Dead
}

/// Discards queued park-era control traffic (announces and pings from
/// fellow parked — still live — ranks) on the way out of a park. Without
/// this, a stale ANNOUNCE from a rank that parked and resumed would sit in
/// the coordinator's queue and could be mistaken for a rejoin announcement
/// if that rank genuinely died later. A discarded message costs nothing:
/// both the park loop and the limbo announce loop re-send every round.
fn drain_park_traffic(h: &mut RankHandle) {
    let p = h.world_size();
    let dl = Duration::from_millis(1);
    for r in 0..p {
        if r == h.rank() {
            continue;
        }
        while h.recv_timeout(r, ANNOUNCE_TAG, dl).is_ok() {}
        while h.recv_timeout(r, PARK_TAG, dl).is_ok() {}
    }
}

/// The survivors' half of the rejoin protocol, run at a fixed committed-step
/// cadence. The lowest live rank — the *coordinator*, which is also the
/// donor — drains the announcement queues of revivable dead ranks and
/// broadcasts its admission decision so every survivor applies the same
/// membership change; it then streams state to each admitted rank. Returns
/// `true` if membership changed (callers must refresh their checkpoint so a
/// later rewind lands every rank on the same step).
#[allow(clippy::too_many_arguments)]
fn try_rejoin_peers(
    h: &mut RankHandle,
    cfg: &FtConfig,
    embed: &mut Embedding,
    moe: &mut DistributedMoeLayer,
    head: &mut Linear,
    opt: &mut Sgd,
    live: &mut [bool],
    epoch_transitions: &mut Vec<u32>,
    transfer_bytes: &mut u64,
    hosted_vel: &mut BTreeMap<usize, Vec<Tensor>>,
    vel_indices: &[usize],
    repl: &mut ReplicaStats,
    step: usize,
    tag: u64,
) -> bool {
    let me = h.rank();
    let p = h.world_size();
    // A dead rank is a rejoin candidate if the fault plan schedules its
    // revival (the simulated path) or the transport can re-establish a
    // link to a fresh process claiming its rank (the real-process path).
    let reconnectable = h.reconnectable();
    if h.fault_plan().is_none() && !reconnectable {
        return false; // neither path can bring anyone back: rejoin costs nothing
    }
    let candidates: Vec<usize> = (0..p)
        .filter(|&r| {
            !live[r]
                && (reconnectable
                    || h.fault_plan()
                        .is_some_and(|plan| plan.revive_threshold(r).is_some()))
        })
        .collect();
    if candidates.is_empty() {
        return false;
    }
    let coordinator = (0..p).find(|&r| live[r]).expect("caller is live");
    let vote_dl = Duration::from_millis(cfg.vote_timeout_ms);
    // Decision frames are scoped by quantum so a leftover copy from an
    // earlier check can never be mistaken for this one's.
    let quantum = (step / cfg.rejoin_check_every) as u64;
    let decision_base = DECISION_TAG + quantum * 64;
    let mut mask = 0u64;
    if me == coordinator {
        for &r in &candidates {
            let mut announced = false;
            while let Ok(m) = h.recv_timeout(r, ANNOUNCE_TAG, Duration::from_millis(50)) {
                announced |= m.len() == 1 && m[0] as usize == r;
            }
            if announced {
                mask |= 1u64 << r;
            }
        }
        let msg = Bytes::copy_from_slice(&mask.to_le_bytes());
        for r in 0..p {
            if r == me || !live[r] {
                continue;
            }
            for c in 0..VOTE_COPIES {
                let _ = h.send_control(r, decision_base + c, msg.clone());
            }
        }
    } else {
        for c in 0..VOTE_COPIES {
            match h.recv_timeout(coordinator, decision_base + c, vote_dl) {
                Ok(m) if m.len() == 8 => {
                    mask = u64::from_le_bytes(m[..8].try_into().expect("8-byte decision"));
                    break;
                }
                _ => {} // damaged or late copy: try the next
            }
        }
    }
    if mask == 0 {
        return false;
    }
    // Capture handback material before admission tears the routes down:
    // which host serves each admitted rank's expert, and (on the host) the
    // hosted weights + velocity serialized in the owner's own layout.
    let mut handback_host: BTreeMap<usize, usize> = BTreeMap::new();
    let mut handback_payloads: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
    for r in 0..p {
        if mask & (1u64 << r) != 0 && !live[r] {
            if let Some(host) = moe.failover_host_of(r) {
                handback_host.insert(r, host);
                if me == host {
                    let vel = hosted_vel.get(&r).expect("hosted expert without velocity");
                    handback_payloads.insert(r, hosted_replica_payload(moe, r, vel, vel_indices));
                }
            }
        }
    }
    // Admit every announced rank first — one epoch bump each — so the
    // invites carry the final membership.
    let mut admitted: Vec<usize> = Vec::new();
    for r in 0..p {
        if mask & (1u64 << r) != 0 && !live[r] {
            let e = h.advance_epoch();
            epoch_transitions.push(e);
            live[r] = true;
            moe.mark_rank_alive(r);
            h.mark_peer_reachable(r);
            hosted_vel.remove(&r);
            admitted.push(r);
        }
    }
    if admitted.is_empty() {
        return false;
    }
    let bitmap = live
        .iter()
        .enumerate()
        .fold(0u64, |m, (r, &a)| if a { m | (1u64 << r) } else { m });
    let routes: Vec<(u8, u8)> = moe
        .failover_routes()
        .into_iter()
        .map(|(d, host)| (d as u8, host as u8))
        .collect();
    // Every survivor sends the invite (redundancy against drops); only the
    // donor streams replicated state, and only the host streams the
    // hosted expert back.
    for &r in &admitted {
        let invite = Invite {
            step,
            tag,
            epoch: h.epoch(),
            donor: coordinator,
            live: bitmap,
            handback: handback_host.get(&r).map_or(0, |&host| host as u32 + 1),
            routes: routes.clone(),
        };
        let msg = invite.encode();
        for _ in 0..VOTE_COPIES {
            let _ = h.send_control(r, INVITE_TAG, msg.clone());
        }
        if me == coordinator {
            if let Ok(sent) = stream_state(
                h,
                r,
                xfer_tag(step),
                &replicated_state_payload(embed, moe, head, opt),
            ) {
                *transfer_bytes += sent;
            }
        }
        if let Some(payload) = handback_payloads.get(&r) {
            if let Ok(sent) = stream_state(h, r, handback_tag(step), payload) {
                repl.handbacks += 1;
                repl.handback_bytes += sent;
                schemoe_obs::counters_for_rank(me).add_handback();
            }
        }
    }
    true
}

/// Runs the fault-tolerant training loop on one rank. See the module docs
/// for the protocol; call inside `Fabric::run` or `Fabric::run_with_faults`.
///
/// Deadline hygiene: the run may install [`FtConfig::adaptive_deadline`]
/// on the handle, and historically never uninstalled it — whatever ran
/// next on the same handle inherited the policy (and any receive-deadline
/// override) from the previous run. Both are snapshotted on entry and
/// restored before this returns.
///
/// # Panics
///
/// Panics if the world is larger than 64 ranks (the vote bitmask width) or
/// if an in-memory checkpoint fails to restore (it was produced by this
/// very process, so damage indicates a bug, not a fault).
pub fn run_ft_rank(h: &mut RankHandle, cfg: &FtConfig) -> FtReport {
    run_ft_rank_durable(h, cfg, None)
}

/// [`run_ft_rank`] with an optional durable-snapshot lane: every
/// `snap.interval` committed steps each rank persists a CRC-sealed shard
/// (replicated modules + own expert + optimizer slots + hosted/stored
/// replicas + step/seed) via write-tmp → fsync → rename, and the
/// coordinator (lowest live rank) commits a generation manifest only
/// after every live rank has acked its shard durable. With
/// `snap.resume`, the run first restores from the newest generation
/// every rank can restore from — rebuilding a rank whose shard is
/// missing or corrupt from a buddy's on-disk replica — and trains on
/// from the snapshotted step.
pub fn run_ft_rank_durable(
    h: &mut RankHandle,
    cfg: &FtConfig,
    snap: Option<&SnapshotCfg>,
) -> FtReport {
    let saved_deadline = h.recv_deadline();
    let saved_adaptive = h.adaptive_deadline();
    let report = run_ft_rank_inner(h, cfg, snap);
    h.set_adaptive_deadline(saved_adaptive);
    h.set_recv_deadline(saved_deadline);
    report
}

fn run_ft_rank_inner(h: &mut RankHandle, cfg: &FtConfig, snap: Option<&SnapshotCfg>) -> FtReport {
    let me = h.rank();
    let p = h.world_size();
    assert!(p <= 64, "vote bitmask supports at most 64 ranks");

    // Replicated modules share one seed; the expert is per-rank.
    let mut embed = Embedding::new(cfg.vocab, cfg.model_dim, &mut seeded(cfg.seed ^ 0xE3BED));
    let gate = TopKGate::new(
        cfg.model_dim,
        p,
        cfg.k,
        cfg.capacity_factor,
        &mut seeded(cfg.seed ^ 0x6A7E),
    );
    let expert: Box<dyn Expert> = Box::new(FfExpert::new(
        cfg.model_dim,
        cfg.hidden_dim,
        &mut seeded(cfg.seed ^ 0xE8_0000 ^ me as u64),
    ));
    let mut moe = DistributedMoeLayer::new(
        gate,
        vec![expert],
        Box::new(NoCompression),
        Box::new(NcclA2A),
    )
    .with_partition_degree(cfg.partition_degree.max(1))
    .with_recv_timeout(Duration::from_millis(cfg.vote_timeout_ms.max(100) * 4));
    let mut head = Linear::new(cfg.model_dim, cfg.vocab, &mut seeded(cfg.seed ^ 0x4EAD));
    let mut ce = SoftmaxCrossEntropy::new();
    let markov = RegimeMarkov::new(cfg.vocab, cfg.regimes, &mut seeded(cfg.seed ^ 0xDA7A));
    let mut opt = Sgd::new(cfg.lr);

    // Buddy-replication state: the delta encoder for frames this rank
    // streams to its buddy, a store per ward holding that ward's latest
    // verified replica (domain-aware placement can give one rank several
    // wards), and (while hosting) the velocity this rank trains each
    // hosted expert with. `vel_indices` is rank-independent.
    let vel_indices = expert_velocity_indices(&mut embed, &mut moe, &mut head);
    let mut replica_enc = DeltaEncoder::new();
    let mut replica_stores: BTreeMap<usize, ReplicaStore> = BTreeMap::new();
    let mut hosted_vel: BTreeMap<usize, Vec<Tensor>> = BTreeMap::new();
    let mut repl = ReplicaStats::default();
    // Placement-controller state: the velocity this rank trains each
    // *guest* expert with (a replica of a hot expert, or a migrated-off
    // gray-rank expert), and the run's placement bookkeeping.
    let mut guest_vel: BTreeMap<usize, Vec<Tensor>> = BTreeMap::new();
    let mut pstats = PlacementStats::default();

    if let Some(policy) = cfg.adaptive_deadline {
        h.set_adaptive_deadline(Some(policy));
    }

    let mut live = vec![true; p];
    let mut tag: u64 = 0;
    let mut step = 0usize;
    let mut loss_curve = vec![f32::NAN; cfg.steps];
    let mut retries = 0u64;
    let mut restores = 0u64;
    let mut rejoins = 0u64;
    let mut parks = 0u64;
    // Ranks buried on first-hand disconnection evidence: provably crashed,
    // so they shrink the quorum base. Silence-buried ranks do not.
    let mut confirmed_gone: u64 = 0;
    let mut transfer_bytes = 0u64;
    let mut epoch_transitions: Vec<u32> = Vec::new();
    let vote_dl = Duration::from_millis(cfg.vote_timeout_ms);

    let mut ckpt = checkpoint::save(&mut |f| visit_all(&mut embed, &mut moe, &mut head, f));
    let mut ckpt_step = 0usize;

    // Durable-snapshot lane: the storage stack this rank writes shards
    // through (chaos-decorated when a fault plan is installed, salted by
    // rank so each rank rolls its own lottery), and the generation
    // counter. Chaos sits *beneath* the snapshot writer and *above* the
    // real filesystem, so whatever a fault leaves on disk is exactly
    // what a later restore observes.
    let snap_fs: Option<Box<dyn StorageFs>> = snap.map(|s| match &s.chaos {
        Some(plan) => {
            Box::new(ChaosFs::new(Box::new(RealFs), plan.clone(), me as u64)) as Box<dyn StorageFs>
        }
        None => Box::new(RealFs) as Box<dyn StorageFs>,
    });
    let mut snap_stats = SnapStats::default();
    let mut snap_gen: u64 = 0;
    if let (Some(s), Some(fs)) = (snap, snap_fs.as_deref()) {
        let _ = fs.create_dir_all(&s.dir);
        if s.resume {
            // Cold-restart bootstrap. Every rank scans the same directory
            // (no concurrent writers at startup) and applies the same
            // deterministic rule — newest generation from which *every*
            // rank can restore — so all ranks agree on the resume step
            // without exchanging a message.
            let t0 = Instant::now();
            if let Some((rstep, rgen)) = resume_from_disk(
                fs,
                s,
                cfg,
                me,
                p,
                &mut embed,
                &mut moe,
                &mut head,
                &mut opt,
                &mut snap_stats,
                &mut guest_vel,
                &vel_indices,
            ) {
                step = rstep;
                snap_gen = rgen;
                ckpt = checkpoint::save(&mut |f| visit_all(&mut embed, &mut moe, &mut head, f));
                ckpt_step = step;
                snap_stats.resumed_at = Some(step);
                schemoe_obs::counters_for_rank(me).add_snapshot_restore();
                // Resume under the snapshotted placement, version included,
                // so the next quantum's plan stamps a strictly newer epoch.
                if let Some(pl) = moe.placement() {
                    pstats.version = pl.version();
                }
            }
            snap_stats.restore_ms = t0.elapsed().as_secs_f64() * 1e3;
        }
    }

    // Every path that observes this rank's death funnels through here: a
    // rank with a scheduled revival rejoins and resumes at the invited
    // step; every other death ends the run with a report.
    macro_rules! die_or_rejoin {
        ($lbl:lifetime) => {{
            // Death voids any committed placement: survivors reset to the
            // static layout through the burial path, so a rejoiner must
            // come back static too or the cluster would route divergently.
            moe.reset_placement();
            moe.set_capacity_factor(cfg.capacity_factor);
            guest_vel.clear();
            match limbo_rejoin(
                h,
                cfg,
                &mut embed,
                &mut moe,
                &mut head,
                &mut opt,
                &mut live,
                &mut epoch_transitions,
                &mut transfer_bytes,
                &mut repl,
            ) {
                Some(pt) => {
                    rejoins += 1;
                    step = pt.step;
                    tag = pt.tag;
                    // Anything this rank hosted or replicated before dying
                    // is stale; start the chains over.
                    hosted_vel.clear();
                    replica_enc.reset();
                    replica_stores.clear();
                    ckpt =
                        checkpoint::save(&mut |f| visit_all(&mut embed, &mut moe, &mut head, f));
                    ckpt_step = step;
                    continue $lbl;
                }
                None => {
                    let (_, shed, routed, _) = moe.take_load_stats();
                    pstats.shed += shed;
                    pstats.routed += routed;
                    return finish(
                        &live,
                        loss_curve,
                        Some(step),
                        retries,
                        restores,
                        h.epoch(),
                        epoch_transitions,
                        rejoins,
                        parks,
                        transfer_bytes,
                        repl.clone(),
                        snap_stats.clone(),
                        pstats.clone(),
                    );
                }
            }
        }};
    }

    // A fresh process joining a running cluster starts in limbo: announce,
    // wait for an invite, and only then train — from the invited step, not
    // step 0.
    let mut start_in_limbo = cfg.rejoin;
    'train: while step < cfg.steps {
        if std::mem::take(&mut start_in_limbo) {
            die_or_rejoin!('train);
        }
        let mut attempt = 0u32;
        loop {
            if h.is_dead() {
                die_or_rejoin!('train);
            }
            visit_all(&mut embed, &mut moe, &mut head, &mut |prm| prm.zero_grad());
            for r in moe.hosted_dead_ranks() {
                moe.visit_hosted_params(r, &mut |prm| prm.zero_grad());
            }
            // Guest bodies too: a guest the router sends no tokens to this
            // attempt must contribute exact zeros to its sync-group reduce.
            for e in moe.guest_expert_ids() {
                moe.visit_serving_params(me, e, &mut |prm| prm.zero_grad());
            }
            let step_tag = tag;
            tag += TAG_STRIDE;

            let outcome = try_step(
                h, cfg, &markov, &mut embed, &mut moe, &mut head, &mut ce, &live, step, step_tag,
            );
            if h.is_dead() {
                die_or_rejoin!('train);
            }
            // First-hand evidence: a disconnected peer is dead — and
            // *confirmed* dead, because a closed link or posted death is
            // something a partition cannot forge. Timeouts and corruption
            // are transient until the retry budget is spent, after which
            // a *silent* peer is presumed dead (a killed rank that never
            // exits looks like a pure timeout) — but only presumed:
            // silence is exactly what an unreachable-but-alive peer looks
            // like, so those suspicions stay unconfirmed and face the
            // quorum rule at burial. Corruption never escalates — it
            // implicates the link, not the peer's liveness, and a flaky
            // link must not get a live rank excommunicated.
            let (status, mut suspects, confirmed): (u8, u64, u64) = match &outcome {
                Ok(_) => (0, 0, 0),
                Err(FabricError::Disconnected { peer }) if *peer != me => {
                    (1, 1u64 << *peer, 1u64 << *peer)
                }
                Err(_) => (1, 0, 0),
            };
            if attempt >= cfg.retry_budget {
                if let Err(FabricError::Timeout { peer, .. }) = &outcome {
                    suspects |= 1u64 << *peer;
                }
            }

            let escalate = attempt >= cfg.retry_budget;
            let verdict = match vote(
                h, &live, step_tag, status, suspects, confirmed, vote_dl, escalate,
            ) {
                Ok(v) => v,
                // Only a self-death escapes the vote.
                Err(_) => die_or_rejoin!('train),
            };

            let suspected: Vec<usize> = (0..p)
                .filter(|&r| live[r] && verdict.suspects & (1u64 << r) != 0)
                .collect();
            if !suspected.is_empty() {
                // A membership disturbance voids any committed placement.
                // Every live rank computes the same verdict (the vote
                // gossips suspicion sets), so everyone resets to the
                // static layout together — the placement controller can
                // re-derive a plan at the next quantum once the cluster is
                // stable again. This also covers the mid-migration kill:
                // a quantum torn by a death leaves some ranks on the old
                // placement and (at worst) divergent for one attempt; the
                // attempt fails, the verdict lands here, and routing is
                // static everywhere before any step commits.
                moe.reset_placement();
                moe.set_capacity_factor(cfg.capacity_factor);
                guest_vel.clear();
                // Majority-quorum rule. Confirmed deaths (first-hand
                // disconnection evidence, gossiped through the vote) are
                // buried unconditionally — a crashed rank is not on the
                // other side of a partition. Silence-only suspicions may
                // be buried only if the voters left after those burials
                // would still form a majority of the *effective world*:
                // every configured rank except those buried on confirmed
                // evidence. Silence-buried ranks keep counting against the
                // base — they may be alive and stepping across a partition
                // — so sequential escalations can never erode the quorum
                // down to a minority's say-so: at most one side of any
                // split ever holds `floor(world/2) + 1`, and a partition
                // costs staleness, never divergence. A side that fails
                // the test buries nothing silent and parks instead.
                let (confirmed_dead, silent): (Vec<usize>, Vec<usize>) = suspected
                    .iter()
                    .partition(|&&r| verdict.confirmed & (1u64 << r) != 0);
                let dead_mask = (0..p).fold(0u64, |m, r| if live[r] { m } else { m | (1u64 << r) });
                confirmed_gone &= dead_mask; // re-admitted ranks count again
                confirmed_gone |= confirmed_dead.iter().fold(0u64, |m, &r| m | (1u64 << r));
                let effective_world = p - confirmed_gone.count_ones() as usize;
                let live_now = live.iter().filter(|&&a| a).count();
                let has_quorum =
                    silent.is_empty() || live_now - suspected.len() > effective_world / 2;
                let newly_dead: Vec<usize> = if has_quorum {
                    suspected
                } else {
                    confirmed_dead
                };
                if newly_dead.contains(&me) {
                    // The cluster has given up on this rank (e.g. our
                    // outbound links are black holes) *and* the accusation
                    // carries quorum (or first-hand evidence). Exit rather
                    // than split-brain — unless the plan schedules a
                    // revival, in which case rejoin under a fresh epoch is
                    // the sanctioned way back in. An accusation that lacks
                    // quorum does not reach here: we park with everyone
                    // else instead of dying on a minority's say-so.
                    die_or_rejoin!('train);
                }
                if !newly_dead.is_empty() {
                    let _span = schemoe_obs::enabled().then(|| {
                        schemoe_obs::span("ft", format!("restore after {newly_dead:?} died"))
                    });
                    for &r in &newly_dead {
                        live[r] = false;
                        moe.mark_rank_dead(r);
                        // One membership transition per burial: traffic from
                        // anyone still assuming the old membership is rejected
                        // as stale rather than fed into collectives.
                        let e = h.advance_epoch();
                        epoch_transitions.push(e);
                    }
                    checkpoint::load(&ckpt, &mut |f| {
                        visit_all(&mut embed, &mut moe, &mut head, f)
                    })
                    .expect("in-memory checkpoint must restore");
                    restores += 1;
                    // Failover activation: each buried rank's buddy takes over
                    // its expert so the gate keeps the full expert set. Every
                    // survivor installs the route; the buddy rebuilds the
                    // expert (verified replica if one arrived, deterministic
                    // re-init otherwise) and hosts it from here on. If the
                    // buddy died in the same verdict the ward is orphaned and
                    // stays masked — the reroute-only fallback.
                    if cfg.replica_interval != 0 {
                        for &r in &newly_dead {
                            let buddy = buddy_of(r, p, cfg.replica_domains.as_ref());
                            if buddy == r || !live[buddy] {
                                continue;
                            }
                            moe.set_failover_route(r, buddy);
                            if me != buddy {
                                continue;
                            }
                            let ward: Box<dyn Expert> = Box::new(FfExpert::new(
                                cfg.model_dim,
                                cfg.hidden_dim,
                                &mut seeded(cfg.seed ^ 0xE8_0000 ^ r as u64),
                            ));
                            moe.install_hosted_experts(r, vec![ward]);
                            let mut vel: Vec<Tensor> = Vec::new();
                            moe.visit_hosted_params(r, &mut |prm| {
                                vel.push(Tensor::zeros(prm.value.dims()));
                            });
                            if let Some((q, payload)) =
                                replica_stores.get(&r).and_then(|s| s.replica())
                            {
                                let payload = payload.to_vec();
                                apply_hosted_replica(&payload, &mut moe, r, &mut vel, &vel_indices)
                                    .expect("a CRC-verified replica must apply");
                                repl.staleness.push((step as u64).saturating_sub(q));
                            } else {
                                // No frame ever arrived: the re-init is as
                                // stale as the whole run so far.
                                repl.staleness.push(step as u64);
                            }
                            hosted_vel.insert(r, vel);
                            repl.activations += 1;
                            schemoe_obs::counters_for_rank(me).add_failover_activation();
                        }
                    }
                    step = ckpt_step;
                }
                if !has_quorum {
                    parks += 1;
                    match park_until_heal(
                        h,
                        cfg,
                        &mut embed,
                        &mut moe,
                        &mut head,
                        &mut opt,
                        &mut live,
                        &mut epoch_transitions,
                        &mut transfer_bytes,
                        &mut repl,
                        step,
                        tag,
                        effective_world,
                    ) {
                        ParkOutcome::Resumed { step: s, tag: t } => {
                            step = s;
                            tag = t;
                        }
                        ParkOutcome::Rejoined(pt) => {
                            rejoins += 1;
                            step = pt.step;
                            tag = pt.tag;
                            hosted_vel.clear();
                            replica_enc.reset();
                            replica_stores.clear();
                            ckpt = checkpoint::save(&mut |f| {
                                visit_all(&mut embed, &mut moe, &mut head, f)
                            });
                            ckpt_step = step;
                        }
                        ParkOutcome::Dead => {
                            let (_, shed, routed, _) = moe.take_load_stats();
                            pstats.shed += shed;
                            pstats.routed += routed;
                            return finish(
                                &live,
                                loss_curve,
                                Some(step),
                                retries,
                                restores,
                                h.epoch(),
                                epoch_transitions,
                                rejoins,
                                parks,
                                transfer_bytes,
                                repl,
                                snap_stats,
                                pstats,
                            );
                        }
                    }
                }
                continue 'train;
            }
            if verdict.any_error {
                retries += 1;
                schemoe_obs::counters_for_rank(me).add_retry();
                attempt += 1;
                std::thread::sleep(Duration::from_millis(
                    cfg.backoff_ms * u64::from(attempt.min(5)),
                ));
                continue;
            }

            // All-OK verdict: commit the step everywhere.
            let loss = outcome.expect("all-OK verdict implies a local success");
            opt.step_params(&mut |f| visit_all(&mut embed, &mut moe, &mut head, f));
            // Hosted experts step under the same SGD rule (momentum 0:
            // velocity is the last gradient), hand-rolled because the
            // optimizer's slot order must not shift when hosting starts
            // or stops mid-run.
            for r in moe.hosted_dead_ranks() {
                let vel = hosted_vel
                    .get_mut(&r)
                    .expect("hosted expert without velocity");
                let lr = cfg.lr;
                let mut k = 0usize;
                moe.visit_hosted_params(r, &mut |prm| {
                    vel[k] = prm.grad.clone();
                    for (w, &g) in prm.value.data_mut().iter_mut().zip(prm.grad.data()) {
                        *w -= lr * g;
                    }
                    prm.zero_grad();
                    k += 1;
                });
            }
            // Guest experts step under the same hand-rolled rule. Their
            // gradients left `try_step` as the sync-group *sum*, identical
            // on every group member (the static home applies the same sum
            // through the optimizer), so replicas never drift.
            for e in moe.guest_expert_ids() {
                let vel = guest_vel
                    .get_mut(&e)
                    .expect("guest expert without velocity");
                let lr = cfg.lr;
                let mut k = 0usize;
                moe.visit_serving_params(me, e, &mut |prm| {
                    vel[k] = prm.grad.clone();
                    for (w, &g) in prm.value.data_mut().iter_mut().zip(prm.grad.data()) {
                        *w -= lr * g;
                    }
                    prm.zero_grad();
                    k += 1;
                });
            }
            loss_curve[step] = loss;
            step += 1;
            if step.is_multiple_of(cfg.checkpoint_every) || step == cfg.steps {
                ckpt = checkpoint::save(&mut |f| visit_all(&mut embed, &mut moe, &mut head, f));
                ckpt_step = step;
            }
            // Replication quantum: stream this rank's expert frame to the
            // buddy and absorb the ward's. Every live rank reaches this at
            // the same committed step, so the ring schedule agrees.
            if cfg.replica_interval != 0
                && step.is_multiple_of(cfg.replica_interval)
                && step < cfg.steps
            {
                replicate_quantum(
                    h,
                    cfg,
                    &mut embed,
                    &mut moe,
                    &mut head,
                    &mut opt,
                    &live,
                    &mut replica_enc,
                    &mut replica_stores,
                    &mut repl,
                    step,
                );
            }
            // Placement quantum: exchange load reports, let the
            // coordinator replicate hot experts / migrate experts off
            // gray ranks / retune overload shedding, and commit the plan
            // two-phase. Gated on a fully-live cluster — placement
            // composes with failover by *yielding* to it: any death
            // resets routing to the static layout (see the burial path),
            // and plans resume once membership is whole again. Runs
            // *before* the snapshot quantum so the manifest records the
            // placement the shards were written under.
            if cfg.placement_interval != 0
                && step.is_multiple_of(cfg.placement_interval)
                && step < cfg.steps
                && live.iter().all(|&a| a)
            {
                placement_quantum(
                    h,
                    cfg,
                    &mut embed,
                    &mut moe,
                    &mut head,
                    &mut opt,
                    &live,
                    &mut guest_vel,
                    &vel_indices,
                    &mut pstats,
                    step,
                );
                if h.is_dead() {
                    die_or_rejoin!('train);
                }
            }
            // Snapshot quantum: persist a generation-numbered shard and
            // (on the coordinator) commit the manifest once every live
            // rank acks durable. Runs *after* the replication quantum so
            // the shard embeds the replicas received at this very step.
            if let (Some(s), Some(fs)) = (snap, snap_fs.as_deref()) {
                if s.interval != 0 && step.is_multiple_of(s.interval) && step < cfg.steps {
                    snap_gen += 1;
                    snapshot_quantum(
                        h,
                        cfg,
                        s,
                        fs,
                        &mut embed,
                        &mut moe,
                        &mut head,
                        &mut opt,
                        &live,
                        &replica_stores,
                        &hosted_vel,
                        &vel_indices,
                        &mut snap_stats,
                        step,
                        snap_gen,
                    );
                }
            }
            // Rejoin quantum: poll for announcements from revivable dead
            // ranks. Membership changed → refresh the checkpoint so a later
            // rewind lands every rank (including the rejoiner) on this step.
            if cfg.rejoin_check_every != 0
                && step < cfg.steps
                && step.is_multiple_of(cfg.rejoin_check_every)
                && try_rejoin_peers(
                    h,
                    cfg,
                    &mut embed,
                    &mut moe,
                    &mut head,
                    &mut opt,
                    &mut live,
                    &mut epoch_transitions,
                    &mut transfer_bytes,
                    &mut hosted_vel,
                    &vel_indices,
                    &mut repl,
                    step,
                    tag,
                )
            {
                ckpt = checkpoint::save(&mut |f| visit_all(&mut embed, &mut moe, &mut head, f));
                ckpt_step = step;
            }
            break;
        }
    }

    let (_, shed, routed, _) = moe.take_load_stats();
    pstats.shed += shed;
    pstats.routed += routed;
    finish(
        &live,
        loss_curve,
        None,
        retries,
        restores,
        h.epoch(),
        epoch_transitions,
        rejoins,
        parks,
        transfer_bytes,
        repl,
        snap_stats,
        pstats,
    )
}

/// Assembles the final [`FtReport`] for one rank.
#[allow(clippy::too_many_arguments)]
fn finish(
    live: &[bool],
    curve: Vec<f32>,
    died: Option<usize>,
    retries: u64,
    restores: u64,
    final_epoch: u32,
    epoch_transitions: Vec<u32>,
    rejoins: u64,
    parks: u64,
    transfer_bytes: u64,
    repl: ReplicaStats,
    snap: SnapStats,
    pstats: PlacementStats,
) -> FtReport {
    let last = curve.iter().rev().find(|l| !l.is_nan()).copied();
    FtReport {
        final_loss: last.unwrap_or(f32::NAN),
        loss_curve: curve,
        died_at_step: died,
        dead_ranks: (0..live.len()).filter(|&r| !live[r]).collect(),
        retries,
        restores,
        final_epoch,
        epoch_transitions,
        rejoins,
        parks,
        transfer_bytes,
        replica_quanta: repl.quanta,
        replica_bytes: repl.bytes,
        failover_activations: repl.activations,
        handbacks: repl.handbacks,
        handback_bytes: repl.handback_bytes,
        failover_staleness_steps: repl.staleness,
        snapshot_shards: snap.shards,
        snapshot_bytes: snap.bytes,
        snapshot_generations: snap.generations,
        snapshot_gc: snap.gc,
        resumed_at_step: snap.resumed_at,
        snapshot_reconstructions: snap.reconstructions,
        restore_ms: snap.restore_ms,
        placement_plans: pstats.plans,
        placement_replications: pstats.replications,
        placement_migrations: pstats.migrations,
        placement_demotions: pstats.demotions,
        placement_transfer_bytes: pstats.transfer_bytes,
        tokens_routed: pstats.routed,
        tokens_shed: pstats.shed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_cluster::{ChaosPlan, Fabric, FaultPlan, Topology, TransportKind};

    fn mean_final_loss(reports: &[FtReport]) -> f32 {
        let survivors: Vec<&FtReport> = reports
            .iter()
            .filter(|r| r.died_at_step.is_none())
            .collect();
        assert!(!survivors.is_empty(), "every rank died");
        survivors.iter().map(|r| r.final_loss).sum::<f32>() / survivors.len() as f32
    }

    #[test]
    fn fault_free_training_converges() {
        let cfg = FtConfig::tiny(12);
        let reports = Fabric::run(Topology::new(2, 2), |mut h| run_ft_rank(&mut h, &cfg));
        for r in &reports {
            assert_eq!(r.died_at_step, None);
            assert_eq!(r.retries, 0);
            assert_eq!(r.restores, 0);
            assert!(r.dead_ranks.is_empty());
            assert_eq!(r.loss_curve.len(), 12);
            assert!(r.loss_curve.iter().all(|l| l.is_finite()));
        }
        // Replicated losses are identical across ranks only in expectation
        // (data differs per rank); the mean must fall.
        let first = reports.iter().map(|r| r.loss_curve[0]).sum::<f32>() / 4.0;
        let last = mean_final_loss(&reports);
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn overlapped_training_reproduces_the_serial_loss_curve_bit_for_bit() {
        // The whole-step pipeline (overlapped forward + backward with the
        // head-grad allreduce folded into the backward graph) must not
        // change a single bit of the training trajectory.
        let run = |degree: usize| {
            let cfg = FtConfig::tiny(6).with_partition_degree(degree);
            Fabric::run(Topology::new(2, 2), |mut h| run_ft_rank(&mut h, &cfg))
        };
        let serial = run(1);
        for degree in [2, 4] {
            let overlapped = run(degree);
            for (r, (s, o)) in serial.iter().zip(&overlapped).enumerate() {
                assert_eq!(o.died_at_step, None);
                let same = s
                    .loss_curve
                    .iter()
                    .zip(&o.loss_curve)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "degree {degree} rank {r} loss curve diverged");
            }
        }
    }

    #[test]
    fn training_survives_dropped_messages_via_retries() {
        let cfg = FtConfig::tiny(6);
        // A lossy but alive fabric: ~1% of payload messages vanish. The
        // handle-level deadline turns each loss into a Timeout, the vote
        // round turns it into a cluster-wide retry.
        let plan = FaultPlan::seeded(11)
            .with_drop_prob(0.01)
            .with_recv_deadline(Duration::from_millis(300));
        let reports =
            Fabric::run_with_faults(Topology::new(2, 2), plan, |mut h| run_ft_rank(&mut h, &cfg));
        for r in &reports {
            assert_eq!(r.died_at_step, None, "no rank should die from drops");
            assert!(r.final_loss.is_finite());
        }
        let total_retries: u64 = reports.iter().map(|r| r.retries).sum();
        assert!(
            total_retries > 0,
            "1% drop over 6 steps should trigger a retry"
        );
    }

    #[test]
    fn a_late_voter_is_not_double_counted_as_suspect() {
        // The tally that used to be wrong: rank 2 misses its round-one copy
        // window (all copies delayed past the deadline) but answers in
        // round two. It must end up a voter, never a suspect.
        let me = 0usize;
        let live = vec![true; 4];
        let mut heard1: Vec<Option<(u8, u64, u64)>> = vec![Some((0, 0, 0)); 4];
        heard1[2] = None;
        let (a1, s1, c1, u1) = tally_round(me, &live, 0, 0, 0, &heard1);
        assert!(a1, "an unheard peer must force an error verdict");
        assert_eq!(s1, 0, "silence alone is not a suspicion");
        assert_eq!(c1, 0);
        assert_eq!(u1, 0b100);

        // Round two: everyone (including the late rank 2) echoes the union.
        let heard2: Vec<Option<(u8, u64, u64)>> = vec![Some((u8::from(a1), s1, c1)); 4];
        let (a2, s2, _, u2) = tally_round(me, &live, u8::from(a1), s1, c1, &heard2);
        assert!(a2);
        assert_eq!(u2, 0);
        assert_eq!(
            s2 | (u1 & u2),
            0,
            "a peer heard in round two is a voter, not a suspect, even past \
             the retry budget"
        );

        // Silence in *both* rounds is what escalation means.
        let (_, s2b, c2b, u2b) = tally_round(me, &live, u8::from(a1), s1, c1, &heard1);
        assert_eq!(s2b, 0);
        assert_eq!(
            s2b | (u1 & u2b),
            0b100,
            "a peer silent in both rounds is presumed dead under escalation"
        );
        assert_eq!(
            c2b, 0,
            "escalated silence is presumed, never confirmed: it must face \
             the quorum rule at burial"
        );
    }

    #[test]
    fn tally_skips_self_and_buried_ranks() {
        let live = vec![true, false, true, true];
        // Nothing heard at all: only live peers (2, 3) count as unheard.
        let heard: Vec<Option<(u8, u64, u64)>> = vec![None; 4];
        let (any, sus, conf, unheard) = tally_round(0, &live, 0, 0, 0, &heard);
        assert!(any);
        assert_eq!(sus, 0);
        assert_eq!(conf, 0);
        assert_eq!(unheard, 0b1100);
    }

    #[test]
    fn tally_gossips_confirmed_evidence_alongside_suspicions() {
        // Rank 1 saw rank 3's link close first-hand; rank 0 only heard
        // about it. Both the suspicion and its confirmed flag must reach
        // rank 0's tally so it buries 3 without a quorum fight.
        let live = vec![true, true, true, true];
        let mut heard: Vec<Option<(u8, u64, u64)>> = vec![Some((0, 0, 0)); 4];
        heard[1] = Some((1, 0b1000, 0b1000));
        let (any, sus, conf, unheard) = tally_round(0, &live, 0, 0, 0, &heard);
        assert!(any);
        assert_eq!(sus, 0b1000);
        assert_eq!(
            conf, 0b1000,
            "first-hand evidence gossips with the suspicion"
        );
        assert_eq!(unheard, 0);
    }

    #[test]
    fn invites_round_trip_through_the_wire_encoding() {
        let inv = Invite {
            step: 17,
            tag: 99 * TAG_STRIDE,
            epoch: 3,
            donor: 2,
            live: 0b1011_0111,
            handback: 3,
            routes: vec![(5, 6), (2, 3)],
        };
        assert_eq!(Invite::decode(&inv.encode()), Some(inv.clone()));
        let bare = Invite {
            handback: 0,
            routes: Vec::new(),
            ..inv.clone()
        };
        assert_eq!(Invite::decode(&bare.encode()), Some(bare));
        assert_eq!(Invite::decode(&[0u8; 31]), None, "short frames rejected");
        let mut torn = inv.encode().to_vec();
        torn.pop();
        assert_eq!(
            Invite::decode(&torn),
            None,
            "a truncated route list is rejected"
        );
    }

    /// Builds one rank's model triple off-fabric (visit/serialize paths
    /// need no handle), seeded exactly as [`run_ft_rank`] seeds rank `me`.
    fn build_rank(cfg: &FtConfig, me: u64) -> (Embedding, DistributedMoeLayer, Linear, Sgd) {
        let embed = Embedding::new(cfg.vocab, cfg.model_dim, &mut seeded(cfg.seed ^ 0xE3BED));
        let gate = TopKGate::new(
            cfg.model_dim,
            4,
            cfg.k,
            cfg.capacity_factor,
            &mut seeded(cfg.seed ^ 0x6A7E),
        );
        let expert: Box<dyn Expert> = Box::new(FfExpert::new(
            cfg.model_dim,
            cfg.hidden_dim,
            &mut seeded(cfg.seed ^ 0xE8_0000 ^ me),
        ));
        let moe = DistributedMoeLayer::new(
            gate,
            vec![expert],
            Box::new(NoCompression),
            Box::new(NcclA2A),
        );
        let head = Linear::new(cfg.model_dim, cfg.vocab, &mut seeded(cfg.seed ^ 0x4EAD));
        (embed, moe, head, Sgd::new(cfg.lr))
    }

    #[test]
    fn expert_payloads_round_trip_and_match_the_hosted_layout() {
        let cfg = FtConfig::tiny(4);
        let (mut embed, mut moe, mut head, mut opt) = build_rank(&cfg, 1);
        let originals: Vec<Vec<f32>> = {
            let mut v = Vec::new();
            moe.visit_params(&mut |p| {
                if !p.name.starts_with("gate.") {
                    v.push(p.value.data().to_vec());
                }
            });
            v
        };
        let payload = expert_state_payload(&mut embed, &mut moe, &mut head, &mut opt);

        // Damage the expert, then restore it from its own payload.
        moe.visit_params(&mut |p| {
            if !p.name.starts_with("gate.") {
                for w in p.value.data_mut() {
                    *w *= 2.0;
                }
            }
        });
        apply_own_expert_state(&payload, &mut embed, &mut moe, &mut head, &mut opt)
            .expect("own payload must apply");

        // A host's handback frame for the same expert uses the identical
        // layout, so the owner's strict positional load accepts it too.
        let (mut h_embed, mut h_moe, mut h_head, _) = build_rank(&cfg, 2);
        let vel_indices = expert_velocity_indices(&mut h_embed, &mut h_moe, &mut h_head);
        let ward: Box<dyn Expert> = Box::new(FfExpert::new(
            cfg.model_dim,
            cfg.hidden_dim,
            &mut seeded(cfg.seed ^ 0xE8_0000 ^ 1),
        ));
        h_moe.set_failover_route(1, 2);
        h_moe.install_hosted_experts(1, vec![ward]);
        let mut vel = Vec::new();
        h_moe.visit_hosted_params(1, &mut |p| vel.push(Tensor::zeros(p.value.dims())));
        apply_hosted_replica(&payload, &mut h_moe, 1, &mut vel, &vel_indices)
            .expect("the owner's payload must apply to the hosted copy");
        let handback = hosted_replica_payload(&mut h_moe, 1, &vel, &vel_indices);
        apply_own_expert_state(&handback, &mut embed, &mut moe, &mut head, &mut opt)
            .expect("the handback must apply to the owner");

        let mut i = 0usize;
        moe.visit_params(&mut |p| {
            if !p.name.starts_with("gate.") {
                assert_eq!(p.value.data(), &originals[i][..], "param {i} restored");
                i += 1;
            }
        });
    }

    #[test]
    fn fault_free_replication_is_invisible_to_training() {
        let base = FtConfig::tiny(8).with_seed(21);
        let with = base.with_replica_interval(2);
        let a = Fabric::run(Topology::new(2, 2), |mut h| run_ft_rank(&mut h, &base));
        let b = Fabric::run(Topology::new(2, 2), |mut h| run_ft_rank(&mut h, &with));
        let bits = |c: &[f32]| c.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(
                bits(&ra.loss_curve),
                bits(&rb.loss_curve),
                "replication must not perturb the training trajectory"
            );
            assert_eq!(ra.replica_quanta, 0);
            // Quanta fire at committed steps 2, 4, and 6 (8 is the last
            // step and skipped).
            assert_eq!(rb.replica_quanta, 3);
            assert!(rb.replica_bytes > 0);
            assert_eq!(rb.failover_activations, 0);
            assert_eq!(rb.handbacks, 0);
        }
    }

    #[test]
    fn a_killed_rank_is_detected_and_training_completes_degraded() {
        let cfg = FtConfig::tiny(8);
        // Rank 3 dies after 40 sends — mid-epoch, after the first
        // checkpoint window.
        let plan = FaultPlan::seeded(5)
            .kill_after(3, 40)
            .with_recv_deadline(Duration::from_millis(300));
        let reports =
            Fabric::run_with_faults(Topology::new(2, 2), plan, |mut h| run_ft_rank(&mut h, &cfg));
        assert!(
            reports[3].died_at_step.is_some(),
            "rank 3 must observe its death"
        );
        for (r, rep) in reports.iter().enumerate() {
            if r == 3 {
                continue;
            }
            assert_eq!(rep.died_at_step, None, "rank {r} should survive");
            assert_eq!(rep.dead_ranks, vec![3], "rank {r} should bury rank 3");
            assert!(rep.restores >= 1, "rank {r} should restore a checkpoint");
            assert!(rep.final_loss.is_finite());
            assert!(
                rep.loss_curve.iter().all(|l| l.is_finite()),
                "every step must commit after recovery"
            );
        }
    }

    #[test]
    fn a_revived_rank_rejoins_and_the_cluster_ends_at_full_strength() {
        let cfg = FtConfig::tiny(10).with_seed(9);
        // Rank 1 dies after 60 sends and its pipe reopens 40 send-attempts
        // later; survivors bury it, then re-admit it at a rejoin quantum.
        let plan = FaultPlan::seeded(5)
            .kill_after(1, 60)
            .revive_after(1, 100)
            .with_recv_deadline(Duration::from_millis(300));
        let reports =
            Fabric::run_with_faults(Topology::new(2, 2), plan, |mut h| run_ft_rank(&mut h, &cfg));
        for (r, rep) in reports.iter().enumerate() {
            assert_eq!(rep.died_at_step, None, "rank {r} must finish the run");
            assert!(
                rep.dead_ranks.is_empty(),
                "rank {r} must end with everyone live, got {:?}",
                rep.dead_ranks
            );
            assert!(rep.final_loss.is_finite());
        }
        assert_eq!(reports[1].rejoins, 1, "rank 1 must rejoin exactly once");
        assert!(
            reports[1].transfer_bytes > 0,
            "the rejoiner must account the state it applied"
        );
        let donors: u64 = reports
            .iter()
            .enumerate()
            .filter(|(r, _)| *r != 1)
            .map(|(_, rep)| rep.transfer_bytes)
            .sum();
        assert!(donors > 0, "some survivor must have streamed state");
        // Membership epochs converge: one bump for the burial, one for the
        // rejoin, identical everywhere.
        for (r, rep) in reports.iter().enumerate() {
            assert_eq!(
                rep.final_epoch, 2,
                "rank {r} final epoch {} (transitions {:?})",
                rep.final_epoch, rep.epoch_transitions
            );
        }
        for r in [0usize, 2, 3] {
            assert_eq!(
                reports[r].epoch_transitions,
                vec![1, 2],
                "survivor {r} must observe burial then rejoin"
            );
        }
        assert_eq!(
            reports[1].epoch_transitions,
            vec![2],
            "the rejoiner adopts the post-rejoin epoch it was invited into"
        );
    }

    #[test]
    fn rejoin_epoch_transitions_replay_bit_identically() {
        let cfg = FtConfig::tiny(10).with_seed(9);
        let run = || {
            let plan = FaultPlan::seeded(5)
                .kill_after(1, 60)
                .revive_after(1, 100)
                .with_recv_deadline(Duration::from_millis(300));
            Fabric::run_with_faults(Topology::new(2, 2), plan, |mut h| run_ft_rank(&mut h, &cfg))
        };
        let (a, b) = (run(), run());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.epoch_transitions, rb.epoch_transitions);
            assert_eq!(ra.final_epoch, rb.final_epoch);
            assert_eq!(ra.rejoins, rb.rejoins);
            assert_eq!(ra.transfer_bytes, rb.transfer_bytes);
            // Bitwise so the rejoiner's NaN gap entries compare equal too.
            let bits = |c: &[f32]| c.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&ra.loss_curve), bits(&rb.loss_curve));
        }
    }

    #[test]
    fn back_to_back_runs_do_not_inherit_deadline_state() {
        // Regression: a run that installed an adaptive deadline policy
        // never uninstalled it, so a second run (or a later test sharing
        // the fabric handle) silently inherited the previous run's
        // stretched deadlines. Both the policy and the static receive
        // deadline must come back to their entry values.
        let plan = FaultPlan::seeded(91).with_recv_deadline(Duration::from_secs(2));
        let policy = AdaptiveDeadline {
            margin: 4.0,
            floor: Duration::from_secs(2),
            ceiling: Duration::from_secs(8),
            min_samples: 1,
        };
        let adaptive_cfg = FtConfig::tiny(3).with_adaptive_deadline(policy);
        let plain_cfg = FtConfig::tiny(3);
        Fabric::run_with_faults(Topology::new(1, 2), plan, |mut h| {
            let entry_deadline = h.recv_deadline();
            assert_eq!(entry_deadline, Some(Duration::from_secs(2)));
            let first = run_ft_rank(&mut h, &adaptive_cfg);
            assert_eq!(first.died_at_step, None);
            assert_eq!(h.adaptive_deadline(), None, "adaptive policy leaked");
            assert_eq!(h.recv_deadline(), entry_deadline, "static deadline leaked");
            let second = run_ft_rank(&mut h, &plain_cfg);
            assert_eq!(second.died_at_step, None);
            assert_eq!(h.adaptive_deadline(), None);
            assert_eq!(h.recv_deadline(), entry_deadline);
        });
    }

    #[test]
    fn buddy_placement_crosses_failure_domains() {
        // Two experts per domain: every buddy lands in the other domain.
        let d = DomainMap::from_labels(&[0, 0, 1, 1]);
        assert_eq!(buddy_of(0, 4, Some(&d)), 2);
        assert_eq!(buddy_of(1, 4, Some(&d)), 2);
        assert_eq!(buddy_of(2, 4, Some(&d)), 0);
        assert_eq!(buddy_of(3, 4, Some(&d)), 0);
        // Whenever a second domain exists at all, an expert and its replica
        // are never co-domained — a single-domain loss cannot take both.
        let labels = [0u8, 1, 0, 1, 2, 2, 0, 1];
        let d = DomainMap::from_labels(&labels);
        for r in 0..labels.len() {
            let b = buddy_of(r, labels.len(), Some(&d));
            assert_ne!(r, b);
            assert_ne!(
                labels[r], labels[b],
                "rank {r} would replicate inside its own failure domain"
            );
        }
        // A degenerate single-domain world falls back to the plain ring.
        let d = DomainMap::from_labels(&[5, 5, 5]);
        for r in 0..3 {
            assert_eq!(buddy_of(r, 3, Some(&d)), (r + 1) % 3);
        }
        // So does an unlabelled one.
        assert_eq!(buddy_of(2, 4, None), 3);
        assert_eq!(buddy_of(3, 4, None), 0);
    }

    #[test]
    fn losing_a_whole_failure_domain_fails_over_to_the_other_domain() {
        // Ranks 0 and 1 share domain 0; ranks 2 and 3 share domain 1.
        // Domain-aware placement replicates both domain-0 experts across
        // the domain boundary (the buddy of 0 and of 1 is rank 2), so
        // killing all of domain 0 loses no expert: rank 2 activates both
        // wards and training completes with the full expert set routed.
        let cfg = FtConfig::tiny(10)
            .with_seed(21)
            .with_replica_interval(2)
            .with_replica_domains(DomainMap::from_labels(&[0, 0, 1, 1]));
        let plan = FaultPlan::seeded(5)
            .kill_after(0, 60)
            .kill_after(1, 64)
            .with_recv_deadline(Duration::from_millis(300));
        let reports =
            Fabric::run_with_faults(Topology::new(2, 2), plan, |mut h| run_ft_rank(&mut h, &cfg));
        for r in [2usize, 3] {
            assert_eq!(reports[r].died_at_step, None, "rank {r} must survive");
            assert_eq!(reports[r].dead_ranks, vec![0, 1]);
            assert!(reports[r].final_loss.is_finite());
            assert!(reports[r].loss_curve.iter().all(|l| l.is_finite()));
        }
        assert_eq!(
            reports[2].failover_activations, 2,
            "the cross-domain buddy must host both domain-0 experts"
        );
        assert_eq!(reports[3].failover_activations, 0);
    }

    #[test]
    fn a_tied_partition_parks_both_sides_and_resumes_without_divergence() {
        // A 2|2 split: neither side can assemble floor(4/2)+1 = 3 votes
        // against its silent half, so both sides park instead of burying
        // each other. The park pings themselves carry the chaos windows to
        // their heal indices; once pings cross, the lowest parked rank
        // broadcasts a common resume point and training continues with
        // nobody buried and nothing diverged.
        let cfg = FtConfig {
            retry_budget: 1,
            vote_timeout_ms: 50,
            ..FtConfig::tiny(8).with_seed(33)
        };
        let chaos = ChaosPlan::seeded(77).partition(&[0, 1], &[2, 3], 0, 60);
        let plan = FaultPlan::seeded(77).with_recv_deadline(Duration::from_millis(300));
        let parked = Fabric::run_with_chaos_on(
            TransportKind::Channel,
            Topology::new(2, 2),
            chaos,
            Some(plan),
            |mut h| run_ft_rank(&mut h, &cfg),
        );
        let clean = Fabric::run(Topology::new(2, 2), |mut h| run_ft_rank(&mut h, &cfg));
        for (r, rep) in parked.iter().enumerate() {
            assert_eq!(rep.died_at_step, None, "rank {r} must survive the tie");
            assert!(
                rep.dead_ranks.is_empty(),
                "a tie must bury nobody, rank {r} buried {:?}",
                rep.dead_ranks
            );
            assert!(rep.parks >= 1, "rank {r} must park at least once");
            assert_eq!(rep.rejoins, 0, "a parked tie resumes, it does not rejoin");
            assert_eq!(rep.restores, 0, "no burial, no checkpoint rewind");
            assert_eq!(rep.final_epoch, 0, "no burial, no epoch bump");
            assert_eq!(rep.loss_curve.len(), 8);
        }
        // A partition costs staleness, never divergence: the committed
        // trajectory is bit-identical to the fault-free run's.
        let bits = |curve: &[f32]| curve.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
        for (r, (pr, cr)) in parked.iter().zip(&clean).enumerate() {
            assert_eq!(
                bits(&pr.loss_curve),
                bits(&cr.loss_curve),
                "rank {r} committed a diverged trajectory"
            );
        }
    }

    #[test]
    fn a_partitioned_minority_parks_and_rejoins_through_an_invite() {
        // A 3|1 split: the majority holds quorum (4 - 1 silent = 3 >= 3),
        // buries rank 3, rewinds, and continues degraded. Rank 3 sees
        // three silent peers — 4 - 3 = 1 < 3 — so it parks rather than
        // burying the (actually healthy) majority. Its park announces
        // carry its outbound links to their heal indices; the majority's
        // re-invites carry the reverse direction; the first intact invite
        // plus state stream re-admits it.
        let cfg = FtConfig {
            retry_budget: 1,
            vote_timeout_ms: 50,
            ..FtConfig::tiny(220).with_seed(34)
        };
        let chaos = ChaosPlan::seeded(78).partition(&[0, 1, 2], &[3], 0, 36);
        let plan = FaultPlan::seeded(78).with_recv_deadline(Duration::from_millis(300));
        let reports = Fabric::run_with_chaos_on(
            TransportKind::Channel,
            Topology::new(2, 2),
            chaos,
            Some(plan),
            |mut h| run_ft_rank(&mut h, &cfg),
        );
        for r in [0usize, 1, 2] {
            assert_eq!(reports[r].died_at_step, None, "majority rank {r} died");
            assert_eq!(reports[r].parks, 0, "the quorate side must never park");
            assert!(
                reports[r].restores >= 1,
                "rank {r} must rewind after burying the minority"
            );
            assert!(
                reports[r].dead_ranks.is_empty(),
                "rank {r} must re-admit the minority, still buried: {:?}",
                reports[r].dead_ranks
            );
            assert!(reports[r].final_loss.is_finite());
        }
        let minority = &reports[3];
        assert_eq!(minority.died_at_step, None);
        assert!(minority.parks >= 1, "the minority side must park");
        assert_eq!(
            minority.rejoins, 1,
            "the parked rank must come back through the invite path"
        );
        assert_eq!(minority.restores, 0, "a parked rank buries nobody");
        assert!(minority.dead_ranks.is_empty());
        let epoch = reports[0].final_epoch;
        assert!(epoch >= 2, "one burial plus one rejoin, got {epoch}");
        for (r, rep) in reports.iter().enumerate() {
            assert_eq!(
                rep.final_epoch, epoch,
                "rank {r} must converge to the one surviving membership"
            );
        }
    }

    #[test]
    fn an_asymmetric_link_loss_excommunicates_the_mute_rank_and_it_rejoins() {
        // Rank 3's outbound links go dark while its inbound stays clean —
        // the one-way loss a dying NIC produces. The other three hear
        // nothing from it and bury it under a 3-of-4 quorum, then keep
        // training degraded. Rank 3 hears the verdict against itself on
        // its still-working inbound; whether it accepts the accusation
        // outright or parks first (its own aborted collectives give it
        // first-hand suspicions too, which can cost the accusation quorum
        // from its local view), it must never bury the majority — and once
        // its links heal it comes back through the invite path.
        let cfg = FtConfig {
            retry_budget: 1,
            vote_timeout_ms: 50,
            ..FtConfig::tiny(200).with_seed(35)
        };
        let chaos = ChaosPlan::seeded(79)
            .blackhole_window(3, 0, 0, 24)
            .blackhole_window(3, 1, 0, 24)
            .blackhole_window(3, 2, 0, 24);
        let plan = FaultPlan::seeded(79).with_recv_deadline(Duration::from_millis(300));
        let reports = Fabric::run_with_chaos_on(
            TransportKind::Channel,
            Topology::new(2, 2),
            chaos,
            Some(plan),
            |mut h| run_ft_rank(&mut h, &cfg),
        );
        for r in [0usize, 1, 2] {
            assert_eq!(reports[r].died_at_step, None, "rank {r} died");
            assert!(
                reports[r].restores >= 1,
                "rank {r} must rewind after the burial"
            );
            assert_eq!(reports[r].parks, 0);
            assert!(
                reports[r].dead_ranks.is_empty(),
                "rank {r} must re-admit rank 3, still buried: {:?}",
                reports[r].dead_ranks
            );
            assert!(reports[r].final_loss.is_finite());
        }
        assert_eq!(reports[3].rejoins, 1, "rank 3 must rejoin after the heal");
        assert_eq!(reports[3].restores, 0, "the mute rank must bury nobody");
        assert_eq!(reports[3].died_at_step, None);
        let epoch = reports[0].final_epoch;
        assert!(epoch >= 2);
        for (r, rep) in reports.iter().enumerate() {
            assert_eq!(rep.final_epoch, epoch, "rank {r} epoch diverged");
        }
    }

    /// A fresh per-test snapshot directory under the system temp dir
    /// (the workspace vendors no tempdir crate).
    fn snap_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("schemoe-ft-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn snapshot_resume_replays_the_uninterrupted_run_bit_for_bit() {
        let dir = snap_dir("resume");
        let cfg = FtConfig::tiny(12);
        let snap = SnapshotCfg::new(&dir, 4);
        let full = Fabric::run(Topology::new(2, 2), |mut h| {
            run_ft_rank_durable(&mut h, &cfg, Some(&snap))
        });
        for r in &full {
            assert!(r.snapshot_shards >= 2, "every rank persists each quantum");
            assert!(r.snapshot_bytes > 0);
            assert_eq!(r.resumed_at_step, None);
        }
        // The coordinator committed generations at steps 4 and 8.
        assert_eq!(full[0].snapshot_generations, 2);
        assert!(dir.join(snapshot::manifest_file_name(1)).exists());
        assert!(dir.join(snapshot::manifest_file_name(2)).exists());

        // A cold restart resumes from step 8 and — because f32 state
        // round-trips exactly — replays the tail bit-for-bit.
        let rsnap = snap.clone().with_resume();
        let resumed = Fabric::run(Topology::new(2, 2), |mut h| {
            run_ft_rank_durable(&mut h, &cfg, Some(&rsnap))
        });
        for (i, (r, f)) in resumed.iter().zip(&full).enumerate() {
            assert_eq!(r.resumed_at_step, Some(8), "rank {i}");
            assert_eq!(r.snapshot_reconstructions, 0, "rank {i}");
            assert!(r.loss_curve[..8].iter().all(|l| l.is_nan()));
            for s in 8..12 {
                assert_eq!(
                    r.loss_curve[s].to_bits(),
                    f.loss_curve[s].to_bits(),
                    "rank {i} step {s} diverged after resume"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_crash_before_manifest_rename_never_commits_the_generation() {
        let dir = snap_dir("crash");
        let cfg = FtConfig::tiny(12);
        // The coordinator's rename order is shard g1 (idx 0), manifest g1
        // (1), shard g2 (2), manifest g2 (3): crash exactly the second
        // manifest's rename. Non-coordinators never reach rename idx 3.
        let plan = Arc::new(ChaosFsPlan::seeded(5).crash_rename_window(3, 4));
        let snap = SnapshotCfg::new(&dir, 4).with_chaos(plan);
        let chaos = Fabric::run(Topology::new(2, 2), |mut h| {
            run_ft_rank_durable(&mut h, &cfg, Some(&snap))
        });
        // Generation 2's shards all landed, but without the manifest the
        // generation was never committed — and the orphan tmp proves the
        // crash hit after the write, before the rename.
        assert_eq!(chaos[0].snapshot_generations, 1);
        let g2_manifest = dir.join(snapshot::manifest_file_name(2));
        assert!(dir.join(snapshot::manifest_file_name(1)).exists());
        assert!(!g2_manifest.exists());
        assert!(schemoe_cluster::storage::tmp_sibling(&g2_manifest).exists());

        // Resume ignores the interrupted generation and replays from the
        // last complete one (step 4), bit-for-bit.
        let rsnap = SnapshotCfg::new(&dir, 4).with_resume();
        let resumed = Fabric::run(Topology::new(2, 2), |mut h| {
            run_ft_rank_durable(&mut h, &cfg, Some(&rsnap))
        });
        for (i, (r, c)) in resumed.iter().zip(&chaos).enumerate() {
            assert_eq!(r.resumed_at_step, Some(4), "rank {i}");
            for s in 4..12 {
                assert_eq!(
                    r.loss_curve[s].to_bits(),
                    c.loss_curve[s].to_bits(),
                    "rank {i} step {s} diverged after resume"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupt_shard_restores_from_the_buddy_replica_on_disk() {
        let dir = snap_dir("buddy");
        let cfg = FtConfig::tiny(12).with_replica_interval(2);
        let snap = SnapshotCfg::new(&dir, 4);
        let full = Fabric::run(Topology::new(2, 2), |mut h| {
            run_ft_rank_durable(&mut h, &cfg, Some(&snap))
        });
        assert_eq!(full[0].snapshot_generations, 2);

        // Silently rot one byte in rank 1's newest shard, beneath the CRC.
        let victim = dir.join(snapshot::shard_file_name(2, 1));
        let mut bytes = std::fs::read(&victim).expect("shard must exist");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&victim, &bytes).expect("rewrite shard");

        // Rank 1 reconstructs from its buddy's embedded replica — which
        // was streamed at the same committed step, so the tail still
        // replays bit-for-bit on every rank.
        let rsnap = SnapshotCfg::new(&dir, 4).with_resume();
        let resumed = Fabric::run(Topology::new(2, 2), |mut h| {
            run_ft_rank_durable(&mut h, &cfg, Some(&rsnap))
        });
        assert_eq!(resumed[1].snapshot_reconstructions, 1);
        assert_eq!(resumed[0].snapshot_reconstructions, 0);
        for (i, (r, f)) in resumed.iter().zip(&full).enumerate() {
            assert_eq!(r.resumed_at_step, Some(8), "rank {i}");
            for s in 8..12 {
                assert_eq!(
                    r.loss_curve[s].to_bits(),
                    f.loss_curve[s].to_bits(),
                    "rank {i} step {s} diverged after reconstruction"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_only_the_newest_complete_generations() {
        let dir = snap_dir("gc");
        let cfg = FtConfig::tiny(10);
        let snap = SnapshotCfg::new(&dir, 2).with_keep(2);
        let reports = Fabric::run(Topology::new(2, 2), |mut h| {
            run_ft_rank_durable(&mut h, &cfg, Some(&snap))
        });
        // Generations committed at steps 2, 4, 6, 8; the oldest two GC'd.
        assert_eq!(reports[0].snapshot_generations, 4);
        assert_eq!(reports[0].snapshot_gc, 2);
        let manifests = std::fs::read_dir(&dir)
            .expect("snapshot dir")
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.starts_with("manifest-"))
            .count();
        assert_eq!(manifests, 2);
        // A GC'd generation loses its shards too; the survivors keep theirs.
        assert!(!dir.join(snapshot::shard_file_name(1, 0)).exists());
        assert!(!dir.join(snapshot::manifest_file_name(2)).exists());
        assert!(dir.join(snapshot::manifest_file_name(3)).exists());
        assert!(dir.join(snapshot::shard_file_name(4, 0)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn placement_commits_plans_and_replays_bit_identically() {
        // An aggressive hot threshold forces replication on the natural
        // routing skew of the seeded gate. The run must converge, commit
        // plans, and — the tentpole determinism claim — two same-seed
        // runs must agree bit-for-bit on the loss curve *and* on every
        // placement decision (no chaos, so stall probes sit under the
        // gray floor and plans are a pure function of routed loads).
        let cfg = FtConfig::tiny(12)
            .with_seed(51)
            .with_placement_interval(3)
            .with_placement_hot_factor(1.05);
        let run = || Fabric::run(Topology::new(2, 2), |mut h| run_ft_rank(&mut h, &cfg));
        let a = run();
        let b = run();
        for (r, rep) in a.iter().enumerate() {
            assert_eq!(rep.died_at_step, None, "rank {r} died");
            assert!(rep.loss_curve.iter().all(|l| l.is_finite()));
            // Quanta at steps 3, 6, 9 — every one must commit (fully
            // live, no chaos, so the two-phase protocol cannot abort).
            assert_eq!(rep.placement_plans, 3, "rank {r}");
            assert!(
                rep.placement_replications > 0,
                "rank {r}: a 1.05x hot threshold must trigger replication"
            );
            assert!(rep.tokens_routed > 0, "rank {r} routed nothing");
        }
        let bits = |c: &[f32]| c.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
        for (r, (ra, rb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                bits(&ra.loss_curve),
                bits(&rb.loss_curve),
                "rank {r}: replicated routing must not perturb the trajectory"
            );
            assert_eq!(ra.placement_plans, rb.placement_plans, "rank {r}");
            assert_eq!(
                ra.placement_replications, rb.placement_replications,
                "rank {r}"
            );
            assert_eq!(ra.placement_migrations, rb.placement_migrations, "rank {r}");
            assert_eq!(ra.placement_demotions, rb.placement_demotions, "rank {r}");
            assert_eq!(ra.tokens_shed, rb.tokens_shed, "rank {r}");
        }
        // Placement decisions are cluster-wide agreements: every rank
        // reports the identical plan counters.
        for rep in &a[1..] {
            assert_eq!(rep.placement_plans, a[0].placement_plans);
            assert_eq!(rep.placement_replications, a[0].placement_replications);
        }
    }

    #[test]
    fn placement_resets_to_static_when_a_rank_dies() {
        // Kill a rank mid-run with the placement controller active (its
        // quantum cadence guarantees a committed non-static placement
        // before the death). The burial path must reset every survivor
        // to the static layout and training must complete degraded —
        // with replication enabled, through failover hosting too.
        let cfg = FtConfig {
            replica_interval: 2,
            ..FtConfig::tiny(20)
                .with_seed(52)
                .with_placement_interval(2)
                .with_placement_hot_factor(1.05)
                .with_rejoin_check_every(0)
        };
        let plan = FaultPlan::seeded(52)
            .kill_after(3, 160)
            .with_recv_deadline(Duration::from_secs(2));
        let reports =
            Fabric::run_with_faults(Topology::new(2, 2), plan, |mut h| run_ft_rank(&mut h, &cfg));
        let survivors: Vec<&FtReport> = reports
            .iter()
            .filter(|r| r.died_at_step.is_none())
            .collect();
        assert_eq!(survivors.len(), 3, "exactly rank 3 dies");
        for rep in &survivors {
            assert_eq!(rep.dead_ranks, vec![3]);
            assert!(rep.restores >= 1, "survivors must rewind after the burial");
            assert!(rep.final_loss.is_finite());
            assert!(
                rep.placement_plans >= 1,
                "a plan must commit before the death"
            );
            // No placement quantum may run while a rank is buried: the
            // controller is gated on a fully-live cluster, so plan
            // counters froze at the death and stayed equal everywhere.
            assert_eq!(rep.placement_plans, survivors[0].placement_plans);
        }
    }

    #[test]
    fn placement_rides_the_snapshot_manifest_across_a_cold_restart() {
        // A durable run with the placement controller active snapshots
        // under a committed placement; a cold restart must rebuild the
        // same placement (guest bodies, velocities, version) from the
        // manifest and replay the tail bit-for-bit.
        let dir = snap_dir("placement");
        let cfg = FtConfig::tiny(12)
            .with_seed(53)
            .with_placement_interval(2)
            .with_placement_hot_factor(1.05);
        let snap = SnapshotCfg::new(&dir, 4);
        let full = Fabric::run(Topology::new(2, 2), |mut h| {
            run_ft_rank_durable(&mut h, &cfg, Some(&snap))
        });
        for r in &full {
            assert_eq!(r.died_at_step, None);
            assert!(
                r.placement_replications > 0,
                "the run must train under a non-static placement"
            );
        }
        // The newest manifest embeds the placement blob.
        let man_bytes = std::fs::read(dir.join(snapshot::manifest_file_name(2))).unwrap();
        let man = Manifest::decode(&man_bytes).unwrap();
        assert!(
            !man.placement.is_empty(),
            "an active placement must ride the manifest"
        );
        let pl = Placement::decode(&man.placement).unwrap();
        assert!(!pl.is_static() || pl.version() > 0);

        let rsnap = snap.clone().with_resume();
        let resumed = Fabric::run(Topology::new(2, 2), |mut h| {
            run_ft_rank_durable(&mut h, &cfg, Some(&rsnap))
        });
        for (i, (r, f)) in resumed.iter().zip(&full).enumerate() {
            assert_eq!(r.resumed_at_step, Some(8), "rank {i}");
            for s in 8..12 {
                assert_eq!(
                    r.loss_curve[s].to_bits(),
                    f.loss_curve[s].to_bits(),
                    "rank {i} step {s}: resume under the snapshotted placement diverged"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_gray_rank_is_demoted_and_training_completes() {
        // Rank 3 stays up and correct but every link touching it gets
        // 2 ms of latency — the gray failure a liveness probe misses.
        // The stall probes must read the shaping, the policy must demote
        // rank 3 to serving nothing (its expert migrates to a healthy
        // rank), and the run completes with nobody buried: gray handling
        // is *degradation*, not excommunication.
        let cfg = FtConfig::tiny(10)
            .with_seed(54)
            .with_placement_interval(2)
            .with_placement_gray_factor(4.0);
        let chaos = ChaosPlan::seeded(54).slow_rank(3, Duration::from_millis(2), 5.0);
        let plan = FaultPlan::seeded(54).with_recv_deadline(Duration::from_secs(2));
        let reports = Fabric::run_with_chaos_on(
            TransportKind::Channel,
            Topology::new(2, 2),
            chaos,
            Some(plan),
            |mut h| run_ft_rank(&mut h, &cfg),
        );
        for (r, rep) in reports.iter().enumerate() {
            assert_eq!(rep.died_at_step, None, "rank {r} died");
            assert!(
                rep.dead_ranks.is_empty(),
                "gray handling must bury nobody, rank {r} buried {:?}",
                rep.dead_ranks
            );
            assert!(rep.final_loss.is_finite());
            assert!(
                rep.placement_demotions > 0,
                "rank {r}: the gray rank must be demoted at some quantum"
            );
            assert!(
                rep.placement_migrations > 0,
                "rank {r}: the gray rank's expert must migrate off it"
            );
        }
    }

    #[test]
    fn a_mid_placement_kill_leaves_survivors_routing_and_completing() {
        // Rank 2 dies while placement quanta are in flight (the kill
        // index lands its death inside the protocol's message exchange
        // for some seed/cadence — and wherever it lands, the guarantee
        // is the same): survivors must abort or unwind any torn plan via
        // the burial reset and finish training on the static layout.
        let cfg = FtConfig::tiny(20)
            .with_seed(55)
            .with_placement_interval(2)
            .with_placement_hot_factor(1.05)
            .with_rejoin_check_every(0);
        let plan = FaultPlan::seeded(55)
            .kill_after(2, 90)
            .with_recv_deadline(Duration::from_secs(2));
        let reports =
            Fabric::run_with_faults(Topology::new(2, 2), plan, |mut h| run_ft_rank(&mut h, &cfg));
        let survivors: Vec<&FtReport> = reports
            .iter()
            .filter(|r| r.died_at_step.is_none())
            .collect();
        assert_eq!(survivors.len(), 3, "exactly rank 2 dies");
        for rep in &survivors {
            assert_eq!(rep.dead_ranks, vec![2]);
            assert!(rep.final_loss.is_finite());
            assert_eq!(
                rep.loss_curve.iter().filter(|l| l.is_finite()).count(),
                20,
                "every step must commit despite the torn quantum"
            );
        }
    }
}
