//! The paper's model zoo (Table 5) as cost/size descriptors.
//!
//! These models need 32 GPUs in the paper and cannot execute functionally
//! on one machine; what the benchmarks need is their *shape*: parameter
//! counts, per-GPU A2A payloads (Eq. 2), and FLOP volumes per layer. One
//! inconsistency in the printed table is resolved here and documented in
//! DESIGN.md: the BERT-Large-MoE row prints `M=1, k=32`, which contradicts
//! the paper's own notation and its quoted 524,288-byte per-peer A2A
//! message; we use `M=1024, H=4096, k=1` which reproduces both the ~6.4 B
//! parameter count and the quoted message size.

/// A Table 5 model configuration.
#[derive(Clone, Debug)]
pub struct MoeModelConfig {
    /// Model name (e.g. `"CT-MoE-12"`).
    pub name: String,
    /// The dense base model it was derived from.
    pub base_name: String,
    /// Number of transformer layers whose fflayer became an MoE layer.
    pub layers: usize,
    /// Embedding size `M`.
    pub model_dim: usize,
    /// Expert hidden size `H`.
    pub hidden_dim: usize,
    /// Top-k routing.
    pub k: usize,
    /// Total experts per MoE layer `E`.
    pub experts: usize,
    /// Capacity factor `f`.
    pub capacity_factor: f64,
    /// Tokens per GPU per step (`B × L`).
    pub tokens_per_gpu: usize,
    /// Sequence length `L` (attention cost scales with `tokens × L`).
    pub seq_len: usize,
    /// Vocabulary size assumed for embedding accounting.
    pub vocab: usize,
    /// The parameter count (millions) the paper quotes for the base model.
    pub paper_base_params_m: f64,
    /// The parameter count (millions) the paper quotes for the MoE model.
    pub paper_moe_params_m: f64,
}

impl MoeModelConfig {
    /// Transformer-MoE (wmt14_en_fr translation): E=8, k=1, B·L=4096.
    pub fn transformer_moe() -> Self {
        MoeModelConfig {
            name: "Transformer-MoE".into(),
            base_name: "Transformer".into(),
            layers: 12,
            model_dim: 512,
            hidden_dim: 2048,
            k: 1,
            experts: 8,
            capacity_factor: 1.0,
            tokens_per_gpu: 4096,
            seq_len: 512,
            vocab: 32_000,
            paper_base_params_m: 90.0,
            paper_moe_params_m: 403.0,
        }
    }

    /// GPT2-Tiny-MoE (wikitext-103): E=32, k=2.
    pub fn gpt2_tiny_moe() -> Self {
        MoeModelConfig {
            name: "GPT2-Tiny-MoE".into(),
            base_name: "GPT2-Tiny".into(),
            layers: 2,
            model_dim: 64,
            hidden_dim: 64,
            k: 2,
            experts: 32,
            capacity_factor: 1.0,
            tokens_per_gpu: 4 * 256,
            seq_len: 256,
            vocab: 50_000,
            paper_base_params_m: 32.0,
            paper_moe_params_m: 33.0,
        }
    }

    /// CT-MoE-x (the customizable transformer): E=32, k=1, B=136, L=31.
    pub fn ct_moe(layers: usize) -> Self {
        MoeModelConfig {
            name: format!("CT-MoE-{layers}"),
            base_name: "CusTransformer".into(),
            layers,
            model_dim: 512,
            hidden_dim: 512,
            k: 1,
            experts: 32,
            capacity_factor: 1.0,
            tokens_per_gpu: 136 * 31,
            seq_len: 31,
            vocab: 32_000,
            paper_base_params_m: 73.0 + 2.0 * (layers as f64 - 12.0),
            paper_moe_params_m: 403.0,
        }
    }

    /// BERT-Large-MoE (bookcorpus pretraining): ~6.4 B parameters.
    pub fn bert_large_moe() -> Self {
        MoeModelConfig {
            name: "BERT-Large-MoE".into(),
            base_name: "BERT-Large".into(),
            layers: 24,
            model_dim: 1024,
            hidden_dim: 4096,
            k: 1,
            experts: 32,
            capacity_factor: 1.0,
            // 4096 tokens at the phase-1 pretraining length of 512; the
            // printed Table 5 row (B=1, L=4096) is treated as the B×L
            // product, since full 4096-token attention alone would exceed
            // the paper's measured step time at fp32 peak FLOPs.
            tokens_per_gpu: 4096,
            seq_len: 512,
            vocab: 30_522,
            paper_base_params_m: 139.0,
            paper_moe_params_m: 6442.0,
        }
    }

    /// Assigned tokens per GPU per MoE layer after capacity padding
    /// (`f · k · B · L`).
    pub fn assigned_tokens(&self) -> usize {
        (self.capacity_factor * self.k as f64 * self.tokens_per_gpu as f64).ceil() as usize
    }

    /// Per-GPU A2A payload in bytes (Eq. 2, fp32).
    pub fn a2a_bytes(&self) -> u64 {
        self.assigned_tokens() as u64 * self.model_dim as u64 * 4
    }

    /// Parameters of one expert (two GEMMs + biases).
    pub fn expert_params(&self) -> u64 {
        (2 * self.model_dim * self.hidden_dim + self.model_dim + self.hidden_dim) as u64
    }

    /// Total MoE parameters across all layers and experts (plus gates).
    pub fn moe_params(&self) -> u64 {
        self.layers as u64
            * (self.experts as u64 * self.expert_params() + (self.model_dim * self.experts) as u64)
    }

    /// Approximate dense (non-expert) parameters: embeddings, attention,
    /// layer norms, and the LM head.
    pub fn dense_params(&self) -> u64 {
        let m = self.model_dim as u64;
        let per_layer = 4 * m * m + 4 * m /* attention */ + 4 * m /* norms */;
        2 * (self.vocab as u64 * m) + self.layers as u64 * per_layer
    }

    /// Total parameters of the MoE variant.
    pub fn total_params(&self) -> u64 {
        self.dense_params() + self.moe_params()
    }

    /// Forward FLOPs per GPU of one MoE layer's experts.
    pub fn expert_flops(&self) -> u64 {
        4 * self.assigned_tokens() as u64 * self.model_dim as u64 * self.hidden_dim as u64
    }

    /// Forward FLOPs per GPU of one layer's dense parts (attention
    /// projections + scores; gating).
    pub fn dense_flops(&self) -> u64 {
        let n = self.tokens_per_gpu as u64;
        let m = self.model_dim as u64;
        let l = self.seq_len as u64;
        // 4 projections, the two L-quadratic score/context GEMMs, and the
        // gate.
        8 * n * m * m + 4 * n * l * m + n * m * self.experts as u64
    }

    /// Per-GPU training-state bytes (params ×4: value/grad/Adam moments),
    /// with experts sharded across `world` GPUs.
    pub fn memory_per_gpu(&self, world: usize) -> u64 {
        let local_experts = self.experts.div_ceil(world);
        let expert_state = self.layers as u64 * local_experts as u64 * self.expert_params() * 16;
        let dense_state = self.dense_params() * 16;
        // Activations: a handful of `[tokens, M]` buffers per layer.
        let acts = self.layers as u64 * 8 * self.tokens_per_gpu as u64 * self.model_dim as u64 * 4;
        expert_state + dense_state + acts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_large_moe_matches_quoted_sizes() {
        let cfg = MoeModelConfig::bert_large_moe();
        // ~6.44 B parameters.
        let total = cfg.total_params() as f64 / 1e6;
        assert!(
            (total - 6442.0).abs() / 6442.0 < 0.1,
            "computed {total:.0} M vs paper 6442 M"
        );
        // Per-peer A2A message on 32 GPUs = 524,288 bytes (quoted in §6.3).
        assert_eq!(cfg.a2a_bytes() / 32, 524_288);
    }

    #[test]
    fn ct_moe_payload_is_about_8_6_mb() {
        let cfg = MoeModelConfig::ct_moe(12);
        let mb = cfg.a2a_bytes() as f64 / 1e6;
        assert!((mb - 8.63).abs() < 0.1, "payload {mb:.2} MB");
    }

    #[test]
    fn moe_params_dwarf_dense_params_for_ct_moe() {
        let cfg = MoeModelConfig::ct_moe(12);
        assert!(cfg.moe_params() > 3 * cfg.dense_params());
        // Roughly 200-420 M total.
        let total = cfg.total_params() as f64 / 1e6;
        assert!((150.0..450.0).contains(&total), "total {total:.0} M");
    }

    #[test]
    fn assigned_tokens_scale_with_f_and_k() {
        let mut cfg = MoeModelConfig::gpt2_tiny_moe();
        let base = cfg.assigned_tokens();
        cfg.capacity_factor = 1.5;
        assert_eq!(cfg.assigned_tokens(), (base as f64 * 1.5).ceil() as usize);
        assert_eq!(base, 2 * cfg.tokens_per_gpu); // k = 2
    }

    #[test]
    fn bert_memory_exceeds_what_three_gpus_could_hold() {
        let cfg = MoeModelConfig::bert_large_moe();
        let per_gpu = cfg.memory_per_gpu(32);
        // ~200 M expert params per GPU × 16 bytes ≈ 3.2 GB + dense state.
        assert!(per_gpu > 3 * (1u64 << 30), "per-GPU {per_gpu}");
        assert!(per_gpu < 11 * (1u64 << 30), "must fit the 2080 Ti");
    }
}
