//! Transformer-MoE models, synthetic datasets, and training loops.
//!
//! Two halves, mirroring the two substrates of the reproduction:
//!
//! * **Functional** — [`TransformerBlock`] and [`TinyMoeLm`] are real,
//!   trainable transformer language models (embedding, causal attention,
//!   MoE or dense feed-forward, tied loss) built on `schemoe-tensor`'s
//!   hand-written backward passes. [`data`] provides learnable synthetic
//!   tasks (regime-switching Markov language modelling; deterministic
//!   copy-translation) substituting for wikitext-103/wmt14, and
//!   [`Trainer`] runs the convergence experiments behind Table 6.
//! * **Configurational** — [`zoo`] encodes the paper's Table 5 model
//!   configurations (Transformer-MoE, GPT2-Tiny-MoE, CT-MoE-x,
//!   BERT-Large-MoE) as parameter-count and cost descriptors consumed by
//!   the performance simulator; these models are far too large to execute
//!   functionally on one machine, exactly as in the paper where they
//!   needed 32 GPUs.

pub mod block;
pub mod data;
pub mod ft;
pub mod lm;
pub mod trainer;
pub mod zoo;

pub use block::{FfnKind, TransformerBlock};
pub use data::{CopyTranslation, RegimeMarkov};
pub use ft::{
    buddy_of, run_ft_rank, run_ft_rank_durable, DomainMap, FtConfig, FtReport, SnapshotCfg,
};
pub use lm::{LmConfig, TinyMoeLm};
pub use trainer::{distributed_full_step, TrainReport, Trainer};
pub use zoo::MoeModelConfig;
