//! The transformer block: attention + (dense | MoE) feed-forward.

use rand::rngs::SmallRng;
use schemoe_moe::MoeLayer;
use schemoe_tensor::nn::{
    ActivationKind, FeedForward, LayerNorm, Module, MultiHeadAttention, Param,
};
use schemoe_tensor::Tensor;

/// The feed-forward half of a block: dense (the paper's "Base" models) or
/// mixture-of-experts (the paper's "-MoE" variants).
pub enum FfnKind {
    /// A single dense fflayer shared by all tokens.
    Dense(FeedForward),
    /// A sparsely activated MoE layer.
    Moe(MoeLayer),
}

impl FfnKind {
    fn as_module(&mut self) -> &mut dyn Module {
        match self {
            FfnKind::Dense(ff) => ff,
            FfnKind::Moe(moe) => moe,
        }
    }
}

/// A pre-norm transformer block:
/// `x + Attn(LN(x))` then `y + Ffn(LN(y))`.
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ffn: FfnKind,
}

impl TransformerBlock {
    /// Creates a block with a dense feed-forward.
    pub fn dense(
        model_dim: usize,
        hidden_dim: usize,
        heads: usize,
        seq_len: usize,
        rng: &mut SmallRng,
    ) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(model_dim),
            attn: MultiHeadAttention::new(model_dim, heads, seq_len, rng),
            ln2: LayerNorm::new(model_dim),
            ffn: FfnKind::Dense(FeedForward::new(
                model_dim,
                hidden_dim,
                ActivationKind::Gelu,
                rng,
            )),
        }
    }

    /// Creates a block whose feed-forward is an MoE layer.
    #[allow(clippy::too_many_arguments)]
    pub fn moe(
        model_dim: usize,
        hidden_dim: usize,
        heads: usize,
        seq_len: usize,
        experts: usize,
        k: usize,
        capacity_factor: f64,
        rng: &mut SmallRng,
    ) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(model_dim),
            attn: MultiHeadAttention::new(model_dim, heads, seq_len, rng),
            ln2: LayerNorm::new(model_dim),
            ffn: FfnKind::Moe(MoeLayer::new(
                model_dim,
                hidden_dim,
                experts,
                k,
                capacity_factor,
                rng,
            )),
        }
    }

    /// Replaces the feed-forward half (e.g. to inject a compressing MoE).
    pub fn with_ffn(mut self, ffn: FfnKind) -> Self {
        self.ffn = ffn;
        self
    }

    /// Access to the feed-forward half.
    pub fn ffn(&self) -> &FfnKind {
        &self.ffn
    }

    /// Mutable access to the feed-forward half (used to attach codecs).
    pub fn ffn_mut(&mut self) -> &mut FfnKind {
        &mut self.ffn
    }
}

impl Module for TransformerBlock {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        // Attention sub-block with residual.
        let h = self.ln1.forward(x);
        let a = self.attn.forward(&h);
        let mut y = x.clone();
        y.add_assign(&a).expect("residual shapes match");
        // Feed-forward sub-block with residual.
        let h2 = self.ln2.forward(&y);
        let f = self.ffn.as_module().forward(&h2);
        let mut out = y;
        out.add_assign(&f).expect("residual shapes match");
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        // Feed-forward residual: d(out) flows both directly and through ffn.
        let df = self.ffn.as_module().backward(dy);
        let dln2 = self.ln2.backward(&df);
        let mut d_mid = dy.clone();
        d_mid.add_assign(&dln2).expect("residual shapes match");
        // Attention residual.
        let da = self.attn.backward(&d_mid);
        let dln1 = self.ln1.backward(&da);
        let mut dx = d_mid;
        dx.add_assign(&dln1).expect("residual shapes match");
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.ffn.as_module().visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_tensor::grad_check::check_module_gradients;
    use schemoe_tensor::rng::{self, seeded};

    #[test]
    fn dense_block_shapes_round_trip() {
        let mut b = TransformerBlock::dense(8, 16, 2, 4, &mut seeded(11));
        let x = rng::uniform(&[8, 8], 0.5, &mut seeded(12));
        let y = b.forward(&x);
        assert_eq!(y.dims(), &[8, 8]);
        let dx = b.backward(&Tensor::ones(&[8, 8]));
        assert_eq!(dx.dims(), &[8, 8]);
    }

    #[test]
    fn dense_block_gradients_match_finite_differences() {
        let mut b = TransformerBlock::dense(4, 6, 2, 3, &mut seeded(13));
        let x = rng::uniform(&[3, 4], 0.3, &mut seeded(14));
        check_module_gradients(&mut b, &x, 8e-2);
    }

    #[test]
    fn moe_block_runs_and_is_finite() {
        let mut b = TransformerBlock::moe(8, 16, 2, 4, 4, 2, 4.0, &mut seeded(15));
        let x = rng::uniform(&[8, 8], 0.5, &mut seeded(16));
        let y = b.forward(&x);
        assert!(y.all_finite());
        let dx = b.backward(&y);
        assert!(dx.all_finite());
    }

    #[test]
    fn moe_block_has_more_params_than_dense() {
        let mut dense = TransformerBlock::dense(8, 16, 2, 4, &mut seeded(17));
        let mut moe = TransformerBlock::moe(8, 16, 2, 4, 4, 2, 1.0, &mut seeded(17));
        assert!(moe.num_params() > dense.num_params());
    }

    #[test]
    fn residual_preserves_input_information() {
        // Zeroing all block weights must make the block an identity.
        let mut b = TransformerBlock::dense(4, 8, 1, 2, &mut seeded(18));
        b.visit_params(&mut |p| {
            // Keep layer-norm gamma at zero too: then LN output is zero and
            // both sub-functions vanish, leaving the residual path.
            for v in p.value.data_mut() {
                *v = 0.0;
            }
        });
        let x = rng::uniform(&[2, 4], 1.0, &mut seeded(19));
        let y = b.forward(&x);
        assert!(y.max_abs_diff(&x).unwrap() < 1e-6);
    }
}
