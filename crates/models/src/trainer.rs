//! Training loops and metrics for the convergence experiments.

use rand::rngs::SmallRng;
use schemoe_cluster::{FabricError, RankHandle};
use schemoe_moe::{DistributedMoeLayer, GradAllreduce};
use schemoe_obs as obs;
use schemoe_tensor::optim::Adam;
use schemoe_tensor::rng::seeded;
use schemoe_tensor::Tensor;

use crate::data::{CopyTranslation, RegimeMarkov};
use crate::ft::ALLREDUCE_LANE;
use crate::lm::TinyMoeLm;

/// One whole distributed training step on an expert-parallel MoE layer:
/// forward, then backward with the replicated-gradient allreduce folded
/// into the backward task graph. At partition degrees > 1 both passes run
/// the chunked pipeline and the allreduce overlaps the backward
/// all-to-alls on the communication worker; at degree 1 everything runs
/// serially. The result is bit-identical at every degree.
///
/// The upstream gradient is the forward output itself (the `loss =
/// ½‖y‖²` convention the bit-identity tests and benchmarks use), so the
/// step is self-contained. `replicated` stands in for replicated-module
/// gradients: it must hold final values at call time and holds the
/// live-rank sum on return, reduced on the [`ALLREDUCE_LANE`] of this
/// step's tag window. Returns `(y, dx)`.
pub fn distributed_full_step(
    h: &mut RankHandle,
    layer: &mut DistributedMoeLayer,
    x: &Tensor,
    tag: u64,
    replicated: &mut [f32],
    live: &[bool],
) -> Result<(Tensor, Tensor), FabricError> {
    let y = layer.forward(h, x, tag)?;
    let dx = layer.backward_with_allreduce(
        h,
        &y,
        Some(GradAllreduce {
            values: replicated,
            tag: tag + ALLREDUCE_LANE,
            live,
        }),
    )?;
    Ok((y, dx))
}

/// Metrics from one training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean training loss (nats) over the last eval window.
    pub final_loss: f32,
    /// Validation perplexity (`exp` of held-out cross-entropy).
    pub val_perplexity: f32,
    /// BLEU-proxy target accuracy on held-out copy-translation data, when
    /// the run used that task.
    pub bleu_proxy: Option<f32>,
    /// Loss at a few checkpoints for convergence-curve inspection.
    pub loss_curve: Vec<f32>,
}

/// Drives a [`TinyMoeLm`] on a synthetic task with Adam.
pub struct Trainer {
    /// Adam learning rate.
    pub lr: f32,
    /// Sequences per step.
    pub batch: usize,
    /// Optimization steps.
    pub steps: usize,
    /// Held-out sequences for validation.
    pub val_batch: usize,
    /// Data/sampling seed (distinct from the model seed).
    pub data_seed: u64,
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer {
            lr: 3e-3,
            batch: 16,
            steps: 300,
            val_batch: 64,
            data_seed: 99,
        }
    }
}

impl Trainer {
    /// Trains on the regime-Markov language-modelling task and reports
    /// validation perplexity.
    pub fn run_markov(&self, lm: &mut TinyMoeLm, data: &RegimeMarkov) -> TrainReport {
        let t = lm.config().seq_len;
        let mut rng = seeded(self.data_seed);
        let mut opt = Adam::new(self.lr).with_grad_clip(1.0);
        let mut curve = Vec::new();
        let mut window = Vec::new();
        for step in 0..self.steps {
            let _step_span = obs::span("step", format!("step{step}"));
            let tokens = data.sample_batch(self.batch, t, &mut rng);
            let loss = {
                let _s = obs::span("forward", "forward");
                lm.loss_on(&tokens)
            };
            {
                let _s = obs::span("backward", "backward");
                lm.backward();
            }
            {
                let _s = obs::span("optimizer", "adam");
                opt.step_params(&mut |f| lm.visit_params(f));
            }
            window.push(loss);
            if (step + 1) % (self.steps / 10).max(1) == 0 {
                curve.push(window.iter().sum::<f32>() / window.len() as f32);
                window.clear();
            }
        }
        let final_loss = *curve.last().unwrap_or(&f32::NAN);
        // Held-out evaluation with a fixed seed so every codec variant
        // sees the same validation set.
        let mut val_rng = seeded(self.data_seed + 1_000_000);
        let val_tokens = data.sample_batch(self.val_batch, t, &mut val_rng);
        let val_loss = lm.loss_on(&val_tokens);
        TrainReport {
            final_loss,
            val_perplexity: val_loss.exp(),
            bleu_proxy: None,
            loss_curve: curve,
        }
    }

    /// Trains on copy-translation and reports the BLEU-proxy target
    /// accuracy.
    pub fn run_translation(&self, lm: &mut TinyMoeLm, data: &CopyTranslation) -> TrainReport {
        assert_eq!(
            lm.config().seq_len,
            data.seq_len(),
            "model seq_len must match the task"
        );
        let mut rng = seeded(self.data_seed);
        let mut opt = Adam::new(self.lr).with_grad_clip(1.0);
        let mut curve = Vec::new();
        let mut window = Vec::new();
        for step in 0..self.steps {
            let _step_span = obs::span("step", format!("step{step}"));
            let tokens = data.sample_batch(self.batch, &mut rng);
            let loss = {
                let _s = obs::span("forward", "forward");
                lm.loss_on(&tokens)
            };
            {
                let _s = obs::span("backward", "backward");
                lm.backward();
            }
            {
                let _s = obs::span("optimizer", "adam");
                opt.step_params(&mut |f| lm.visit_params(f));
            }
            window.push(loss);
            if (step + 1) % (self.steps / 10).max(1) == 0 {
                curve.push(window.iter().sum::<f32>() / window.len() as f32);
                window.clear();
            }
        }
        let final_loss = *curve.last().unwrap_or(&f32::NAN);
        let mut val_rng = seeded(self.data_seed + 1_000_000);
        let mut acc_sum = 0.0f32;
        let val_loss = {
            let val_tokens = data.sample_batch(self.val_batch, &mut val_rng);
            lm.loss_on(&val_tokens)
        };
        let mut eval_rng: SmallRng = seeded(self.data_seed + 2_000_000);
        let eval_seqs = 32;
        for _ in 0..eval_seqs {
            let seq = data.sample(&mut eval_rng);
            let preds = lm.greedy_predictions(&seq);
            acc_sum += data.target_accuracy(&seq, &preds[..seq.len() - 1]);
        }
        TrainReport {
            final_loss,
            val_perplexity: val_loss.exp(),
            bleu_proxy: Some(acc_sum / eval_seqs as f32),
            loss_curve: curve,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::LmConfig;
    use schemoe_cluster::{Fabric, Topology};
    use schemoe_collectives::NcclA2A;
    use schemoe_compression::NoCompression;
    use schemoe_moe::{Expert, FfExpert, TopKGate};
    use schemoe_tensor::rng;

    #[test]
    fn full_step_is_bit_identical_across_degrees() {
        let topo = Topology::new(1, 2);
        let p = topo.world_size();
        let (m, n_local) = (6, 5);
        let x_global = rng::uniform(&[n_local * p, m], 0.7, &mut seeded(31));
        let run = |degree: usize| {
            Fabric::run(topo, |mut h| {
                let me = h.rank();
                let gate = TopKGate::new(m, p, 2, 8.0, &mut seeded(555));
                let experts: Vec<Box<dyn Expert>> = vec![Box::new(FfExpert::new(
                    m,
                    10,
                    &mut seeded(1000 + me as u64),
                ))];
                let mut layer = DistributedMoeLayer::new(
                    gate,
                    experts,
                    Box::new(NoCompression),
                    Box::new(NcclA2A),
                )
                .with_partition_degree(degree);
                let mut x = schemoe_tensor::Tensor::zeros(&[n_local, m]);
                for r in 0..n_local {
                    x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
                }
                let live = vec![true; p];
                let mut replicated: Vec<f32> = (0..16).map(|i| (me * 16 + i) as f32).collect();
                let (y, dx) =
                    distributed_full_step(&mut h, &mut layer, &x, 0, &mut replicated, &live)
                        .unwrap();
                (y, dx, replicated)
            })
        };
        let serial = run(1);
        let overlapped = run(4);
        for me in 0..p {
            assert_eq!(
                overlapped[me].0.max_abs_diff(&serial[me].0).unwrap(),
                0.0,
                "rank {me} forward diverged"
            );
            assert_eq!(
                overlapped[me].1.max_abs_diff(&serial[me].1).unwrap(),
                0.0,
                "rank {me} dx diverged"
            );
            assert_eq!(
                overlapped[me].2, serial[me].2,
                "rank {me} reduced values diverged"
            );
        }
    }

    #[test]
    fn markov_training_beats_uniform() {
        let data = RegimeMarkov::new(16, 2, &mut seeded(50));
        let cfg = LmConfig::small(16, 12);
        let mut lm = TinyMoeLm::new(cfg, &mut seeded(51));
        let trainer = Trainer {
            steps: 150,
            ..Default::default()
        };
        let report = trainer.run_markov(&mut lm, &data);
        let uniform_ppl = 16.0;
        assert!(
            report.val_perplexity < uniform_ppl * 0.8,
            "perplexity {} should beat uniform {}",
            report.val_perplexity,
            uniform_ppl
        );
        assert_eq!(report.loss_curve.len(), 10);
        // The curve trends down.
        assert!(report.loss_curve.last().unwrap() < report.loss_curve.first().unwrap());
    }

    #[test]
    fn translation_training_learns_the_mapping() {
        let data = CopyTranslation::new(12, 5, &mut seeded(52));
        let cfg = LmConfig::small(data.total_vocab(), data.seq_len());
        let mut lm = TinyMoeLm::new(cfg, &mut seeded(53));
        let trainer = Trainer {
            steps: 250,
            ..Default::default()
        };
        let report = trainer.run_translation(&mut lm, &data);
        let acc = report.bleu_proxy.unwrap();
        // Chance is 1/12 ≈ 0.083; the mapping is learnable well beyond it.
        assert!(acc > 0.3, "target accuracy {acc} barely above chance");
    }
}
