//! Training loops and metrics for the convergence experiments.

use rand::rngs::SmallRng;
use schemoe_obs as obs;
use schemoe_tensor::optim::Adam;
use schemoe_tensor::rng::seeded;

use crate::data::{CopyTranslation, RegimeMarkov};
use crate::lm::TinyMoeLm;

/// Metrics from one training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean training loss (nats) over the last eval window.
    pub final_loss: f32,
    /// Validation perplexity (`exp` of held-out cross-entropy).
    pub val_perplexity: f32,
    /// BLEU-proxy target accuracy on held-out copy-translation data, when
    /// the run used that task.
    pub bleu_proxy: Option<f32>,
    /// Loss at a few checkpoints for convergence-curve inspection.
    pub loss_curve: Vec<f32>,
}

/// Drives a [`TinyMoeLm`] on a synthetic task with Adam.
pub struct Trainer {
    /// Adam learning rate.
    pub lr: f32,
    /// Sequences per step.
    pub batch: usize,
    /// Optimization steps.
    pub steps: usize,
    /// Held-out sequences for validation.
    pub val_batch: usize,
    /// Data/sampling seed (distinct from the model seed).
    pub data_seed: u64,
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer {
            lr: 3e-3,
            batch: 16,
            steps: 300,
            val_batch: 64,
            data_seed: 99,
        }
    }
}

impl Trainer {
    /// Trains on the regime-Markov language-modelling task and reports
    /// validation perplexity.
    pub fn run_markov(&self, lm: &mut TinyMoeLm, data: &RegimeMarkov) -> TrainReport {
        let t = lm.config().seq_len;
        let mut rng = seeded(self.data_seed);
        let mut opt = Adam::new(self.lr).with_grad_clip(1.0);
        let mut curve = Vec::new();
        let mut window = Vec::new();
        for step in 0..self.steps {
            let _step_span = obs::span("step", format!("step{step}"));
            let tokens = data.sample_batch(self.batch, t, &mut rng);
            let loss = {
                let _s = obs::span("forward", "forward");
                lm.loss_on(&tokens)
            };
            {
                let _s = obs::span("backward", "backward");
                lm.backward();
            }
            {
                let _s = obs::span("optimizer", "adam");
                opt.step_params(&mut |f| lm.visit_params(f));
            }
            window.push(loss);
            if (step + 1) % (self.steps / 10).max(1) == 0 {
                curve.push(window.iter().sum::<f32>() / window.len() as f32);
                window.clear();
            }
        }
        let final_loss = *curve.last().unwrap_or(&f32::NAN);
        // Held-out evaluation with a fixed seed so every codec variant
        // sees the same validation set.
        let mut val_rng = seeded(self.data_seed + 1_000_000);
        let val_tokens = data.sample_batch(self.val_batch, t, &mut val_rng);
        let val_loss = lm.loss_on(&val_tokens);
        TrainReport {
            final_loss,
            val_perplexity: val_loss.exp(),
            bleu_proxy: None,
            loss_curve: curve,
        }
    }

    /// Trains on copy-translation and reports the BLEU-proxy target
    /// accuracy.
    pub fn run_translation(&self, lm: &mut TinyMoeLm, data: &CopyTranslation) -> TrainReport {
        assert_eq!(
            lm.config().seq_len,
            data.seq_len(),
            "model seq_len must match the task"
        );
        let mut rng = seeded(self.data_seed);
        let mut opt = Adam::new(self.lr).with_grad_clip(1.0);
        let mut curve = Vec::new();
        let mut window = Vec::new();
        for step in 0..self.steps {
            let _step_span = obs::span("step", format!("step{step}"));
            let tokens = data.sample_batch(self.batch, &mut rng);
            let loss = {
                let _s = obs::span("forward", "forward");
                lm.loss_on(&tokens)
            };
            {
                let _s = obs::span("backward", "backward");
                lm.backward();
            }
            {
                let _s = obs::span("optimizer", "adam");
                opt.step_params(&mut |f| lm.visit_params(f));
            }
            window.push(loss);
            if (step + 1) % (self.steps / 10).max(1) == 0 {
                curve.push(window.iter().sum::<f32>() / window.len() as f32);
                window.clear();
            }
        }
        let final_loss = *curve.last().unwrap_or(&f32::NAN);
        let mut val_rng = seeded(self.data_seed + 1_000_000);
        let mut acc_sum = 0.0f32;
        let val_loss = {
            let val_tokens = data.sample_batch(self.val_batch, &mut val_rng);
            lm.loss_on(&val_tokens)
        };
        let mut eval_rng: SmallRng = seeded(self.data_seed + 2_000_000);
        let eval_seqs = 32;
        for _ in 0..eval_seqs {
            let seq = data.sample(&mut eval_rng);
            let preds = lm.greedy_predictions(&seq);
            acc_sum += data.target_accuracy(&seq, &preds[..seq.len() - 1]);
        }
        TrainReport {
            final_loss,
            val_perplexity: val_loss.exp(),
            bleu_proxy: Some(acc_sum / eval_seqs as f32),
            loss_curve: curve,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::LmConfig;

    #[test]
    fn markov_training_beats_uniform() {
        let data = RegimeMarkov::new(16, 2, &mut seeded(50));
        let cfg = LmConfig::small(16, 12);
        let mut lm = TinyMoeLm::new(cfg, &mut seeded(51));
        let trainer = Trainer {
            steps: 150,
            ..Default::default()
        };
        let report = trainer.run_markov(&mut lm, &data);
        let uniform_ppl = 16.0;
        assert!(
            report.val_perplexity < uniform_ppl * 0.8,
            "perplexity {} should beat uniform {}",
            report.val_perplexity,
            uniform_ppl
        );
        assert_eq!(report.loss_curve.len(), 10);
        // The curve trends down.
        assert!(report.loss_curve.last().unwrap() < report.loss_curve.first().unwrap());
    }

    #[test]
    fn translation_training_learns_the_mapping() {
        let data = CopyTranslation::new(12, 5, &mut seeded(52));
        let cfg = LmConfig::small(data.total_vocab(), data.seq_len());
        let mut lm = TinyMoeLm::new(cfg, &mut seeded(53));
        let trainer = Trainer {
            steps: 250,
            ..Default::default()
        };
        let report = trainer.run_translation(&mut lm, &data);
        let acc = report.bleu_proxy.unwrap();
        // Chance is 1/12 ≈ 0.083; the mapping is learnable well beyond it.
        assert!(acc > 0.3, "target accuracy {acc} barely above chance");
    }
}
