//! A small trainable causal language model with MoE or dense blocks.

use rand::rngs::SmallRng;
use schemoe_compression::Compressor;
use schemoe_tensor::nn::{Embedding, LayerNorm, Linear, Module, Param, SoftmaxCrossEntropy};
use schemoe_tensor::Tensor;

use crate::block::{FfnKind, TransformerBlock};

/// Architecture of a [`TinyMoeLm`].
#[derive(Clone, Debug)]
pub struct LmConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model (embedding) dimension `M`.
    pub model_dim: usize,
    /// Feed-forward hidden dimension `H`.
    pub hidden_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length `L`.
    pub seq_len: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Experts per MoE layer (`None` = dense "Base" model).
    pub experts: Option<usize>,
    /// Top-k routing.
    pub k: usize,
    /// Capacity factor `f`.
    pub capacity_factor: f64,
}

impl LmConfig {
    /// A small default suitable for convergence experiments.
    pub fn small(vocab: usize, seq_len: usize) -> Self {
        LmConfig {
            vocab,
            model_dim: 32,
            hidden_dim: 64,
            heads: 2,
            seq_len,
            layers: 2,
            experts: None,
            k: 2,
            capacity_factor: 2.0,
        }
    }

    /// Switches the feed-forward layers to MoE with `experts` experts.
    pub fn with_experts(mut self, experts: usize) -> Self {
        self.experts = Some(experts);
        self
    }
}

/// A causal LM: token + position embeddings, transformer blocks, final
/// layer norm, output head, fused softmax cross-entropy.
pub struct TinyMoeLm {
    config: LmConfig,
    embed: Embedding,
    pos_embed: Embedding,
    blocks: Vec<TransformerBlock>,
    ln_f: LayerNorm,
    head: Linear,
    loss: SoftmaxCrossEntropy,
    cache_rows: usize,
}

impl TinyMoeLm {
    /// Builds the model from a config and a seeded RNG.
    pub fn new(config: LmConfig, rng: &mut SmallRng) -> Self {
        let blocks = (0..config.layers)
            .map(|_| match config.experts {
                Some(e) => TransformerBlock::moe(
                    config.model_dim,
                    config.hidden_dim,
                    config.heads,
                    config.seq_len,
                    e,
                    config.k,
                    config.capacity_factor,
                    rng,
                ),
                None => TransformerBlock::dense(
                    config.model_dim,
                    config.hidden_dim,
                    config.heads,
                    config.seq_len,
                    rng,
                ),
            })
            .collect();
        TinyMoeLm {
            embed: Embedding::new(config.vocab, config.model_dim, rng),
            pos_embed: Embedding::new(config.seq_len, config.model_dim, rng),
            blocks,
            ln_f: LayerNorm::new(config.model_dim),
            head: Linear::new(config.model_dim, config.vocab, rng),
            loss: SoftmaxCrossEntropy::new(),
            cache_rows: 0,
            config,
        }
    }

    /// The architecture config.
    pub fn config(&self) -> &LmConfig {
        &self.config
    }

    /// Routes every MoE layer's dispatch/combine through `codec`
    /// (convergence-under-compression experiments).
    pub fn set_compressor(&mut self, codec: impl Fn() -> Box<dyn Compressor>) {
        for b in &mut self.blocks {
            if let FfnKind::Moe(_) = b.ffn() {
                // Rebuild the ffn with the codec attached: MoeLayer owns its
                // compressor, so we swap through a take-and-replace.
                take_ffn(b, &codec);
            }
        }
    }

    /// Runs the model on a flat `[batch * seq_len]` token slice and
    /// returns logits `[rows, vocab]`.
    ///
    /// # Panics
    ///
    /// Panics if the token count is not a multiple of the sequence length.
    pub fn logits(&mut self, tokens: &[usize]) -> Tensor {
        let t = self.config.seq_len;
        assert!(
            tokens.len().is_multiple_of(t) && !tokens.is_empty(),
            "token count {} must be a positive multiple of seq_len {t}",
            tokens.len()
        );
        let rows = tokens.len();
        let batch = rows / t;
        let mut x = self.embed.forward(tokens);
        let positions: Vec<usize> = (0..rows).map(|i| i % t).collect();
        let pos = self.pos_embed.forward(&positions);
        x.add_assign(&pos).expect("same shape");
        let _ = batch;
        for b in &mut self.blocks {
            x = b.forward(&x);
        }
        let h = self.ln_f.forward(&x);
        self.cache_rows = rows;
        self.head.forward(&h)
    }

    /// Forward + loss on a next-token objective; returns mean
    /// cross-entropy in nats.
    ///
    /// Targets are `tokens` shifted by one within each sequence; the final
    /// position of each sequence predicts the first token of the same
    /// sequence (a circular shift), keeping every row supervised.
    pub fn loss_on(&mut self, tokens: &[usize]) -> f32 {
        let logits = self.logits(tokens);
        let targets = self.shifted_targets(tokens);
        self.loss.forward(&logits, &targets)
    }

    /// Backpropagates the most recent [`Self::loss_on`].
    pub fn backward(&mut self) {
        let dlogits = self.loss.backward();
        let dh = self.head.backward(&dlogits);
        let mut dx = self.ln_f.backward(&dh);
        for b in self.blocks.iter_mut().rev() {
            dx = b.backward(&dx);
        }
        // Position and token embeddings both received x; gradient splits.
        self.pos_embed.backward(&dx);
        self.embed.backward(&dx);
    }

    /// Greedy next-token predictions for each position.
    pub fn greedy_predictions(&mut self, tokens: &[usize]) -> Vec<usize> {
        self.logits(tokens).argmax_rows().expect("rank-2 logits")
    }

    fn shifted_targets(&self, tokens: &[usize]) -> Vec<usize> {
        let t = self.config.seq_len;
        let mut targets = Vec::with_capacity(tokens.len());
        for seq in tokens.chunks(t) {
            for i in 0..t {
                targets.push(seq[(i + 1) % t]);
            }
        }
        targets
    }

    /// Total learnable parameters.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Visits every learnable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embed.visit_params(f);
        self.pos_embed.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

/// Swaps a block's MoE ffn for one with a compressor attached, preserving
/// parameters.
fn take_ffn(block: &mut TransformerBlock, codec: &impl Fn() -> Box<dyn Compressor>) {
    // MoeLayer has no parameter-preserving clone; instead we wrap by
    // rebuilding with the same boxed value. We temporarily replace the ffn
    // with a zero-size dense layer to take ownership.
    use schemoe_tensor::nn::ActivationKind;
    use schemoe_tensor::rng::seeded;
    let placeholder = FfnKind::Dense(schemoe_tensor::nn::FeedForward::new(
        1,
        1,
        ActivationKind::Relu,
        &mut seeded(0),
    ));
    let old = std::mem::replace(block_ffn_mut(block), placeholder);
    let new = match old {
        FfnKind::Moe(moe) => FfnKind::Moe(moe.with_compressor(codec())),
        dense => dense,
    };
    *block_ffn_mut(block) = new;
}

fn block_ffn_mut(block: &mut TransformerBlock) -> &mut FfnKind {
    // TransformerBlock keeps ffn private; expose a crate-internal accessor.
    block.ffn_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_compression::Fp16Compressor;
    use schemoe_tensor::optim::Adam;
    use schemoe_tensor::rng::seeded;

    fn toy_tokens(n_seq: usize, t: usize) -> Vec<usize> {
        (0..n_seq * t).map(|i| (i * 7 + 3) % 16).collect()
    }

    #[test]
    fn logits_shape_is_rows_by_vocab() {
        let cfg = LmConfig::small(16, 8);
        let mut lm = TinyMoeLm::new(cfg, &mut seeded(21));
        let logits = lm.logits(&toy_tokens(3, 8));
        assert_eq!(logits.dims(), &[24, 16]);
    }

    #[test]
    fn initial_loss_is_near_uniform() {
        let cfg = LmConfig::small(16, 8);
        let mut lm = TinyMoeLm::new(cfg, &mut seeded(22));
        let loss = lm.loss_on(&toy_tokens(4, 8));
        let uniform = (16.0f32).ln();
        // Random init sits near (a bit above) the uniform baseline; far
        // above would mean saturated logits, far below would mean leakage.
        assert!(
            loss > uniform - 0.5 && loss < uniform + 1.5,
            "loss {loss} implausible vs ln(16)={uniform}"
        );
    }

    #[test]
    fn a_few_steps_reduce_loss_on_a_fixed_batch() {
        let cfg = LmConfig::small(16, 8).with_experts(4);
        let mut lm = TinyMoeLm::new(cfg, &mut seeded(23));
        let tokens = toy_tokens(4, 8);
        let mut opt = Adam::new(3e-3);
        let first = lm.loss_on(&tokens);
        lm.backward();
        opt.step_params(&mut |f| lm.visit_params(f));
        let mut last = first;
        for _ in 0..30 {
            last = lm.loss_on(&tokens);
            lm.backward();
            opt.step_params(&mut |f| lm.visit_params(f));
        }
        assert!(
            last < first - 0.3,
            "loss should fall on a memorizable batch: {first} -> {last}"
        );
    }

    #[test]
    fn compressor_injection_keeps_model_functional() {
        let cfg = LmConfig::small(16, 8).with_experts(4);
        let mut lm = TinyMoeLm::new(cfg, &mut seeded(24));
        lm.set_compressor(|| Box::new(Fp16Compressor));
        let loss = lm.loss_on(&toy_tokens(2, 8));
        assert!(loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "multiple of seq_len")]
    fn ragged_batch_is_rejected() {
        let cfg = LmConfig::small(16, 8);
        let mut lm = TinyMoeLm::new(cfg, &mut seeded(25));
        lm.logits(&[1, 2, 3]);
    }
}
