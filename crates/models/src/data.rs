//! Learnable synthetic datasets substituting for the paper's corpora.
//!
//! The paper's convergence study (Table 6) uses wikitext-103 (language
//! modelling, perplexity) and wmt14_en_fr (translation, BLEU) — hundreds
//! of gigabytes of licensed text that are not available offline. These
//! substitutes exercise the same learning dynamics:
//!
//! * [`RegimeMarkov`] — sequences drawn from one of `R` hidden Markov
//!   transition regimes. A model must infer the regime from context, which
//!   is exactly the kind of conditional structure experts specialize on;
//!   the task has a computable entropy floor, making perplexity
//!   interpretable.
//! * [`CopyTranslation`] — `src SEP translated(src)` sequences where the
//!   "translation" is a fixed token bijection. Token accuracy on the
//!   target half is reported as a BLEU-like proxy (unigram precision on a
//!   forced alignment).

use rand::rngs::SmallRng;
use rand::Rng;

/// Sequences from a mixture of Markov chains ("regimes").
pub struct RegimeMarkov {
    vocab: usize,
    /// Per regime: row-stochastic transition matrix `[vocab][vocab]`.
    transitions: Vec<Vec<Vec<f32>>>,
}

impl RegimeMarkov {
    /// Builds `regimes` random peaked transition matrices over `vocab`
    /// tokens.
    ///
    /// Each row concentrates ~90% of its mass on a few successors, so the
    /// chain is predictable once the regime is known.
    pub fn new(vocab: usize, regimes: usize, rng: &mut SmallRng) -> Self {
        assert!(vocab >= 4, "vocab too small");
        assert!(regimes >= 1, "at least one regime");
        let mut transitions = Vec::with_capacity(regimes);
        for _ in 0..regimes {
            let mut matrix = Vec::with_capacity(vocab);
            for _ in 0..vocab {
                let mut row = vec![0.0f32; vocab];
                // Three favoured successors get 0.6/0.2/0.1; the remaining
                // 0.1 spreads uniformly.
                let favoured: Vec<usize> = (0..3).map(|_| rng.gen_range(0..vocab)).collect();
                for v in row.iter_mut() {
                    *v = 0.1 / vocab as f32;
                }
                row[favoured[0]] += 0.6;
                row[favoured[1]] += 0.2;
                row[favoured[2]] += 0.1;
                let sum: f32 = row.iter().sum();
                for v in row.iter_mut() {
                    *v /= sum;
                }
                matrix.push(row);
            }
            transitions.push(matrix);
        }
        RegimeMarkov { vocab, transitions }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Number of regimes.
    pub fn regimes(&self) -> usize {
        self.transitions.len()
    }

    /// Samples one sequence of `len` tokens from a random regime.
    pub fn sample(&self, len: usize, rng: &mut SmallRng) -> Vec<usize> {
        let regime = &self.transitions[rng.gen_range(0..self.transitions.len())];
        let mut seq = Vec::with_capacity(len);
        let mut cur = rng.gen_range(0..self.vocab);
        seq.push(cur);
        for _ in 1..len {
            let row = &regime[cur];
            let mut u: f32 = rng.gen_range(0.0..1.0);
            let mut next = self.vocab - 1;
            for (j, &p) in row.iter().enumerate() {
                if u < p {
                    next = j;
                    break;
                }
                u -= p;
            }
            seq.push(next);
            cur = next;
        }
        seq
    }

    /// Samples a batch of sequences, flattened row-major `[batch * len]`.
    pub fn sample_batch(&self, batch: usize, len: usize, rng: &mut SmallRng) -> Vec<usize> {
        let mut out = Vec::with_capacity(batch * len);
        for _ in 0..batch {
            out.extend(self.sample(len, rng));
        }
        out
    }

    /// The per-token entropy (nats) of a single regime's stationary
    /// behaviour, approximated by the mean row entropy — a lower bound on
    /// achievable cross-entropy for a regime-aware model.
    pub fn entropy_floor(&self) -> f32 {
        let mut h = 0.0f32;
        let mut rows = 0usize;
        for regime in &self.transitions {
            for row in regime {
                h -= row
                    .iter()
                    .map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 })
                    .sum::<f32>();
                rows += 1;
            }
        }
        h / rows as f32
    }
}

/// Deterministic copy-translation sequences: `src.. SEP map(src)..`.
pub struct CopyTranslation {
    vocab: usize,
    src_len: usize,
    /// The token bijection playing the role of a translation table.
    mapping: Vec<usize>,
}

impl CopyTranslation {
    /// Builds the task over `vocab` content tokens (one extra id, `vocab`,
    /// is reserved as the separator).
    pub fn new(vocab: usize, src_len: usize, rng: &mut SmallRng) -> Self {
        assert!(vocab >= 2, "vocab too small");
        // A random bijection via Fisher-Yates.
        let mut mapping: Vec<usize> = (0..vocab).collect();
        for i in (1..vocab).rev() {
            let j = rng.gen_range(0..=i);
            mapping.swap(i, j);
        }
        CopyTranslation {
            vocab,
            src_len,
            mapping,
        }
    }

    /// Content vocabulary size (the separator id is `vocab`).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Total vocabulary including the separator token.
    pub fn total_vocab(&self) -> usize {
        self.vocab + 1
    }

    /// The separator token id.
    pub fn sep(&self) -> usize {
        self.vocab
    }

    /// Sequence length produced by [`Self::sample`].
    pub fn seq_len(&self) -> usize {
        2 * self.src_len + 1
    }

    /// Samples one `src SEP tgt` sequence.
    pub fn sample(&self, rng: &mut SmallRng) -> Vec<usize> {
        let mut seq = Vec::with_capacity(self.seq_len());
        let src: Vec<usize> = (0..self.src_len)
            .map(|_| rng.gen_range(0..self.vocab))
            .collect();
        seq.extend(&src);
        seq.push(self.sep());
        seq.extend(src.iter().map(|&t| self.mapping[t]));
        seq
    }

    /// Samples a flattened batch.
    pub fn sample_batch(&self, batch: usize, rng: &mut SmallRng) -> Vec<usize> {
        let mut out = Vec::with_capacity(batch * self.seq_len());
        for _ in 0..batch {
            out.extend(self.sample(rng));
        }
        out
    }

    /// BLEU-proxy: fraction of target positions a next-token predictor got
    /// right, given `predictions` aligned to `sequence[1..]`.
    ///
    /// Only target-half positions (after the separator) count: the source
    /// half is unpredictable noise by construction.
    pub fn target_accuracy(&self, sequence: &[usize], predictions: &[usize]) -> f32 {
        assert_eq!(
            predictions.len(),
            sequence.len() - 1,
            "one prediction per next token"
        );
        let first_target = self.src_len + 1; // position of the first target token
        let mut hit = 0usize;
        let mut total = 0usize;
        for pos in first_target..sequence.len() {
            total += 1;
            if predictions[pos - 1] == sequence[pos] {
                hit += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f32 / total as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_tensor::rng::seeded;

    #[test]
    fn markov_rows_are_stochastic() {
        let d = RegimeMarkov::new(16, 3, &mut seeded(1));
        for regime in &d.transitions {
            for row in regime {
                let sum: f32 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-5);
                assert!(row.iter().all(|&p| p >= 0.0));
            }
        }
    }

    #[test]
    fn markov_sequences_follow_the_chain_statistics() {
        // The most-probable successor should appear far more often than
        // chance in a long sequence.
        let d = RegimeMarkov::new(8, 1, &mut seeded(2));
        let mut rng = seeded(3);
        let seq = d.sample(5000, &mut rng);
        let mut hits = 0usize;
        for w in seq.windows(2) {
            let row = &d.transitions[0][w[0]];
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            if w[1] == best {
                hits += 1;
            }
        }
        let rate = hits as f32 / (seq.len() - 1) as f32;
        assert!(
            rate > 0.45,
            "peaked chain should repeat its mode: rate {rate}"
        );
    }

    #[test]
    fn entropy_floor_is_positive_and_below_uniform() {
        let d = RegimeMarkov::new(16, 2, &mut seeded(4));
        let h = d.entropy_floor();
        assert!(h > 0.0);
        assert!(h < (16.0f32).ln(), "floor {h} must beat uniform entropy");
    }

    #[test]
    fn copy_translation_is_a_bijection() {
        let d = CopyTranslation::new(10, 4, &mut seeded(5));
        let mut seen = [false; 10];
        for &m in &d.mapping {
            assert!(!seen[m]);
            seen[m] = true;
        }
    }

    #[test]
    fn samples_have_sep_and_mapped_targets() {
        let d = CopyTranslation::new(10, 4, &mut seeded(6));
        let mut rng = seeded(7);
        let s = d.sample(&mut rng);
        assert_eq!(s.len(), 9);
        assert_eq!(s[4], d.sep());
        for i in 0..4 {
            assert_eq!(s[5 + i], d.mapping[s[i]]);
        }
    }

    #[test]
    fn perfect_predictions_score_one() {
        let d = CopyTranslation::new(10, 3, &mut seeded(8));
        let mut rng = seeded(9);
        let s = d.sample(&mut rng);
        let preds: Vec<usize> = s[1..].to_vec();
        assert_eq!(d.target_accuracy(&s, &preds), 1.0);
    }

    #[test]
    fn random_predictions_score_near_chance() {
        let d = CopyTranslation::new(10, 16, &mut seeded(10));
        let mut rng = seeded(11);
        let s = d.sample(&mut rng);
        let preds: Vec<usize> = (1..s.len()).map(|_| rng.gen_range(0..10)).collect();
        let acc = d.target_accuracy(&s, &preds);
        assert!(acc < 0.5, "random guessing scored {acc}");
    }
}
