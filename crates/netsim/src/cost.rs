//! Cost models mapping work sizes to simulated durations.
//!
//! Three models cover everything in the paper's task taxonomy:
//!
//! * [`LinkModel`] — α–β communication: `t = α + bytes / B`.
//! * [`ComputeModel`] — GPU kernels: `t = launch + flops / F`.
//! * [`LinearModel`] — the generic `t = a + b·x` form the ScheMoE profiler
//!   fits to measured task times (paper §3.2 "Profiler").

use crate::time::SimTime;

/// α–β model of a communication link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Per-message latency α in seconds.
    pub latency_s: f64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl LinkModel {
    /// Creates a link from latency (seconds) and bandwidth (bytes/second).
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive or latency negative.
    pub fn new(latency_s: f64, bandwidth_bps: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(latency_s >= 0.0, "latency must be non-negative");
        LinkModel {
            latency_s,
            bandwidth_bps,
        }
    }

    /// Time to move `bytes` over this link.
    pub fn time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(self.latency_s + bytes as f64 / self.bandwidth_bps)
    }

    /// A derived link with bandwidth divided by `n` (static sharing).
    ///
    /// Used to model, e.g., four GPUs of a node sharing one NIC.
    pub fn shared_by(&self, n: usize) -> LinkModel {
        LinkModel {
            latency_s: self.latency_s,
            bandwidth_bps: self.bandwidth_bps / n.max(1) as f64,
        }
    }
}

/// Throughput model of a GPU's compute pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComputeModel {
    /// Fixed kernel-launch overhead in seconds.
    pub launch_s: f64,
    /// Sustained effective FLOP/s for the workload class.
    pub flops_per_s: f64,
}

impl ComputeModel {
    /// Creates a compute model.
    ///
    /// # Panics
    ///
    /// Panics if `flops_per_s` is not strictly positive.
    pub fn new(launch_s: f64, flops_per_s: f64) -> Self {
        assert!(flops_per_s > 0.0, "throughput must be positive");
        ComputeModel {
            launch_s,
            flops_per_s,
        }
    }

    /// Time to execute `flops` floating-point operations.
    pub fn time(&self, flops: u64) -> SimTime {
        SimTime::from_secs(self.launch_s + flops as f64 / self.flops_per_s)
    }

    /// Time for a byte-throughput-bound kernel (e.g., compression) at
    /// `bytes_per_s`.
    pub fn memory_bound_time(&self, bytes: u64, bytes_per_s: f64) -> SimTime {
        SimTime::from_secs(self.launch_s + bytes as f64 / bytes_per_s)
    }
}

/// A fitted linear performance model `t = a + b·x`.
///
/// This is what the ScheMoE profiler builds per task type: `x` is the task
/// size (bytes or FLOPs) and `t` the predicted duration in seconds.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct LinearModel {
    /// Intercept (seconds).
    pub a: f64,
    /// Slope (seconds per unit of x).
    pub b: f64,
}

impl LinearModel {
    /// Creates a model from explicit coefficients.
    pub fn new(a: f64, b: f64) -> Self {
        LinearModel { a, b }
    }

    /// Least-squares fit through observation pairs `(x, seconds)`.
    ///
    /// Returns `None` for fewer than two points or a degenerate (constant
    /// `x`) design, where the slope is unidentifiable.
    pub fn fit(samples: &[(f64, f64)]) -> Option<LinearModel> {
        if samples.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|s| s.0).sum();
        let sy: f64 = samples.iter().map(|s| s.1).sum();
        let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
        let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < f64::EPSILON * (1.0 + sxx.abs()) {
            return None;
        }
        let b = (n * sxy - sx * sy) / denom;
        let a = (sy - b * sx) / n;
        Some(LinearModel { a, b })
    }

    /// Predicted duration at size `x`, clamped to be non-negative.
    pub fn predict(&self, x: f64) -> SimTime {
        SimTime::from_secs((self.a + self.b * x).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_time_is_alpha_beta() {
        let l = LinkModel::new(10e-6, 1e9);
        let t = l.time(1_000_000);
        assert!((t.as_secs() - (10e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn shared_link_divides_bandwidth() {
        let l = LinkModel::new(0.0, 4e9).shared_by(4);
        assert!((l.time(1_000_000_000).as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        LinkModel::new(0.0, 0.0);
    }

    #[test]
    fn compute_time_includes_launch_overhead() {
        let c = ComputeModel::new(5e-6, 1e12);
        let t = c.time(2_000_000_000_000);
        assert!((t.as_secs() - 2.000005).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_kernel_uses_byte_throughput() {
        let c = ComputeModel::new(0.0, 1e12);
        let t = c.memory_bound_time(500_000_000, 1e9);
        assert!((t.as_secs() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let samples: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 0.25 + 0.5 * i as f64)).collect();
        let m = LinearModel::fit(&samples).unwrap();
        assert!((m.a - 0.25).abs() < 1e-9, "a = {}", m.a);
        assert!((m.b - 0.5).abs() < 1e-9, "b = {}", m.b);
        assert!((m.predict(20.0).as_secs() - 10.25).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_rejects_degenerate_input() {
        assert!(LinearModel::fit(&[(1.0, 2.0)]).is_none());
        assert!(LinearModel::fit(&[(3.0, 1.0), (3.0, 2.0), (3.0, 3.0)]).is_none());
    }

    #[test]
    fn linear_fit_averages_noise() {
        // Symmetric noise around t = 1 + 2x must fit close to the truth.
        let mut samples = Vec::new();
        for i in 0..50 {
            let x = i as f64;
            let noise = if i % 2 == 0 { 0.1 } else { -0.1 };
            samples.push((x, 1.0 + 2.0 * x + noise));
        }
        let m = LinearModel::fit(&samples).unwrap();
        assert!((m.a - 1.0).abs() < 0.05);
        assert!((m.b - 2.0).abs() < 0.01);
    }

    #[test]
    fn prediction_clamps_negative_times() {
        let m = LinearModel::new(-1.0, 0.001);
        assert_eq!(m.predict(10.0), SimTime::ZERO);
    }
}
