//! Execution traces produced by the engine.

use crate::engine::{OpId, StreamId};
use crate::time::SimTime;

/// The simulated interval of one operation.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// The operation id.
    pub op: OpId,
    /// The stream it executed on.
    pub stream: StreamId,
    /// Human-readable label.
    pub label: String,
    /// Simulated start time.
    pub start: SimTime,
    /// Simulated finish time.
    pub end: SimTime,
}

/// The full result of a simulation run.
#[derive(Clone, Debug)]
pub struct Trace {
    records: Vec<OpRecord>,
    stream_names: Vec<String>,
}

impl Trace {
    pub(crate) fn new(records: Vec<OpRecord>, stream_names: Vec<String>) -> Self {
        Trace {
            records,
            stream_names,
        }
    }

    /// Total simulated time from 0 to the last finish.
    pub fn makespan(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| r.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Start time of an operation.
    ///
    /// # Panics
    ///
    /// Panics if `op` was not part of the simulation.
    pub fn start(&self, op: OpId) -> SimTime {
        self.records[op.0].start
    }

    /// Finish time of an operation.
    ///
    /// # Panics
    ///
    /// Panics if `op` was not part of the simulation.
    pub fn end(&self, op: OpId) -> SimTime {
        self.records[op.0].end
    }

    /// All operation records, in push order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Total busy time of one stream.
    pub fn busy_time(&self, stream: StreamId) -> SimTime {
        self.records
            .iter()
            .filter(|r| r.stream == stream)
            .map(|r| r.end - r.start)
            .sum()
    }

    /// Busy time divided by makespan, in `[0, 1]`.
    pub fn utilization(&self, stream: StreamId) -> f64 {
        let ms = self.makespan();
        if ms == SimTime::ZERO {
            0.0
        } else {
            self.busy_time(stream) / ms
        }
    }

    /// Sum of busy time over streams whose name contains `substr`.
    ///
    /// Useful for aggregating, e.g., every "inter" stream of a cluster.
    pub fn busy_time_matching(&self, substr: &str) -> SimTime {
        let ids: Vec<StreamId> = self
            .stream_names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.contains(substr))
            .map(|(i, _)| StreamId(i))
            .collect();
        ids.iter().map(|&s| self.busy_time(s)).sum()
    }

    /// Renders an ASCII Gantt chart, one row per stream, `width` columns.
    ///
    /// Intended for examples and debugging; the output is stable for a
    /// given trace.
    pub fn gantt(&self, width: usize) -> String {
        let ms = self.makespan();
        if ms == SimTime::ZERO || width == 0 {
            return String::new();
        }
        let name_w = self.stream_names.iter().map(|n| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (si, name) in self.stream_names.iter().enumerate() {
            let mut row = vec![' '; width];
            for r in self.records.iter().filter(|r| r.stream.0 == si) {
                let b = ((r.start / ms) * width as f64).floor() as usize;
                let e = (((r.end / ms) * width as f64).ceil() as usize).min(width);
                let c = r.label.chars().next().unwrap_or('#');
                for cell in row.iter_mut().take(e).skip(b) {
                    *cell = c;
                }
            }
            out.push_str(&format!("{name:<name_w$} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out.push_str(&format!("{:name_w$} makespan = {}\n", "", ms));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamSim;

    fn two_stream_trace() -> Trace {
        let mut sim = StreamSim::new();
        let s1 = sim.stream("compute");
        let s2 = sim.stream("network");
        let a = sim.push(s1, SimTime::from_ms(4.0), &[], "a");
        sim.push(s2, SimTime::from_ms(6.0), &[a], "b");
        sim.run().unwrap()
    }

    #[test]
    fn busy_time_per_stream() {
        let t = two_stream_trace();
        assert_eq!(t.busy_time(StreamId(0)), SimTime::from_ms(4.0));
        assert_eq!(t.busy_time(StreamId(1)), SimTime::from_ms(6.0));
        assert_eq!(t.makespan(), SimTime::from_ms(10.0));
    }

    #[test]
    fn utilization_is_fraction_of_makespan() {
        let t = two_stream_trace();
        assert!((t.utilization(StreamId(0)) - 0.4).abs() < 1e-12);
        assert!((t.utilization(StreamId(1)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn busy_time_matching_aggregates_by_name() {
        let t = two_stream_trace();
        assert_eq!(t.busy_time_matching("net"), SimTime::from_ms(6.0));
        assert_eq!(t.busy_time_matching("zzz"), SimTime::ZERO);
    }

    #[test]
    fn gantt_renders_every_stream() {
        let t = two_stream_trace();
        let g = t.gantt(40);
        assert!(g.contains("compute"));
        assert!(g.contains("network"));
        assert!(g.contains("makespan"));
        assert!(g.contains('a'));
        assert!(g.contains('b'));
    }
}
