//! Chrome-tracing export: load simulator traces in `chrome://tracing`.
//!
//! Emits the Trace Event Format's JSON array of complete (`"ph": "X"`)
//! events — one per simulated operation, with the stream as the thread id
//! — so any Perfetto/Chrome tracing UI renders the schedule. JSON is
//! written by hand (the event format needs only strings and numbers, and
//! the workspace's dependency policy has no JSON crate).

use crate::trace::Trace;

/// Serializes a trace as Trace Event Format JSON.
///
/// Events carry microsecond timestamps (`ts`/`dur`), the stream index as
/// `tid`, and the op label as `name`. The output is a complete JSON
/// document loadable by `chrome://tracing` or [Perfetto].
///
/// [Perfetto]: https://ui.perfetto.dev
pub fn to_chrome_trace(trace: &Trace, stream_names: &[&str]) -> String {
    let mut out = String::from("[\n");
    // Thread-name metadata events make the UI readable.
    for (i, name) in stream_names.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}},\n",
            escape(name)
        ));
    }
    let mut first = true;
    for r in trace.records() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"ts\":{:.3},\"dur\":{:.3}}}",
            r.stream.index(),
            escape(&r.label),
            r.start.as_us(),
            (r.end - r.start).as_us(),
        ));
    }
    out.push_str("\n]\n");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamSim;
    use crate::time::SimTime;

    fn sample_trace() -> Trace {
        let mut sim = StreamSim::new();
        let a = sim.stream("gpu");
        let b = sim.stream("net");
        let x = sim.push(a, SimTime::from_ms(1.0), &[], "C1\"quoted\"");
        sim.push(b, SimTime::from_ms(2.0), &[x], "A1");
        sim.run().unwrap()
    }

    #[test]
    fn output_contains_every_event_and_metadata() {
        let t = sample_trace();
        let json = to_chrome_trace(&t, &["gpu", "net"]);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"A1\""));
        assert!(json.matches("\"ph\":\"X\"").count() == 2);
    }

    #[test]
    fn quotes_and_control_characters_are_escaped() {
        let t = sample_trace();
        let json = to_chrome_trace(&t, &["gpu", "net"]);
        assert!(json.contains("C1\\\"quoted\\\""));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn timestamps_are_microseconds() {
        let t = sample_trace();
        let json = to_chrome_trace(&t, &["gpu", "net"]);
        // The 2 ms op shows as dur 2000 µs.
        assert!(json.contains("\"dur\":2000.000"));
        // The dependent op starts at 1000 µs.
        assert!(json.contains("\"ts\":1000.000"));
    }
}
