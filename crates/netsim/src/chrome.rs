//! Chrome-tracing export: load simulator traces in `chrome://tracing`.
//!
//! Emits the Trace Event Format's JSON array of complete (`"ph": "X"`)
//! events — one per simulated operation, with the stream as the thread id
//! — so any Perfetto/Chrome tracing UI renders the schedule. The JSON is
//! written through [`schemoe_obs::chrome::ChromeTraceBuilder`], the same
//! writer the functional recorder exports through, so simulated and
//! measured timelines share one schema and overlay cleanly in Perfetto.

use schemoe_obs::chrome::ChromeTraceBuilder;

use crate::trace::Trace;

/// Serializes a trace as Trace Event Format JSON.
///
/// Events carry microsecond timestamps (`ts`/`dur`), the stream index as
/// `tid`, and the op label as `name`. The output is a complete JSON
/// document loadable by `chrome://tracing` or [Perfetto].
///
/// [Perfetto]: https://ui.perfetto.dev
pub fn to_chrome_trace(trace: &Trace, stream_names: &[&str]) -> String {
    let mut b = ChromeTraceBuilder::new();
    b.process_name(1, "sim");
    // Thread-name metadata events make the UI readable.
    for (i, name) in stream_names.iter().enumerate() {
        b.thread_name(1, i as u64, name);
    }
    for r in trace.records() {
        b.complete_event(
            1,
            r.stream.index() as u64,
            &r.label,
            Some("sim"),
            r.start.as_us(),
            (r.end - r.start).as_us(),
            &[],
        );
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamSim;
    use crate::time::SimTime;

    fn sample_trace() -> Trace {
        let mut sim = StreamSim::new();
        let a = sim.stream("gpu");
        let b = sim.stream("net");
        let x = sim.push(a, SimTime::from_ms(1.0), &[], "C1\"quoted\"");
        sim.push(b, SimTime::from_ms(2.0), &[x], "A1");
        sim.run().unwrap()
    }

    #[test]
    fn output_contains_every_event_and_metadata() {
        let t = sample_trace();
        let json = to_chrome_trace(&t, &["gpu", "net"]);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"A1\""));
        assert!(json.matches("\"ph\":\"X\"").count() == 2);
    }

    #[test]
    fn quotes_and_control_characters_are_escaped() {
        let t = sample_trace();
        let json = to_chrome_trace(&t, &["gpu", "net"]);
        assert!(json.contains("C1\\\"quoted\\\""));
        // The document as a whole is valid JSON despite the hostile label.
        assert!(schemoe_obs::json::parse(&json).is_ok());
    }

    #[test]
    fn timestamps_are_microseconds() {
        let t = sample_trace();
        let json = to_chrome_trace(&t, &["gpu", "net"]);
        // The 2 ms op shows as dur 2000 µs.
        assert!(json.contains("\"dur\":2000.000"));
        // The dependent op starts at 1000 µs.
        assert!(json.contains("\"ts\":1000.000"));
    }
}
