//! The stream-based discrete-event engine.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;
use crate::trace::{OpRecord, Trace};

/// Identifies a stream (an in-order execution queue) within a [`StreamSim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StreamId(pub(crate) usize);

impl StreamId {
    /// The raw stream index (streams are numbered from 0 in creation
    /// order within their [`StreamSim`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies an operation pushed onto a [`StreamSim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// Builds an id from a raw push index (ops are numbered from 0 in push
    /// order). Referencing an id that was never pushed makes
    /// [`StreamSim::run`] return [`SimError::UnknownDependency`].
    pub fn from_raw(index: usize) -> Self {
        OpId(index)
    }

    /// The raw push index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors reported by [`StreamSim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The dependency graph contains a cycle (including cross-stream
    /// dependency patterns that deadlock the in-order streams).
    Deadlock {
        /// Operations that could never start.
        stuck_ops: Vec<OpId>,
    },
    /// An operation referenced a dependency that does not exist.
    UnknownDependency {
        /// The operation with the bad edge.
        op: OpId,
        /// The missing dependency id.
        dep: OpId,
    },
    /// A duration was NaN, infinite, or negative.
    InvalidDuration {
        /// The offending operation.
        op: OpId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { stuck_ops } => {
                write!(
                    f,
                    "simulation deadlocked with {} ops never ready",
                    stuck_ops.len()
                )
            }
            SimError::UnknownDependency { op, dep } => {
                write!(f, "op {op:?} depends on unknown op {dep:?}")
            }
            SimError::InvalidDuration { op } => {
                write!(f, "op {op:?} has a NaN/negative duration")
            }
        }
    }
}

impl std::error::Error for SimError {}

struct Op {
    stream: StreamId,
    duration: SimTime,
    deps: Vec<OpId>,
    label: String,
}

/// A CUDA-style multi-stream simulator.
///
/// Operations are pushed onto streams in *program order*. At run time, the
/// operations of one stream execute strictly in that order; an operation
/// starts at the later of (a) its stream predecessor's finish and (b) the
/// finish of every explicit cross-stream dependency. Different streams
/// overlap freely, which is exactly the execution model the ScheMoE paper
/// assumes for communication/computation overlap (its constraints (4)–(9)).
pub struct StreamSim {
    ops: Vec<Op>,
    streams: Vec<String>,
    /// Program order per stream.
    queues: Vec<Vec<OpId>>,
}

impl StreamSim {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        StreamSim {
            ops: Vec::new(),
            streams: Vec::new(),
            queues: Vec::new(),
        }
    }

    /// Registers a new stream and returns its id.
    pub fn stream(&mut self, name: impl Into<String>) -> StreamId {
        self.streams.push(name.into());
        self.queues.push(Vec::new());
        StreamId(self.streams.len() - 1)
    }

    /// Number of registered streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Number of pushed operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Pushes an operation onto `stream` with explicit dependencies.
    ///
    /// # Panics
    ///
    /// Panics if `stream` was not created by this simulator.
    pub fn push(
        &mut self,
        stream: StreamId,
        duration: SimTime,
        deps: &[OpId],
        label: impl Into<String>,
    ) -> OpId {
        assert!(stream.0 < self.streams.len(), "unknown stream {stream:?}");
        let id = OpId(self.ops.len());
        self.ops.push(Op {
            stream,
            duration,
            deps: deps.to_vec(),
            label: label.into(),
        });
        self.queues[stream.0].push(id);
        id
    }

    /// Runs the simulation and returns the execution trace.
    ///
    /// The engine repeatedly fires the head operation of any stream whose
    /// dependencies have all completed; because streams are in-order FIFO
    /// queues this is a deterministic fixed point independent of firing
    /// order.
    pub fn run(&self) -> Result<Trace, SimError> {
        // Validate edges and durations first.
        for (i, op) in self.ops.iter().enumerate() {
            if !op.duration.is_valid_duration() {
                return Err(SimError::InvalidDuration { op: OpId(i) });
            }
            for &d in &op.deps {
                if d.0 >= self.ops.len() {
                    return Err(SimError::UnknownDependency {
                        op: OpId(i),
                        dep: d,
                    });
                }
            }
        }

        let n = self.ops.len();
        let mut end: Vec<Option<SimTime>> = vec![None; n];
        let mut start: Vec<Option<SimTime>> = vec![None; n];
        // Head index per stream.
        let mut heads: Vec<usize> = vec![0; self.queues.len()];
        let mut remaining = n;
        // Worklist sweep: each pass fires every stream head whose deps are
        // done. At least one op fires per pass unless we are deadlocked, so
        // this is O(n * streams) worst case — fine at our scales.
        let mut ready: VecDeque<usize> = (0..self.queues.len()).collect();
        let mut progressed = true;
        while remaining > 0 && progressed {
            progressed = false;
            for s in ready.iter().copied().collect::<Vec<_>>() {
                while let Some(&op_id) = self.queues[s].get(heads[s]) {
                    let op = &self.ops[op_id.0];
                    // Ready when all deps have finished.
                    let mut dep_end = SimTime::ZERO;
                    let mut all_done = true;
                    for &d in &op.deps {
                        match end[d.0] {
                            Some(t) => dep_end = dep_end.max(t),
                            None => {
                                all_done = false;
                                break;
                            }
                        }
                    }
                    if !all_done {
                        break;
                    }
                    // Stream predecessor finish time.
                    let stream_free = if heads[s] == 0 {
                        SimTime::ZERO
                    } else {
                        let prev = self.queues[s][heads[s] - 1];
                        end[prev.0].expect("predecessor already fired")
                    };
                    let st = stream_free.max(dep_end);
                    start[op_id.0] = Some(st);
                    end[op_id.0] = Some(st + op.duration);
                    heads[s] += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            let _ = &mut ready;
        }

        if remaining > 0 {
            let stuck = (0..n).filter(|&i| end[i].is_none()).map(OpId).collect();
            return Err(SimError::Deadlock { stuck_ops: stuck });
        }

        let records = (0..n)
            .map(|i| OpRecord {
                op: OpId(i),
                stream: self.ops[i].stream,
                label: self.ops[i].label.clone(),
                start: start[i].expect("all fired"),
                end: end[i].expect("all fired"),
            })
            .collect();
        Ok(Trace::new(records, self.streams.clone()))
    }
}

impl Default for StreamSim {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_serializes() {
        let mut sim = StreamSim::new();
        let s = sim.stream("s");
        sim.push(s, SimTime::from_ms(1.0), &[], "a");
        sim.push(s, SimTime::from_ms(2.0), &[], "b");
        let t = sim.run().unwrap();
        assert_eq!(t.makespan(), SimTime::from_ms(3.0));
    }

    #[test]
    fn independent_streams_overlap() {
        let mut sim = StreamSim::new();
        let s1 = sim.stream("s1");
        let s2 = sim.stream("s2");
        sim.push(s1, SimTime::from_ms(5.0), &[], "a");
        sim.push(s2, SimTime::from_ms(3.0), &[], "b");
        let t = sim.run().unwrap();
        assert_eq!(t.makespan(), SimTime::from_ms(5.0));
    }

    #[test]
    fn cross_stream_dependency_delays_start() {
        let mut sim = StreamSim::new();
        let s1 = sim.stream("s1");
        let s2 = sim.stream("s2");
        let a = sim.push(s1, SimTime::from_ms(4.0), &[], "a");
        let b = sim.push(s2, SimTime::from_ms(1.0), &[a], "b");
        let t = sim.run().unwrap();
        assert_eq!(t.start(b), SimTime::from_ms(4.0));
        assert_eq!(t.makespan(), SimTime::from_ms(5.0));
    }

    #[test]
    fn dependency_issued_later_on_other_stream_is_ok() {
        // Stream order and dependency order disagree across streams; the
        // engine must still find the fixed point.
        let mut sim = StreamSim::new();
        let s1 = sim.stream("s1");
        let s2 = sim.stream("s2");
        let b_placeholder = sim.push(s2, SimTime::from_ms(2.0), &[], "b");
        let a = sim.push(s1, SimTime::from_ms(1.0), &[b_placeholder], "a");
        let t = sim.run().unwrap();
        assert_eq!(t.start(a), SimTime::from_ms(2.0));
    }

    #[test]
    fn in_stream_deadlock_is_detected() {
        // Head of s1 depends on the second op of s2, whose head depends on
        // the second op of s1: classic cross-stream deadlock.
        let mut sim = StreamSim::new();
        let s1 = sim.stream("s1");
        let s2 = sim.stream("s2");
        // Build: s1 = [x(dep=w), y], s2 = [z(dep=y), w].
        // We need forward references, so push placeholders in order.
        let y_id = OpId(1);
        let w_id = OpId(3);
        let _x = sim.push(s1, SimTime::from_ms(1.0), &[w_id], "x");
        let _y = sim.push(s1, SimTime::from_ms(1.0), &[], "y");
        let _z = sim.push(s2, SimTime::from_ms(1.0), &[y_id], "z");
        let _w = sim.push(s2, SimTime::from_ms(1.0), &[], "w");
        let err = sim.run().unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn unknown_dependency_is_reported() {
        let mut sim = StreamSim::new();
        let s = sim.stream("s");
        sim.push(s, SimTime::from_ms(1.0), &[OpId(99)], "a");
        assert!(matches!(
            sim.run().unwrap_err(),
            SimError::UnknownDependency { .. }
        ));
    }

    #[test]
    fn invalid_duration_is_reported() {
        let mut sim = StreamSim::new();
        let s = sim.stream("s");
        sim.push(s, SimTime::from_secs(f64::NAN), &[], "a");
        assert!(matches!(
            sim.run().unwrap_err(),
            SimError::InvalidDuration { .. }
        ));
    }

    #[test]
    fn diamond_dependency_takes_longest_path() {
        let mut sim = StreamSim::new();
        let s1 = sim.stream("s1");
        let s2 = sim.stream("s2");
        let s3 = sim.stream("s3");
        let a = sim.push(s1, SimTime::from_ms(1.0), &[], "a");
        let b = sim.push(s2, SimTime::from_ms(10.0), &[a], "b");
        let c = sim.push(s3, SimTime::from_ms(2.0), &[a], "c");
        let d = sim.push(s1, SimTime::from_ms(1.0), &[b, c], "d");
        let t = sim.run().unwrap();
        assert_eq!(t.start(d), SimTime::from_ms(11.0));
        assert_eq!(t.makespan(), SimTime::from_ms(12.0));
    }
}
