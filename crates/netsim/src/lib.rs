//! Discrete-event simulation of GPU-cluster computation and communication.
//!
//! The simulator models execution the way CUDA does: work is issued onto
//! **streams** in program order, each operation carries explicit
//! cross-stream dependencies (events), and operations on one stream
//! serialize while operations on different streams may overlap. Given a set
//! of streams and operations with durations, [`StreamSim`] computes the
//! start/finish time of every operation and the overall makespan.
//!
//! Durations come from the cost models in [`cost`]: an α–β (latency +
//! byte/bandwidth) model for links, a FLOP-throughput model for kernels,
//! and a generic linear model that the ScheMoE profiler fits to
//! measurements.
//!
//! This crate knows nothing about MoE — it is the substrate that
//! `schemoe-collectives` (A2A algorithm plans) and `schemoe-scheduler`
//! (task-order evaluation) compile onto.
//!
//! # Examples
//!
//! ```
//! use schemoe_netsim::{SimTime, StreamSim};
//!
//! let mut sim = StreamSim::new();
//! let comp = sim.stream("compute");
//! let comm = sim.stream("network");
//! let a = sim.push(comp, SimTime::from_ms(2.0), &[], "kernel A");
//! let b = sim.push(comm, SimTime::from_ms(3.0), &[a], "send A");
//! let c = sim.push(comp, SimTime::from_ms(2.0), &[], "kernel B");
//! let trace = sim.run().unwrap();
//! // Kernel B overlaps with the send: makespan is 2 + max(3, 2) = 5 ms.
//! assert_eq!(trace.makespan(), SimTime::from_ms(5.0));
//! assert!(trace.start(c) < trace.end(b));
//! ```

pub mod chrome;
pub mod cost;
pub mod engine;
pub mod time;
pub mod trace;

pub use engine::{OpId, SimError, StreamId, StreamSim};
pub use time::SimTime;
pub use trace::Trace;
