//! Simulated-time newtype.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) simulated time, stored as seconds in `f64`.
///
/// `SimTime` is totally ordered; NaN durations are rejected at construction
/// by the engine, so comparisons never observe NaN.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The time origin / zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time span from seconds.
    pub fn from_secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Creates a time span from milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        SimTime(ms / 1e3)
    }

    /// Creates a time span from microseconds.
    pub fn from_us(us: f64) -> Self {
        SimTime(us / 1e6)
    }

    /// The span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 * 1e3
    }

    /// The span in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 * 1e6
    }

    /// Elementwise maximum.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Elementwise minimum.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Returns `true` when the value is finite and non-negative.
    pub fn is_valid_duration(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<SimTime> for SimTime {
    type Output = f64;
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.as_ms())
        } else {
            write!(f, "{:.1}us", self.as_us())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(SimTime::from_ms(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::from_secs(0.002).as_ms(), 2.0);
        assert!((SimTime::from_us(7.0).as_secs() - 7e-6).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = SimTime::from_ms(2.0);
        let b = SimTime::from_ms(3.0);
        assert_eq!(a + b, SimTime::from_ms(5.0));
        assert_eq!(b - a, SimTime::from_ms(1.0));
        assert_eq!(a * 2.0, SimTime::from_ms(4.0));
        assert!((b / a - 1.5).abs() < 1e-12);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = [1.0, 2.0, 3.0].iter().map(|&ms| SimTime::from_ms(ms)).sum();
        assert_eq!(total, SimTime::from_ms(6.0));
    }

    #[test]
    fn duration_validity() {
        assert!(SimTime::from_ms(0.0).is_valid_duration());
        assert!(!SimTime::from_secs(f64::NAN).is_valid_duration());
        assert!(!SimTime::from_secs(-1.0).is_valid_duration());
        assert!(!SimTime::from_secs(f64::INFINITY).is_valid_duration());
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_secs(2.5)), "2.500s");
        assert_eq!(format!("{}", SimTime::from_ms(12.25)), "12.250ms");
        assert_eq!(format!("{}", SimTime::from_us(3.0)), "3.0us");
    }
}
