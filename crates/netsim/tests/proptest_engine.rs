//! Property-based tests for the stream simulator's scheduling invariants.

use proptest::prelude::*;
use schemoe_netsim::{OpId, SimTime, StreamSim};

/// A randomly generated workload: op i runs on `streams[i]` for
/// `durations[i]` ms and may depend on any strict subset of earlier ops.
#[derive(Debug, Clone)]
struct Workload {
    num_streams: usize,
    durations: Vec<f64>,
    streams: Vec<usize>,
    deps: Vec<Vec<usize>>,
}

fn workload() -> impl Strategy<Value = Workload> {
    (1usize..4, 1usize..12).prop_flat_map(|(num_streams, num_ops)| {
        let durations = proptest::collection::vec(0.1f64..10.0, num_ops);
        let streams = proptest::collection::vec(0usize..num_streams, num_ops);
        // deps[i] ⊆ {0..i}: keep edges pointing backwards so plans are
        // acyclic in program order (the engine supports forward cross-stream
        // edges too, but backward edges are guaranteed deadlock-free).
        let deps = (0..num_ops)
            .map(|i| proptest::collection::vec(0..i.max(1), 0..=i.min(3)))
            .collect::<Vec<_>>();
        (Just(num_streams), durations, streams, deps).prop_map(
            |(num_streams, durations, streams, deps)| Workload {
                num_streams,
                durations,
                streams,
                deps,
            },
        )
    })
}

fn build(w: &Workload) -> StreamSim {
    let mut sim = StreamSim::new();
    let streams: Vec<_> = (0..w.num_streams)
        .map(|i| sim.stream(format!("s{i}")))
        .collect();
    for i in 0..w.durations.len() {
        let deps: Vec<OpId> = if i == 0 {
            Vec::new()
        } else {
            w.deps[i].iter().map(|&d| OpId::from_raw(d)).collect()
        };
        sim.push(
            streams[w.streams[i]],
            SimTime::from_ms(w.durations[i]),
            &deps,
            format!("op{i}"),
        );
    }
    sim
}

proptest! {
    /// Backward-only dependency graphs never deadlock.
    #[test]
    fn backward_edges_always_complete(w in workload()) {
        let sim = build(&w);
        prop_assert!(sim.run().is_ok());
    }

    /// The makespan can never beat the busiest stream (work conservation).
    #[test]
    fn makespan_at_least_busiest_stream(w in workload()) {
        let sim = build(&w);
        let trace = sim.run().unwrap();
        let mut per_stream = vec![0.0f64; w.num_streams];
        for (i, &d) in w.durations.iter().enumerate() {
            per_stream[w.streams[i]] += d;
        }
        let busiest = per_stream.iter().cloned().fold(0.0, f64::max);
        prop_assert!(
            trace.makespan().as_ms() >= busiest - 1e-9,
            "makespan {} < busiest stream {}",
            trace.makespan().as_ms(),
            busiest
        );
    }

    /// The makespan can never beat the dependency critical path.
    #[test]
    fn makespan_at_least_critical_path(w in workload()) {
        let sim = build(&w);
        let trace = sim.run().unwrap();
        // Longest path through explicit dependencies only.
        let n = w.durations.len();
        let mut longest = vec![0.0f64; n];
        for i in 0..n {
            let dep_max = if i == 0 {
                0.0
            } else {
                w.deps[i].iter().map(|&d| longest[d]).fold(0.0, f64::max)
            };
            longest[i] = dep_max + w.durations[i];
        }
        let critical = longest.iter().cloned().fold(0.0, f64::max);
        prop_assert!(trace.makespan().as_ms() >= critical - 1e-9);
    }

    /// Every op respects its dependencies and its stream's program order.
    #[test]
    fn trace_respects_all_constraints(w in workload()) {
        let sim = build(&w);
        let trace = sim.run().unwrap();
        let recs = trace.records();
        for (i, r) in recs.iter().enumerate() {
            if i > 0 {
                for &d in &w.deps[i] {
                    prop_assert!(recs[d].end <= r.start + SimTime::from_us(0.001));
                }
            }
        }
        // Program order within each stream.
        for s in 0..w.num_streams {
            let mut prev_end = SimTime::ZERO;
            for (i, r) in recs.iter().enumerate() {
                if w.streams[i] == s {
                    prop_assert!(r.start >= prev_end - SimTime::from_us(0.001));
                    prev_end = r.end;
                }
            }
        }
    }

    /// Running the same workload twice yields identical traces.
    #[test]
    fn simulation_is_deterministic(w in workload()) {
        let t1 = build(&w).run().unwrap();
        let t2 = build(&w).run().unwrap();
        prop_assert_eq!(t1.makespan(), t2.makespan());
        for (a, b) in t1.records().iter().zip(t2.records().iter()) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
        }
    }
}
