//! Property tests for the span recorder: arbitrary open/close sequences
//! across threads must always produce a well-formed trace — every span is
//! recorded exactly once, no duration is negative, and spans on one thread
//! either nest or are disjoint (children inside parents), even when guards
//! are dropped out of order.

use proptest::prelude::*;
use schemoe_obs::{disable, enable, set_thread_name, set_thread_rank, span, take, SpanGuard};

/// One scripted action on a thread's span stack.
#[derive(Clone, Debug)]
enum Op {
    /// Open a span with the given category index.
    Open(u8),
    /// Drop the open guard at `index % open_guards.len()` — possibly a
    /// parent of later guards, exercising out-of-order drops.
    Close(u8),
}

/// The vendored proptest stand-in has no `prop_oneof!`; encode the choice
/// as a `(selector, payload)` tuple instead (open twice as likely as
/// close, so scripts build real nesting).
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..3, 0u8..=254).prop_map(|(sel, payload)| {
        if sel < 2 {
            Op::Open(payload)
        } else {
            Op::Close(payload)
        }
    })
}

const CATS: [&str; 4] = ["encode", "a2a", "expert", "decode"];

/// Runs one thread's script, returning how many spans it opened.
fn run_script(ops: &[Op]) -> usize {
    let mut open: Vec<SpanGuard> = Vec::new();
    let mut opened = 0;
    for op in ops {
        match op {
            Op::Open(c) => {
                open.push(span(CATS[*c as usize % CATS.len()], format!("s{opened}")));
                opened += 1;
            }
            Op::Close(i) => {
                if !open.is_empty() {
                    let idx = *i as usize % open.len();
                    drop(open.remove(idx));
                }
            }
        }
    }
    // Remaining guards drop here, in reverse-open order per Vec drop.
    opened
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_open_close_sequences_yield_well_formed_traces(
        scripts in proptest::collection::vec(proptest::collection::vec(op_strategy(), 0..40), 1..4)
    ) {
        enable();
        let opened: usize = std::thread::scope(|scope| {
            scripts
                .iter()
                .enumerate()
                .map(|(t, ops)| {
                    scope.spawn(move || {
                        set_thread_rank(t);
                        set_thread_name(format!("script{t}"));
                        run_script(ops)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().expect("script thread"))
                .sum()
        });
        let trace = take();
        disable();

        // Every opened span is recorded exactly once.
        prop_assert_eq!(trace.spans.len(), opened);

        // No negative durations.
        for s in &trace.spans {
            prop_assert!(s.dur_us >= 0.0, "negative duration: {:?}", s);
        }

        // Per thread: any two spans nest or are disjoint — never a
        // partial overlap.
        for a in &trace.spans {
            for b in &trace.spans {
                if a.thread != b.thread {
                    continue;
                }
                let (a0, a1) = (a.start_us, a.start_us + a.dur_us);
                let (b0, b1) = (b.start_us, b.start_us + b.dur_us);
                let partial = a0 < b0 && b0 < a1 && a1 < b1;
                prop_assert!(!partial, "partial overlap: {:?} vs {:?}", a, b);
            }
        }

        // Children inside parents: a depth-d span (d > 0) is contained in
        // some depth-(d-1) span on its thread.
        for child in trace.spans.iter().filter(|s| s.depth > 0) {
            let contained = trace.spans.iter().any(|p| {
                p.thread == child.thread
                    && p.depth + 1 == child.depth
                    && p.start_us <= child.start_us + 1e-9
                    && p.start_us + p.dur_us >= child.start_us + child.dur_us - 1e-9
            });
            prop_assert!(contained, "uncontained child: {:?}", child);
        }
    }
}
