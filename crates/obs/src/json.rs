//! A minimal JSON parser.
//!
//! The workspace's dependency policy admits no JSON crate, yet the
//! CI bench gate must read `BENCH_overlap.json` and the trace-validity
//! tests must check that hand-written chrome traces are well-formed. This
//! is a strict recursive-descent parser of RFC 8259 JSON: it rejects
//! trailing garbage, unknown escapes, and malformed numbers. It is not a
//! performance-sensitive path.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved; duplicate keys keep the
    /// last value, as most JSON consumers do.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.i, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.i += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.i += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.b[self.i..]).expect("input was a str");
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.i + 4 > self.b.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("invalid number"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("invalid number"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ASCII number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c\n\"d\""},null],"e":false}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c\n\"d\""));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(v.get("e"), Some(&Json::Bool(false)));
    }

    #[test]
    fn resolves_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"",
            "tru",
            "[1] x",
            "{\"a\" 1}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn keeps_last_duplicate_key() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn utf8_passthrough() {
        assert_eq!(
            parse("\"héllo → 世界\"").unwrap(),
            Json::Str("héllo → 世界".into())
        );
    }
}
