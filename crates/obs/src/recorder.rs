//! The span recorder: thread-local span stacks behind one global switch.
//!
//! Every thread that opens a span gets a buffer registered in a global
//! table; [`take`] drains all buffers into one [`FuncTrace`]. The enabled
//! check is a single relaxed atomic load, and nothing else happens on a
//! disabled hot path — no allocation, no TLS initialization, no locking —
//! which is what keeps instrumented code free when tracing is off.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::chrome::ChromeTraceBuilder;
use crate::counters::{counter_snapshots, routing_snapshots, CounterSnapshot, RoutingSnapshot};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the recorder epoch (first [`enable`] call).
fn now_us() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

/// One recorded interval.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Category: a small stable vocabulary ("encode", "a2a", "expert",
    /// "decode", "optimizer", ...) used for aggregation.
    pub cat: &'static str,
    /// Instance name, e.g. `"E[c2]"` for chunk 2's expert task.
    pub name: String,
    /// The rank the recording thread was working for.
    pub rank: usize,
    /// The recording thread's display name.
    pub thread: String,
    /// Start, in microseconds since the recorder epoch.
    pub start_us: f64,
    /// Duration in microseconds; never negative.
    pub dur_us: f64,
    /// Task size (bytes, rows — unit chosen by the instrumentation site;
    /// the scheduler's profiler only needs recording and prediction to
    /// agree). Zero when not applicable.
    pub size: f64,
    /// Nesting depth at open time (0 = top level on its thread).
    pub depth: usize,
}

struct ThreadMeta {
    rank: Option<usize>,
    name: String,
}

struct ThreadBuf {
    meta: Mutex<ThreadMeta>,
    spans: Mutex<Vec<SpanRecord>>,
}

struct Frame {
    id: u64,
    cat: &'static str,
    name: String,
    size: f64,
    start_us: f64,
}

struct Tls {
    buf: Arc<ThreadBuf>,
    stack: Vec<Frame>,
}

thread_local! {
    static TLS: RefCell<Option<Tls>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's recorder state, initializing and
/// registering it on first use. Returns `None` during thread teardown.
fn with_tls<R>(f: impl FnOnce(&mut Tls) -> R) -> Option<R> {
    TLS.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        let tls = slot.get_or_insert_with(|| {
            let mut reg = REGISTRY.lock().expect("registry poisoned");
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("t{}", reg.len()));
            let buf = Arc::new(ThreadBuf {
                meta: Mutex::new(ThreadMeta { rank: None, name }),
                spans: Mutex::new(Vec::new()),
            });
            reg.push(Arc::clone(&buf));
            Tls {
                buf,
                stack: Vec::new(),
            }
        });
        f(tls)
    })
    .ok()
}

/// Whether recording is on. One relaxed atomic load: cheap enough for any
/// hot path to check before doing per-event work.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on, clearing previously recorded spans so the next
/// [`take`] covers exactly the interval since this call.
pub fn enable() {
    let _ = EPOCH.get_or_init(Instant::now);
    for buf in REGISTRY.lock().expect("registry poisoned").iter() {
        buf.spans.lock().expect("spans poisoned").clear();
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off. Spans already recorded remain available to
/// [`take`]; open guards close without recording new work started later.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Names this thread's track in exported traces (e.g. `"rank2/comm"`).
pub fn set_thread_name(name: impl Into<String>) {
    with_tls(|t| t.buf.meta.lock().expect("meta poisoned").name = name.into());
}

/// Attributes this thread's spans and exported track to `rank`.
pub fn set_thread_rank(rank: usize) {
    with_tls(|t| t.buf.meta.lock().expect("meta poisoned").rank = Some(rank));
}

/// The rank set via [`set_thread_rank`] on this thread, if any. Lets a
/// worker thread spawned inside a rank thread inherit its attribution.
pub fn thread_rank() -> Option<usize> {
    with_tls(|t| t.buf.meta.lock().expect("meta poisoned").rank).flatten()
}

/// RAII guard for an open span; records the interval on drop.
///
/// Guards are expected to drop in LIFO order per thread. Dropping a parent
/// before its children force-closes the children at the parent's close
/// time, so recorded traces always nest; a child guard dropped after its
/// parent already closed it records nothing further.
#[must_use = "a span is recorded when its guard drops"]
pub struct SpanGuard {
    /// 0 = no-op guard (recording was disabled at open).
    id: u64,
}

/// Opens a span of `cat`/`name` on the current thread.
///
/// Returns a no-op guard when recording is disabled — callers building an
/// expensive `name` should check [`enabled`] first.
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    span_sized(cat, name, 0.0)
}

/// Like [`span`], with a task-size annotation (bytes, rows, ...).
pub fn span_sized(cat: &'static str, name: impl Into<String>, size: f64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: 0 };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let start_us = now_us();
    with_tls(|t| {
        t.stack.push(Frame {
            id,
            cat,
            name: name.into(),
            size,
            start_us,
        });
    });
    SpanGuard { id }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let end_us = now_us();
        with_tls(|t| {
            // A guard dropped after its parent closed it finds no frame.
            let Some(pos) = t.stack.iter().rposition(|f| f.id == self.id) else {
                return;
            };
            // Force-close still-open children at this close time, deepest
            // first, so children never extend past their parent.
            while t.stack.len() > pos {
                let frame = t.stack.pop().expect("len > pos");
                let depth = t.stack.len();
                t.buf
                    .spans
                    .lock()
                    .expect("spans poisoned")
                    .push(SpanRecord {
                        cat: frame.cat,
                        name: frame.name,
                        rank: 0,
                        thread: String::new(),
                        start_us: frame.start_us,
                        dur_us: (end_us - frame.start_us).max(0.0),
                        size: frame.size,
                        depth,
                    });
            }
        });
    }
}

/// Everything one measured interval produced: spans from every thread plus
/// a snapshot of the per-rank counters.
#[derive(Clone, Debug, Default)]
pub struct FuncTrace {
    /// All recorded spans, sorted by `(rank, thread, start)`.
    pub spans: Vec<SpanRecord>,
    /// Per-rank counter totals at [`take`] time.
    pub counters: Vec<CounterSnapshot>,
    /// Per-rank routing tallies (expert loads, shed) at [`take`] time.
    pub routing: Vec<RoutingSnapshot>,
}

/// Drains every thread's recorded spans into one [`FuncTrace`].
///
/// Spans still open (guards not yet dropped) are not included; drop all
/// guards — e.g. join worker threads — before taking the trace.
pub fn take() -> FuncTrace {
    let mut spans = Vec::new();
    for buf in REGISTRY.lock().expect("registry poisoned").iter() {
        let mut drained = std::mem::take(&mut *buf.spans.lock().expect("spans poisoned"));
        let meta = buf.meta.lock().expect("meta poisoned");
        for s in &mut drained {
            s.rank = meta.rank.unwrap_or(0);
            s.thread = meta.name.clone();
        }
        spans.append(&mut drained);
    }
    spans.sort_by(|a, b| {
        (a.rank, &a.thread, a.start_us)
            .partial_cmp(&(b.rank, &b.thread, b.start_us))
            .expect("span times are finite")
    });
    FuncTrace {
        spans,
        counters: counter_snapshots(),
        routing: routing_snapshots(),
    }
}

impl FuncTrace {
    /// Total recorded duration of all spans in `cat`, in milliseconds.
    pub fn total_ms_by_cat(&self, cat: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.cat == cat)
            .map(|s| s.dur_us)
            .sum::<f64>()
            / 1e3
    }

    /// Number of spans in `cat`.
    pub fn count_by_cat(&self, cat: &str) -> usize {
        self.spans.iter().filter(|s| s.cat == cat).count()
    }

    /// The distinct categories present, sorted.
    pub fn cats(&self) -> Vec<&'static str> {
        let mut cats: Vec<&'static str> = self.spans.iter().map(|s| s.cat).collect();
        cats.sort_unstable();
        cats.dedup();
        cats
    }

    /// Wall-clock extent of the trace (first start to last end), in
    /// milliseconds.
    pub fn span_ms(&self) -> f64 {
        let start = self
            .spans
            .iter()
            .map(|s| s.start_us)
            .fold(f64::INFINITY, f64::min);
        let end = self
            .spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .fold(0.0f64, f64::max);
        if start.is_finite() {
            (end - start) / 1e3
        } else {
            0.0
        }
    }

    /// Serializes the trace as Trace Event Format JSON: one process per
    /// rank, one track per recording thread, complete (`"ph":"X"`) events
    /// carrying the category and size. Loadable in Perfetto alongside the
    /// simulator's [`schemoe_netsim::chrome`] output for overlay.
    pub fn to_chrome_trace(&self) -> String {
        let mut b = ChromeTraceBuilder::new();
        // Stable (rank, thread) -> tid mapping in first-seen order.
        let mut tracks: Vec<(usize, &str)> = Vec::new();
        for s in &self.spans {
            if !tracks.iter().any(|&(r, t)| r == s.rank && t == s.thread) {
                tracks.push((s.rank, &s.thread));
            }
        }
        let mut named_pids: Vec<usize> = Vec::new();
        for (tid, &(rank, thread)) in tracks.iter().enumerate() {
            if !named_pids.contains(&rank) {
                named_pids.push(rank);
                b.process_name(rank as u64, &format!("rank{rank}"));
            }
            b.thread_name(rank as u64, tid as u64, thread);
        }
        for s in &self.spans {
            let tid = tracks
                .iter()
                .position(|&(r, t)| r == s.rank && t == s.thread)
                .expect("track registered") as u64;
            let args: &[(&str, f64)] = &[("size", s.size)];
            b.complete_event(
                s.rank as u64,
                tid,
                &s.name,
                Some(s.cat),
                s.start_us,
                s.dur_us,
                if s.size != 0.0 { args } else { &[] },
            );
        }
        // Per-rank counter totals as counter tracks, sampled at the end of
        // the trace so they read as the interval's final tally.
        let end_us = self
            .spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .fold(0.0f64, f64::max);
        for c in &self.counters {
            b.counter_event(
                c.rank as u64,
                "fabric",
                end_us,
                &[
                    ("bytes_sent", c.bytes_sent as f64),
                    ("bytes_recv", c.bytes_recv as f64),
                    ("msgs_sent", c.msgs_sent as f64),
                ],
            );
            b.counter_event(
                c.rank as u64,
                "resilience",
                end_us,
                &[
                    ("timeouts", c.timeouts as f64),
                    ("faults_injected", c.faults_injected as f64),
                    ("corrupt_frames", c.corrupt_frames as f64),
                    ("retries", c.retries as f64),
                    ("degraded_steps", c.degraded_steps as f64),
                    ("stale_epochs", c.stale_epochs as f64),
                ],
            );
            b.counter_event(
                c.rank as u64,
                "replication",
                end_us,
                &[
                    ("replica_bytes_sent", c.replica_bytes_sent as f64),
                    ("replica_quanta", c.replica_quanta as f64),
                    ("failover_activations", c.failover_activations as f64),
                    ("handbacks", c.handbacks as f64),
                ],
            );
            b.counter_event(
                c.rank as u64,
                "durability",
                end_us,
                &[
                    ("snapshot_bytes_written", c.snapshot_bytes_written as f64),
                    ("snapshot_shards", c.snapshot_shards as f64),
                    ("snapshot_generations", c.snapshot_generations as f64),
                    ("snapshot_restores", c.snapshot_restores as f64),
                    (
                        "snapshot_reconstructions",
                        c.snapshot_reconstructions as f64,
                    ),
                    ("snapshot_gc_removed", c.snapshot_gc_removed as f64),
                ],
            );
            b.counter_event(
                c.rank as u64,
                "placement",
                end_us,
                &[
                    ("placement_plans", c.placement_plans as f64),
                    ("placement_replications", c.placement_replications as f64),
                    ("placement_migrations", c.placement_migrations as f64),
                    ("placement_demotions", c.placement_demotions as f64),
                    (
                        "placement_transfer_bytes",
                        c.placement_transfer_bytes as f64,
                    ),
                ],
            );
        }
        // Per-expert routing load and shed as one "routing" track per rank,
        // so Perfetto shows the hot-set shift (and the controller's
        // response on the placement track above) on one timeline.
        for r in &self.routing {
            if r.loads.is_empty() && r.shed == 0 && r.routed == 0 {
                continue;
            }
            let mut names: Vec<String> = (0..r.loads.len()).map(|e| format!("expert{e}")).collect();
            names.push("shed".to_string());
            names.push("routed".to_string());
            let mut values: Vec<f64> = r.loads.iter().map(|&l| l as f64).collect();
            values.push(r.shed as f64);
            values.push(r.routed as f64);
            let args: Vec<(&str, f64)> = names
                .iter()
                .map(String::as_str)
                .zip(values.iter().copied())
                .collect();
            b.counter_event(r.rank as u64, "routing", end_us, &args);
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is global; tests in this module share it and therefore
    // run under a lock to avoid draining each other's spans.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = locked();
        disable();
        {
            let _s = span("test", "invisible");
        }
        enable();
        let t = take();
        assert!(t.spans.iter().all(|s| s.name != "invisible"));
        disable();
    }

    #[test]
    fn nested_spans_record_depth_and_order() {
        let _g = locked();
        enable();
        set_thread_rank(3);
        {
            let _outer = span("step", "outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span_sized("expert", "inner", 64.0);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let t = take();
        disable();
        let outer = t.spans.iter().find(|s| s.name == "outer").expect("outer");
        let inner = t.spans.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.rank, 3);
        assert_eq!(inner.size, 64.0);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1e-6);
        assert!(outer.dur_us >= inner.dur_us);
    }

    #[test]
    fn parent_drop_force_closes_children() {
        let _g = locked();
        enable();
        let parent = span("p", "parent");
        let child = span("c", "child");
        drop(parent); // out-of-order: child still open
        drop(child); // must be a no-op
        let t = take();
        disable();
        let p = t.spans.iter().find(|s| s.name == "parent").expect("parent");
        let c = t.spans.iter().find(|s| s.name == "child").expect("child");
        assert_eq!(t.spans.iter().filter(|s| s.name == "child").count(), 1);
        let p_end = p.start_us + p.dur_us;
        let c_end = c.start_us + c.dur_us;
        assert!(c_end <= p_end + 1e-6, "child closed after parent");
    }

    #[test]
    fn spans_from_other_threads_are_collected() {
        let _g = locked();
        enable();
        std::thread::scope(|scope| {
            for r in 0..2 {
                scope.spawn(move || {
                    set_thread_rank(r);
                    set_thread_name(format!("worker{r}"));
                    let _s = span("work", format!("job{r}"));
                });
            }
        });
        let t = take();
        disable();
        for r in 0..2 {
            let s = t
                .spans
                .iter()
                .find(|s| s.name == format!("job{r}"))
                .expect("job span");
            assert_eq!(s.rank, r);
            assert_eq!(s.thread, format!("worker{r}"));
        }
    }

    #[test]
    fn chrome_export_parses_and_groups_by_rank() {
        let _g = locked();
        enable();
        set_thread_rank(1);
        {
            let _s = span_sized("a2a", "A1\"quoted\"", 10.0);
        }
        let t = take();
        disable();
        let json = t.to_chrome_trace();
        let v = crate::json::parse(&json).expect("valid JSON");
        let events = v.as_array().expect("array");
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("M")
                && e.get("name").and_then(|n| n.as_str()) == Some("process_name")
        }));
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("complete event");
        assert_eq!(x.get("pid").and_then(|p| p.as_f64()), Some(1.0));
        assert_eq!(x.get("cat").and_then(|c| c.as_str()), Some("a2a"));
        assert_eq!(x.get("name").and_then(|n| n.as_str()), Some("A1\"quoted\""));
    }

    #[test]
    fn chrome_export_carries_per_rank_counter_tracks() {
        let _g = locked();
        enable();
        crate::counters::counters_for_rank(7).add_replica_sent(128);
        crate::counters::counters_for_rank(7).add_snapshot_write(256);
        crate::counters::counters_for_rank(7).add_snapshot_generation();
        set_thread_rank(7);
        {
            let _s = span("step", "s0");
        }
        let t = take();
        disable();
        let json = t.to_chrome_trace();
        let v = crate::json::parse(&json).expect("valid JSON");
        let events = v.as_array().expect("array");
        let c = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("C")
                    && e.get("name").and_then(|n| n.as_str()) == Some("replication")
                    && e.get("pid").and_then(|p| p.as_f64()) == Some(7.0)
            })
            .expect("rank 7 replication counter track");
        let args = c.get("args").expect("args");
        assert_eq!(
            args.get("replica_bytes_sent").and_then(|b| b.as_f64()),
            Some(128.0)
        );
        assert_eq!(
            args.get("replica_quanta").and_then(|q| q.as_f64()),
            Some(1.0)
        );
        assert!(args.get("failover_activations").is_some());
        assert!(args.get("handbacks").is_some());
        let d = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("C")
                    && e.get("name").and_then(|n| n.as_str()) == Some("durability")
                    && e.get("pid").and_then(|p| p.as_f64()) == Some(7.0)
            })
            .expect("rank 7 durability counter track");
        let args = d.get("args").expect("args");
        assert_eq!(
            args.get("snapshot_bytes_written").and_then(|b| b.as_f64()),
            Some(256.0)
        );
        assert_eq!(
            args.get("snapshot_generations").and_then(|g| g.as_f64()),
            Some(1.0)
        );
        assert!(args.get("snapshot_restores").is_some());
        assert!(args.get("snapshot_reconstructions").is_some());
        assert!(args.get("snapshot_gc_removed").is_some());
    }

    #[test]
    fn chrome_export_carries_routing_and_placement_tracks() {
        let _g = locked();
        enable();
        let board = crate::counters::routing_for_rank(11);
        board.add_expert_load(0, 40);
        board.add_expert_load(1, 10);
        board.add_shed(2);
        board.add_routed(52);
        crate::counters::counters_for_rank(11).add_placement_plan(1, 0, 1);
        set_thread_rank(11);
        {
            let _s = span("step", "s0");
        }
        let t = take();
        disable();
        let json = t.to_chrome_trace();
        let v = crate::json::parse(&json).expect("valid JSON");
        let events = v.as_array().expect("array");
        let r = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("C")
                    && e.get("name").and_then(|n| n.as_str()) == Some("routing")
                    && e.get("pid").and_then(|p| p.as_f64()) == Some(11.0)
            })
            .expect("rank 11 routing counter track");
        let args = r.get("args").expect("args");
        assert_eq!(args.get("expert0").and_then(|x| x.as_f64()), Some(40.0));
        assert_eq!(args.get("expert1").and_then(|x| x.as_f64()), Some(10.0));
        assert_eq!(args.get("shed").and_then(|x| x.as_f64()), Some(2.0));
        assert_eq!(args.get("routed").and_then(|x| x.as_f64()), Some(52.0));
        let p = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("C")
                    && e.get("name").and_then(|n| n.as_str()) == Some("placement")
                    && e.get("pid").and_then(|p| p.as_f64()) == Some(11.0)
            })
            .expect("rank 11 placement counter track");
        let args = p.get("args").expect("args");
        assert_eq!(
            args.get("placement_plans").and_then(|x| x.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            args.get("placement_demotions").and_then(|x| x.as_f64()),
            Some(1.0)
        );
    }

    #[test]
    fn aggregation_helpers() {
        let _g = locked();
        enable();
        {
            let _a = span("alpha", "a");
            let _b = span("beta", "b");
        }
        let t = take();
        disable();
        assert_eq!(t.count_by_cat("alpha"), 1);
        assert_eq!(t.count_by_cat("beta"), 1);
        assert!(t.cats().contains(&"alpha"));
        assert!(t.total_ms_by_cat("alpha") >= 0.0);
        assert!(t.span_ms() >= 0.0);
    }
}
