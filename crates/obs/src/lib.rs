//! Runtime observability for the functional ScheMoE substrate.
//!
//! The simulator (`schemoe-netsim`) predicts where time goes; this crate
//! *measures* it. It provides three small pieces shared by every layer of
//! the functional cluster — fabric, collectives, overlap executor, MoE
//! layer, trainer:
//!
//! * [`recorder`] — thread-local span stacks. Opening a [`span`] returns an
//!   RAII guard; closing it records a `(category, name, start, duration,
//!   size)` interval attributed to the current thread and rank. Recording
//!   is off by default and gated on one relaxed atomic load, so
//!   instrumented hot paths cost nothing measurable when disabled.
//! * [`counters`] — lock-free per-rank counters (bytes/messages sent,
//!   receive queue-wait, timeout counts). Lookup takes a lock once per
//!   rank; increments are relaxed atomics.
//! * [`chrome`] — the Trace Event Format writer. Both the simulator's
//!   traces ([`schemoe_netsim::chrome`] builds on this module) and the
//!   functional recorder's [`FuncTrace`] serialize through the same
//!   builder, so measured and simulated timelines can be overlaid in
//!   Perfetto.
//! * [`json`] — a dependency-free JSON parser used by trace-validity tests
//!   and the CI bench gate (the workspace's dependency policy admits no
//!   JSON crate).
//!
//! # Span protocol
//!
//! Spans nest per thread. Guards are normally dropped in LIFO order; if a
//! parent guard is dropped while children are still open, the children are
//! force-closed at the parent's close time, so a recorded trace always
//! satisfies *children inside parents* and never contains a negative
//! duration (see the recorder proptests).
//!
//! # Typical use
//!
//! ```
//! schemoe_obs::enable();
//! {
//!     let _step = schemoe_obs::span("step", "step0");
//!     let _fwd = schemoe_obs::span_sized("expert", "E[c0]", 4096.0);
//! }
//! let trace = schemoe_obs::take();
//! assert_eq!(trace.spans.len(), 2);
//! let json = trace.to_chrome_trace();
//! assert!(json.contains("\"ph\":\"X\""));
//! schemoe_obs::disable();
//! ```

pub mod chrome;
pub mod counters;
pub mod json;
pub mod recorder;

pub use counters::{
    counters_for_rank, reset_counters, routing_for_rank, routing_snapshots, CounterSnapshot,
    RankCounters, RoutingBoard, RoutingSnapshot, WaitHistogram, MAX_ROUTING_EXPERTS,
};
pub use recorder::{
    disable, enable, enabled, set_thread_name, set_thread_rank, span, span_sized, take,
    thread_rank, FuncTrace, SpanGuard, SpanRecord,
};
