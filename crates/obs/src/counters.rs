//! Lock-free per-rank counters for fabric traffic.
//!
//! A rank's counter block is fetched once (one registry lock) when its
//! fabric handle is built; every increment afterwards is a relaxed atomic
//! add, and increments are no-ops while the recorder is disabled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

static REGISTRY: Mutex<Vec<Arc<RankCounters>>> = Mutex::new(Vec::new());

/// The traffic counters of one rank.
#[derive(Debug)]
pub struct RankCounters {
    rank: usize,
    bytes_sent: AtomicU64,
    msgs_sent: AtomicU64,
    bytes_recv: AtomicU64,
    recv_wait_ns: AtomicU64,
    timeouts: AtomicU64,
    faults_injected: AtomicU64,
    corrupt_frames: AtomicU64,
    retries: AtomicU64,
    degraded_steps: AtomicU64,
    invalid_ranks: AtomicU64,
    stale_epochs: AtomicU64,
    replica_bytes_sent: AtomicU64,
    replica_quanta: AtomicU64,
    failover_activations: AtomicU64,
    handbacks: AtomicU64,
    snapshot_bytes_written: AtomicU64,
    snapshot_shards: AtomicU64,
    snapshot_generations: AtomicU64,
    snapshot_restores: AtomicU64,
    snapshot_reconstructions: AtomicU64,
    snapshot_gc_removed: AtomicU64,
    placement_plans: AtomicU64,
    placement_replications: AtomicU64,
    placement_migrations: AtomicU64,
    placement_demotions: AtomicU64,
    placement_transfer_bytes: AtomicU64,
}

impl RankCounters {
    /// Counts one outgoing message of `bytes`.
    #[inline]
    pub fn add_send(&self, bytes: usize) {
        if crate::enabled() {
            self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
            self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one delivered message of `bytes`.
    #[inline]
    pub fn add_recv(&self, bytes: usize) {
        if crate::enabled() {
            self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Adds time spent blocked waiting for a matching message.
    #[inline]
    pub fn add_recv_wait(&self, wait: Duration) {
        if crate::enabled() {
            self.recv_wait_ns
                .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Counts one expired receive deadline.
    #[inline]
    pub fn add_timeout(&self) {
        if crate::enabled() {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one fault the installed plan injected on this rank's send
    /// path (drop, delay, corrupt, or kill).
    #[inline]
    pub fn add_fault_injected(&self) {
        if crate::enabled() {
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one received frame that failed its CRC32 check.
    #[inline]
    pub fn add_corrupt_frame(&self) {
        if crate::enabled() {
            self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one retried training step (transient-fault recovery).
    #[inline]
    pub fn add_retry(&self) {
        if crate::enabled() {
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one step completed in degraded mode (dead peers rerouted).
    #[inline]
    pub fn add_degraded_step(&self) {
        if crate::enabled() {
            self.degraded_steps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one send or receive that named a rank outside the topology.
    #[inline]
    pub fn add_invalid_rank(&self) {
        if crate::enabled() {
            self.invalid_ranks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one received frame rejected for carrying a stale membership
    /// epoch (sent before the sender observed the current epoch).
    #[inline]
    pub fn add_stale_epoch(&self) {
        if crate::enabled() {
            self.stale_epochs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one replication frame of `bytes` shipped to the ring buddy.
    #[inline]
    pub fn add_replica_sent(&self, bytes: usize) {
        if crate::enabled() {
            self.replica_bytes_sent
                .fetch_add(bytes as u64, Ordering::Relaxed);
            self.replica_quanta.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one failover activation: this rank began hosting a dead
    /// ward's expert from its stored replica.
    #[inline]
    pub fn add_failover_activation(&self) {
        if crate::enabled() {
            self.failover_activations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one handback: a hosted expert's state streamed back to its
    /// rejoined owner.
    #[inline]
    pub fn add_handback(&self) {
        if crate::enabled() {
            self.handbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one durable snapshot shard of `bytes` committed to disk.
    #[inline]
    pub fn add_snapshot_write(&self, bytes: usize) {
        if crate::enabled() {
            self.snapshot_bytes_written
                .fetch_add(bytes as u64, Ordering::Relaxed);
            self.snapshot_shards.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one snapshot generation committed (manifest written by the
    /// coordinator after all shards acked durable).
    #[inline]
    pub fn add_snapshot_generation(&self) {
        if crate::enabled() {
            self.snapshot_generations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one restore from a durable snapshot generation.
    #[inline]
    pub fn add_snapshot_restore(&self) {
        if crate::enabled() {
            self.snapshot_restores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one restore that rebuilt this rank's expert from a buddy's
    /// on-disk replica because its own shard was missing or corrupt.
    #[inline]
    pub fn add_snapshot_reconstruction(&self) {
        if crate::enabled() {
            self.snapshot_reconstructions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one snapshot generation retired by retention GC.
    #[inline]
    pub fn add_snapshot_gc(&self) {
        if crate::enabled() {
            self.snapshot_gc_removed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one committed placement plan, with its replica count (server
    /// list entries past each expert's first), migrated-home count, and
    /// gray demotions.
    #[inline]
    pub fn add_placement_plan(&self, replications: u64, migrations: u64, demotions: u64) {
        if crate::enabled() {
            self.placement_plans.fetch_add(1, Ordering::Relaxed);
            self.placement_replications
                .fetch_add(replications, Ordering::Relaxed);
            self.placement_migrations
                .fetch_add(migrations, Ordering::Relaxed);
            self.placement_demotions
                .fetch_add(demotions, Ordering::Relaxed);
        }
    }

    /// Counts expert-state bytes streamed for a placement transfer.
    #[inline]
    pub fn add_placement_transfer(&self, bytes: usize) {
        if crate::enabled() {
            self.placement_transfer_bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the totals.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            rank: self.rank,
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            recv_wait_ns: self.recv_wait_ns.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded_steps: self.degraded_steps.load(Ordering::Relaxed),
            invalid_ranks: self.invalid_ranks.load(Ordering::Relaxed),
            stale_epochs: self.stale_epochs.load(Ordering::Relaxed),
            replica_bytes_sent: self.replica_bytes_sent.load(Ordering::Relaxed),
            replica_quanta: self.replica_quanta.load(Ordering::Relaxed),
            failover_activations: self.failover_activations.load(Ordering::Relaxed),
            handbacks: self.handbacks.load(Ordering::Relaxed),
            snapshot_bytes_written: self.snapshot_bytes_written.load(Ordering::Relaxed),
            snapshot_shards: self.snapshot_shards.load(Ordering::Relaxed),
            snapshot_generations: self.snapshot_generations.load(Ordering::Relaxed),
            snapshot_restores: self.snapshot_restores.load(Ordering::Relaxed),
            snapshot_reconstructions: self.snapshot_reconstructions.load(Ordering::Relaxed),
            snapshot_gc_removed: self.snapshot_gc_removed.load(Ordering::Relaxed),
            placement_plans: self.placement_plans.load(Ordering::Relaxed),
            placement_replications: self.placement_replications.load(Ordering::Relaxed),
            placement_migrations: self.placement_migrations.load(Ordering::Relaxed),
            placement_demotions: self.placement_demotions.load(Ordering::Relaxed),
            placement_transfer_bytes: self.placement_transfer_bytes.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.msgs_sent.store(0, Ordering::Relaxed);
        self.bytes_recv.store(0, Ordering::Relaxed);
        self.recv_wait_ns.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.faults_injected.store(0, Ordering::Relaxed);
        self.corrupt_frames.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.degraded_steps.store(0, Ordering::Relaxed);
        self.invalid_ranks.store(0, Ordering::Relaxed);
        self.stale_epochs.store(0, Ordering::Relaxed);
        self.replica_bytes_sent.store(0, Ordering::Relaxed);
        self.replica_quanta.store(0, Ordering::Relaxed);
        self.failover_activations.store(0, Ordering::Relaxed);
        self.handbacks.store(0, Ordering::Relaxed);
        self.snapshot_bytes_written.store(0, Ordering::Relaxed);
        self.snapshot_shards.store(0, Ordering::Relaxed);
        self.snapshot_generations.store(0, Ordering::Relaxed);
        self.snapshot_restores.store(0, Ordering::Relaxed);
        self.snapshot_reconstructions.store(0, Ordering::Relaxed);
        self.snapshot_gc_removed.store(0, Ordering::Relaxed);
        self.placement_plans.store(0, Ordering::Relaxed);
        self.placement_replications.store(0, Ordering::Relaxed);
        self.placement_migrations.store(0, Ordering::Relaxed);
        self.placement_demotions.store(0, Ordering::Relaxed);
        self.placement_transfer_bytes.store(0, Ordering::Relaxed);
    }
}

/// Plain-value copy of one rank's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// The rank the counters belong to.
    pub rank: usize,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Total payload bytes received.
    pub bytes_recv: u64,
    /// Nanoseconds spent blocked in receives (queue wait).
    pub recv_wait_ns: u64,
    /// Receive deadlines that expired.
    pub timeouts: u64,
    /// Faults the installed plan injected on this rank's send path.
    pub faults_injected: u64,
    /// Received frames that failed their CRC32 check.
    pub corrupt_frames: u64,
    /// Training steps retried after a transient fault.
    pub retries: u64,
    /// Steps completed in degraded mode (dead peers rerouted).
    pub degraded_steps: u64,
    /// Sends/receives that named a rank outside the topology.
    pub invalid_ranks: u64,
    /// Received frames rejected for carrying a stale membership epoch.
    pub stale_epochs: u64,
    /// Replication payload bytes shipped to the ring buddy.
    pub replica_bytes_sent: u64,
    /// Replication quanta (frames) shipped to the ring buddy.
    pub replica_quanta: u64,
    /// Failover activations: hosted experts brought up from a replica.
    pub failover_activations: u64,
    /// Hosted-expert handbacks streamed to rejoined owners.
    pub handbacks: u64,
    /// Durable snapshot bytes committed to disk.
    pub snapshot_bytes_written: u64,
    /// Durable snapshot shards committed to disk.
    pub snapshot_shards: u64,
    /// Snapshot generations committed (coordinator manifests).
    pub snapshot_generations: u64,
    /// Restores performed from a durable snapshot generation.
    pub snapshot_restores: u64,
    /// Restores that rebuilt the expert from a buddy's on-disk replica.
    pub snapshot_reconstructions: u64,
    /// Snapshot generations retired by retention GC.
    pub snapshot_gc_removed: u64,
    /// Placement plans committed by the load-aware controller.
    pub placement_plans: u64,
    /// Expert replicas added by committed placement plans.
    pub placement_replications: u64,
    /// Expert homes moved off their static rank by committed plans.
    pub placement_migrations: u64,
    /// Gray-rank demotions decided by committed plans.
    pub placement_demotions: u64,
    /// Expert-state bytes streamed for placement transfers.
    pub placement_transfer_bytes: u64,
}

/// The counter block for `rank`, creating it on first request.
pub fn counters_for_rank(rank: usize) -> Arc<RankCounters> {
    let mut reg = REGISTRY.lock().expect("counter registry poisoned");
    if let Some(c) = reg.iter().find(|c| c.rank == rank) {
        return Arc::clone(c);
    }
    let c = Arc::new(RankCounters {
        rank,
        bytes_sent: AtomicU64::new(0),
        msgs_sent: AtomicU64::new(0),
        bytes_recv: AtomicU64::new(0),
        recv_wait_ns: AtomicU64::new(0),
        timeouts: AtomicU64::new(0),
        faults_injected: AtomicU64::new(0),
        corrupt_frames: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        degraded_steps: AtomicU64::new(0),
        invalid_ranks: AtomicU64::new(0),
        stale_epochs: AtomicU64::new(0),
        replica_bytes_sent: AtomicU64::new(0),
        replica_quanta: AtomicU64::new(0),
        failover_activations: AtomicU64::new(0),
        handbacks: AtomicU64::new(0),
        snapshot_bytes_written: AtomicU64::new(0),
        snapshot_shards: AtomicU64::new(0),
        snapshot_generations: AtomicU64::new(0),
        snapshot_restores: AtomicU64::new(0),
        snapshot_reconstructions: AtomicU64::new(0),
        snapshot_gc_removed: AtomicU64::new(0),
        placement_plans: AtomicU64::new(0),
        placement_replications: AtomicU64::new(0),
        placement_migrations: AtomicU64::new(0),
        placement_demotions: AtomicU64::new(0),
        placement_transfer_bytes: AtomicU64::new(0),
    });
    reg.push(Arc::clone(&c));
    c
}

/// Snapshots every rank's counters, sorted by rank.
pub fn counter_snapshots() -> Vec<CounterSnapshot> {
    let mut snaps: Vec<CounterSnapshot> = REGISTRY
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|c| c.snapshot())
        .collect();
    snaps.sort_by_key(|s| s.rank);
    snaps
}

/// Zeroes every rank's counters (start of a measured interval), routing
/// boards included.
pub fn reset_counters() {
    for c in REGISTRY.lock().expect("counter registry poisoned").iter() {
        c.reset();
    }
    for b in ROUTING.lock().expect("routing registry poisoned").iter() {
        b.reset();
    }
}

static ROUTING: Mutex<Vec<Arc<RoutingBoard>>> = Mutex::new(Vec::new());

/// Per-expert routing loads a routing board can track; experts past this
/// index are ignored (traces stay bounded however large the layer is).
pub const MAX_ROUTING_EXPERTS: usize = 64;

/// One rank's per-expert routing tallies: tokens the gate admitted to each
/// expert plus tokens shed at the capacity edge. Gated on the recorder
/// switch like [`RankCounters`]; the placement policy keeps its own
/// (always-on) accumulators inside the layer, this board only feeds the
/// "routing" chrome counter track.
#[derive(Debug)]
pub struct RoutingBoard {
    rank: usize,
    loads: [AtomicU64; MAX_ROUTING_EXPERTS],
    shed: AtomicU64,
    routed: AtomicU64,
}

impl RoutingBoard {
    /// Adds `tokens` admitted to expert `e` (ignored past the cap).
    #[inline]
    pub fn add_expert_load(&self, e: usize, tokens: u64) {
        if crate::enabled() {
            if let Some(slot) = self.loads.get(e) {
                slot.fetch_add(tokens, Ordering::Relaxed);
            }
        }
    }

    /// Adds `tokens` shed at the capacity edge.
    #[inline]
    pub fn add_shed(&self, tokens: u64) {
        if crate::enabled() {
            self.shed.fetch_add(tokens, Ordering::Relaxed);
        }
    }

    /// Adds `tokens` total routed assignments.
    #[inline]
    pub fn add_routed(&self, tokens: u64) {
        if crate::enabled() {
            self.routed.fetch_add(tokens, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy, with the load vector trimmed past the last
    /// non-zero expert.
    pub fn snapshot(&self) -> RoutingSnapshot {
        let mut loads: Vec<u64> = self
            .loads
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect();
        while loads.last() == Some(&0) {
            loads.pop();
        }
        RoutingSnapshot {
            rank: self.rank,
            loads,
            shed: self.shed.load(Ordering::Relaxed),
            routed: self.routed.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for l in &self.loads {
            l.store(0, Ordering::Relaxed);
        }
        self.shed.store(0, Ordering::Relaxed);
        self.routed.store(0, Ordering::Relaxed);
    }
}

/// Plain-value copy of one rank's routing board.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutingSnapshot {
    /// The rank the tallies belong to.
    pub rank: usize,
    /// Tokens admitted per expert, trimmed past the last non-zero entry.
    pub loads: Vec<u64>,
    /// Tokens shed at the capacity edge.
    pub shed: u64,
    /// Total routed token assignments.
    pub routed: u64,
}

/// The routing board for `rank`, creating it on first request.
pub fn routing_for_rank(rank: usize) -> Arc<RoutingBoard> {
    let mut reg = ROUTING.lock().expect("routing registry poisoned");
    if let Some(b) = reg.iter().find(|b| b.rank == rank) {
        return Arc::clone(b);
    }
    let b = Arc::new(RoutingBoard {
        rank,
        loads: std::array::from_fn(|_| AtomicU64::new(0)),
        shed: AtomicU64::new(0),
        routed: AtomicU64::new(0),
    });
    reg.push(Arc::clone(&b));
    b
}

/// Snapshots every rank's routing board, sorted by rank.
pub fn routing_snapshots() -> Vec<RoutingSnapshot> {
    let mut snaps: Vec<RoutingSnapshot> = ROUTING
        .lock()
        .expect("routing registry poisoned")
        .iter()
        .map(|b| b.snapshot())
        .collect();
    snaps.sort_by_key(|s| s.rank);
    snaps
}

/// A lock-free log2-bucketed histogram of wait durations.
///
/// Bucket `i` counts waits in `[2^i, 2^(i+1))` nanoseconds (bucket 0 also
/// absorbs sub-nanosecond waits); 64 buckets cover every representable
/// `u64` nanosecond count. Quantiles come back as the *upper* edge of the
/// covering bucket, so deadlines derived from them always err on the long
/// side — a straggler gets extra slack, never less.
///
/// Unlike [`RankCounters`] this is NOT gated on the recorder switch:
/// adaptive receive deadlines need wait samples even when tracing is off.
/// The fabric only records into it while a fault plan is installed, which
/// keeps the no-plan fast path free of `Instant::now` calls.
#[derive(Debug)]
pub struct WaitHistogram {
    buckets: [AtomicU64; 64],
}

impl Default for WaitHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        WaitHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observed wait.
    #[inline]
    pub fn record(&self, wait: Duration) {
        let ns = wait.as_nanos().min(u128::from(u64::MAX)) as u64;
        let idx = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded waits.
    pub fn samples(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bucket edge covering quantile `q` (clamped to `[0, 1]`),
    /// or `None` when nothing has been recorded.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut acc = 0u64;
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let upper = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                return Some(Duration::from_nanos(upper));
            }
        }
        unreachable!("cumulative count reaches the total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_are_gated_on_the_recorder_switch() {
        let c = counters_for_rank(901);
        crate::disable();
        c.add_send(100);
        assert_eq!(c.snapshot().bytes_sent, 0);
        crate::enable();
        c.add_send(100);
        c.add_recv(40);
        c.add_recv_wait(Duration::from_micros(5));
        c.add_timeout();
        c.add_fault_injected();
        c.add_corrupt_frame();
        c.add_retry();
        c.add_degraded_step();
        c.add_invalid_rank();
        c.add_stale_epoch();
        c.add_replica_sent(64);
        c.add_failover_activation();
        c.add_handback();
        c.add_snapshot_write(128);
        c.add_snapshot_generation();
        c.add_snapshot_restore();
        c.add_snapshot_reconstruction();
        c.add_snapshot_gc();
        crate::disable();
        let s = c.snapshot();
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.msgs_sent, 1);
        assert_eq!(s.bytes_recv, 40);
        assert_eq!(s.recv_wait_ns, 5_000);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.corrupt_frames, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.degraded_steps, 1);
        assert_eq!(s.invalid_ranks, 1);
        assert_eq!(s.stale_epochs, 1);
        assert_eq!(s.replica_bytes_sent, 64);
        assert_eq!(s.replica_quanta, 1);
        assert_eq!(s.failover_activations, 1);
        assert_eq!(s.handbacks, 1);
        assert_eq!(s.snapshot_bytes_written, 128);
        assert_eq!(s.snapshot_shards, 1);
        assert_eq!(s.snapshot_generations, 1);
        assert_eq!(s.snapshot_restores, 1);
        assert_eq!(s.snapshot_reconstructions, 1);
        assert_eq!(s.snapshot_gc_removed, 1);
        c.reset();
        assert_eq!(c.snapshot().replica_bytes_sent, 0);
        assert_eq!(c.snapshot().snapshot_bytes_written, 0);
        assert_eq!(c.snapshot().snapshot_shards, 0);
        assert_eq!(c.snapshot().bytes_sent, 0);
    }

    #[test]
    fn wait_histogram_quantiles_bound_the_samples_from_above() {
        let h = WaitHistogram::new();
        assert_eq!(h.quantile(0.99), None);
        // 99 fast waits (~1 µs) and one slow outlier (~1 ms).
        for _ in 0..99 {
            h.record(Duration::from_micros(1));
        }
        h.record(Duration::from_millis(1));
        assert_eq!(h.samples(), 100);
        // The median bucket upper-bounds 1 µs but sits far below 1 ms.
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= Duration::from_micros(1) && p50 < Duration::from_micros(10));
        // The tail quantile covers the outlier.
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 >= Duration::from_millis(1));
        // q is clamped; zero maps to the first non-empty bucket.
        assert!(h.quantile(-3.0).unwrap() <= p50);
        assert_eq!(h.quantile(7.5), h.quantile(1.0));
    }

    #[test]
    fn wait_histogram_handles_extreme_durations() {
        let h = WaitHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(u64::MAX / 1_000_000_000));
        assert_eq!(h.samples(), 2);
        assert!(h.quantile(1.0).unwrap() >= Duration::from_secs(1 << 32));
    }

    #[test]
    fn registry_returns_the_same_block_per_rank() {
        let a = counters_for_rank(902);
        let b = counters_for_rank(902);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(counter_snapshots().iter().any(|s| s.rank == 902));
    }

    #[test]
    fn routing_board_tracks_loads_shed_and_trims() {
        let b = routing_for_rank(903);
        crate::enable();
        b.add_expert_load(0, 10);
        b.add_expert_load(2, 5);
        b.add_expert_load(MAX_ROUTING_EXPERTS + 7, 99); // silently ignored
        b.add_shed(3);
        b.add_routed(18);
        crate::disable();
        b.add_expert_load(0, 1_000); // gated off
        let s = b.snapshot();
        assert_eq!(s.rank, 903);
        assert_eq!(s.loads, vec![10, 0, 5]);
        assert_eq!(s.shed, 3);
        assert_eq!(s.routed, 18);
        assert!(routing_snapshots().iter().any(|s| s.rank == 903));
        b.reset();
        assert!(b.snapshot().loads.is_empty());
        assert_eq!(b.snapshot().shed, 0);
    }

    #[test]
    fn placement_counters_accumulate_and_reset() {
        let c = counters_for_rank(904);
        crate::enable();
        c.add_placement_plan(2, 1, 1);
        c.add_placement_plan(0, 0, 0);
        c.add_placement_transfer(4096);
        crate::disable();
        let s = c.snapshot();
        assert_eq!(s.placement_plans, 2);
        assert_eq!(s.placement_replications, 2);
        assert_eq!(s.placement_migrations, 1);
        assert_eq!(s.placement_demotions, 1);
        assert_eq!(s.placement_transfer_bytes, 4096);
        c.reset();
        assert_eq!(c.snapshot().placement_plans, 0);
        assert_eq!(c.snapshot().placement_transfer_bytes, 0);
    }
}
