//! The shared Trace Event Format writer.
//!
//! Both trace producers — the discrete-event simulator
//! (`schemoe_netsim::chrome`) and the functional recorder
//! ([`crate::FuncTrace::to_chrome_trace`]) — serialize through this
//! builder, so their outputs are structurally identical and can be
//! overlaid in one Perfetto session. JSON is written by hand: the event
//! format needs only strings and numbers, and the workspace's dependency
//! policy admits no JSON crate.

use std::fmt::Write as _;

/// Incrementally builds a Trace Event Format JSON array.
///
/// Emit metadata (process/thread names) and complete events in any order;
/// [`finish`](Self::finish) closes the document. Timestamps and durations
/// are microseconds, matching `chrome://tracing`'s expectations.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

impl ChromeTraceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names process `pid` in the trace UI.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Names thread `tid` of process `pid` in the trace UI.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Adds one complete (`"ph":"X"`) event.
    ///
    /// `ts_us`/`dur_us` are microseconds; `cat` is the optional category
    /// string; `args` become numeric members of the event's `args` object.
    // The parameter list mirrors the event format's fields one-to-one;
    // bundling them into a struct would just rename the same eight things.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_event(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: Option<&str>,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, f64)],
    ) {
        let mut e = format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\
             \"ts\":{ts_us:.3},\"dur\":{dur_us:.3}",
            escape(name)
        );
        if let Some(cat) = cat {
            let _ = write!(e, ",\"cat\":\"{}\"", escape(cat));
        }
        if !args.is_empty() {
            e.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    e.push(',');
                }
                let _ = write!(e, "\"{}\":{}", escape(k), fmt_num(*v));
            }
            e.push('}');
        }
        e.push('}');
        self.events.push(e);
    }

    /// Adds one counter (`"ph":"C"`) event: a named set of numeric series
    /// sampled at `ts_us`, rendered by Perfetto as stacked counter tracks.
    pub fn counter_event(&mut self, pid: u64, name: &str, ts_us: f64, args: &[(&str, f64)]) {
        let mut e = format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"name\":\"{}\",\"ts\":{ts_us:.3},\"args\":{{",
            escape(name)
        );
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                e.push(',');
            }
            let _ = write!(e, "\"{}\":{}", escape(k), fmt_num(*v));
        }
        e.push_str("}}");
        self.events.push(e);
    }

    /// Closes and returns the JSON document.
    pub fn finish(self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str("  ");
            out.push_str(e);
            out.push_str(if i + 1 < self.events.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]\n");
        out
    }
}

/// Formats a float as a JSON number (JSON has no NaN/Infinity; clamp to 0).
fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_parseable_json() {
        let mut b = ChromeTraceBuilder::new();
        b.process_name(0, "rank0");
        b.thread_name(0, 0, "main \"thread\"");
        b.complete_event(0, 0, "E[c0]", Some("expert"), 10.5, 3.25, &[("size", 64.0)]);
        b.complete_event(0, 0, "plain", None, 20.0, 1.0, &[]);
        let json = b.finish();
        let v = crate::json::parse(&json).expect("valid JSON");
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 4);
        let x = &arr[2];
        assert_eq!(x.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(x.get("ts").and_then(|t| t.as_f64()), Some(10.5));
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("size"))
                .and_then(|s| s.as_f64()),
            Some(64.0)
        );
    }

    #[test]
    fn counter_events_parse_with_their_series() {
        let mut b = ChromeTraceBuilder::new();
        b.counter_event(2, "replication", 42.0, &[("replica_quanta", 3.0)]);
        let json = b.finish();
        let v = crate::json::parse(&json).expect("valid JSON");
        let e = &v.as_array().expect("array")[0];
        assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("C"));
        assert_eq!(e.get("pid").and_then(|p| p.as_f64()), Some(2.0));
        assert_eq!(e.get("name").and_then(|n| n.as_str()), Some("replication"));
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("replica_quanta"))
                .and_then(|q| q.as_f64()),
            Some(3.0)
        );
    }

    #[test]
    fn escape_handles_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_builder_is_an_empty_array() {
        let json = ChromeTraceBuilder::new().finish();
        let v = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(v.as_array().map(Vec::len), Some(0));
    }

    #[test]
    fn non_finite_args_are_clamped() {
        assert_eq!(fmt_num(f64::NAN), "0");
        assert_eq!(fmt_num(f64::INFINITY), "0");
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(3.5), "3.5");
    }
}
