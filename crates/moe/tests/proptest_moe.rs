//! Property-based tests for MoE routing and distributed equivalence.

use proptest::prelude::*;
use schemoe_cluster::{Fabric, Topology};
use schemoe_collectives::{AllToAll, NcclA2A, PipeA2A, TwoDimHierA2A};
use schemoe_compression::{Compressor, Fp16Compressor, NoCompression};
use schemoe_moe::{DistributedMoeLayer, Expert, FfExpert, MoeLayer, TopKGate};
use schemoe_tensor::nn::Module;
use schemoe_tensor::rng::{self, seeded};
use schemoe_tensor::Tensor;

const M: usize = 6;
const H: usize = 8;

fn make_expert(e: usize) -> Box<dyn Expert> {
    Box::new(FfExpert::new(M, H, &mut seeded(2000 + e as u64)))
}

fn make_gate(experts: usize, k: usize, f: f64) -> TopKGate {
    TopKGate::new(M, experts, k, f, &mut seeded(777))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Routing invariants hold for arbitrary shapes: capacity respected,
    /// ≤ k assignments per token, slot order = token order, accounting of
    /// drops consistent.
    #[test]
    fn routing_invariants(
        n in 1usize..40,
        e in 1usize..8,
        k_raw in 1usize..3,
        f in 0.25f64..4.0,
        seed in 0u64..500,
    ) {
        let k = k_raw.min(e);
        let mut gate = TopKGate::new(M, e, k, f, &mut seeded(seed));
        let x = rng::uniform(&[n, M], 1.0, &mut seeded(seed + 1));
        let d = gate.forward(&x);
        let mut admitted = 0usize;
        for slots in &d.expert_slots {
            prop_assert!(slots.len() <= d.capacity);
            let toks: Vec<usize> = slots.iter().map(|s| s.0).collect();
            let mut sorted = toks.clone();
            sorted.sort_unstable();
            prop_assert_eq!(toks, sorted);
            admitted += slots.len();
        }
        for a in &d.assignments {
            prop_assert!(a.len() <= k);
        }
        prop_assert_eq!(admitted + d.dropped, n * k);
    }

    /// The distributed layer equals the per-shard single-process layer for
    /// every A2A algorithm, under a lossless and an elementwise-lossy
    /// codec.
    #[test]
    fn distributed_matches_reference_for_all_a2a(
        nodes in 1usize..3,
        gpus in 1usize..3,
        n_local in 1usize..6,
        k_raw in 1usize..3,
        alg_idx in 0usize..3,
        codec_idx in 0usize..2,
        seed in 0u64..200,
    ) {
        let topo = Topology::new(nodes, gpus);
        let p = topo.world_size();
        let k = k_raw.min(p);
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(seed));
        let mk_alg = move || -> Box<dyn AllToAll> {
            match alg_idx {
                0 => Box::new(NcclA2A),
                1 => Box::new(PipeA2A::new()),
                _ => Box::new(TwoDimHierA2A),
            }
        };
        let mk_codec = move || -> Box<dyn Compressor> {
            match codec_idx {
                0 => Box::new(NoCompression),
                _ => Box::new(Fp16Compressor),
            }
        };
        let outs = Fabric::run(topo, |mut h| {
            let me = h.rank();
            let mut layer = DistributedMoeLayer::new(
                make_gate(p, k, 8.0),
                vec![make_expert(me)],
                mk_codec(),
                mk_alg(),
            );
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            layer.forward(&mut h, &x, 0).unwrap()
        });
        for me in 0..p {
            let experts: Vec<Box<dyn Expert>> = (0..p).map(make_expert).collect();
            let mut reference = MoeLayer::from_parts(make_gate(p, k, 8.0), experts);
            if codec_idx == 1 {
                reference = reference.with_compressor(Box::new(Fp16Compressor));
            }
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let want = reference.forward(&x);
            let diff = outs[me].max_abs_diff(&want).unwrap();
            prop_assert!(diff < 2e-4, "rank {} diverged by {}", me, diff);
        }
    }

    /// The overlapped (pipelined) forward is bit-identical to the serial
    /// forward for arbitrary topologies, degrees, and codecs — and its
    /// backward produces bit-identical input gradients.
    #[test]
    fn overlapped_forward_bit_identical_to_serial(
        nodes in 1usize..3,
        gpus in 1usize..3,
        n_local in 1usize..6,
        k_raw in 1usize..3,
        degree in 2usize..6,
        codec_idx in 0usize..2,
        seed in 0u64..200,
    ) {
        let topo = Topology::new(nodes, gpus);
        let p = topo.world_size();
        let k = k_raw.min(p);
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(seed));
        let mk_codec = move || -> Box<dyn Compressor> {
            match codec_idx {
                0 => Box::new(NoCompression),
                _ => Box::new(Fp16Compressor),
            }
        };
        let run = |deg: usize| {
            Fabric::run(topo, |mut h| {
                let me = h.rank();
                let mut layer = DistributedMoeLayer::new(
                    make_gate(p, k, 8.0),
                    vec![make_expert(me)],
                    mk_codec(),
                    Box::new(NcclA2A),
                )
                .with_partition_degree(deg)
                .with_recv_timeout(std::time::Duration::from_secs(30));
                let mut x = Tensor::zeros(&[n_local, M]);
                for r in 0..n_local {
                    x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
                }
                let y = layer.forward(&mut h, &x, 0).unwrap();
                let dx = layer.backward(&mut h, &y).unwrap();
                (y, dx)
            })
        };
        let serial = run(1);
        let overlapped = run(degree);
        for me in 0..p {
            let ydiff = overlapped[me].0.max_abs_diff(&serial[me].0).unwrap();
            prop_assert!(ydiff == 0.0, "rank {} forward diverged by {}", me, ydiff);
            let dxdiff = overlapped[me].1.max_abs_diff(&serial[me].1).unwrap();
            prop_assert!(dxdiff == 0.0, "rank {} backward diverged by {}", me, dxdiff);
        }
    }

    /// The MoE output of dropped tokens is exactly zero and of admitted
    /// tokens is a convex-ish combination bounded by expert outputs.
    #[test]
    fn dropped_tokens_are_zero(
        n in 4usize..24,
        seed in 0u64..300,
    ) {
        let mut layer = MoeLayer::new(M, H, 3, 1, 0.34, &mut seeded(seed));
        let x = rng::uniform(&[n, M], 1.0, &mut seeded(seed + 5));
        let y = layer.forward(&x);
        let d = layer.last_decision().unwrap();
        for (t, a) in d.assignments.iter().enumerate() {
            if a.is_empty() {
                prop_assert!(y.row(t).iter().all(|&v| v == 0.0));
            }
        }
    }
}
