//! The mixture-of-experts layer: gating, dispatch/combine, experts.
//!
//! Implements the paper's §2.1 MoE structure end to end:
//!
//! * [`TopKGate`] — a learnable linear router with softmax probabilities,
//!   top-`k` selection, and capacity-factor token dropping (Eq. 1), plus
//!   the Switch-Transformer auxiliary load-balancing loss.
//! * [`FfExpert`] — the expert abstraction (`AbsExpert`): a two-layer
//!   feed-forward network with hand-written backward.
//! * [`MoeLayer`] — a single-process MoE layer (all experts local) with a
//!   full forward/backward. An optional [`Compressor`] round-trips the
//!   dispatched tokens and expert outputs through the codec, reproducing
//!   exactly the numeric effect of compressed all-to-alls — this is the
//!   engine behind the Table 6 convergence study.
//! * [`DistributedMoeLayer`] — the same layer executed across fabric ranks
//!   with expert parallelism: tokens are really serialized, compressed,
//!   exchanged through a pluggable [`AllToAll`] algorithm, decompressed,
//!   computed by the owning rank's experts, and combined back. Tested for
//!   equivalence against [`MoeLayer`].

pub mod distributed;
pub mod expert;
pub mod gating;
pub mod layer;
pub mod placement;
pub mod replication;
pub mod routing;

pub use distributed::{allreduce_inplace, allreduce_live, DistributedMoeLayer, GradAllreduce};
pub use expert::{Expert, FfExpert};
pub use gating::{GateDecision, OverflowPolicy, TopKGate};
pub use layer::MoeLayer;
pub use placement::{
    decide_plan, gray_ranks, LoadReport, Placement, PlacementError, PlacementPlan, PolicyConfig,
};
pub use replication::{DeltaEncoder, ReplicaError, ReplicaStore, REPLICA_CHUNK};
pub use routing::{
    balance_stats, BalanceStats, ExpertChoiceRouter, RandomRouter, Router, TokenChoiceRouter,
};

/// Computes the expert capacity of Eq. 1: `C = ceil(f · k · tokens / E)`.
///
/// The ceiling keeps at least one slot per expert for any positive input.
pub fn expert_capacity(capacity_factor: f64, k: usize, tokens: usize, experts: usize) -> usize {
    assert!(experts > 0, "at least one expert required");
    let c = (capacity_factor * k as f64 * tokens as f64 / experts as f64).ceil() as usize;
    c.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_eq1() {
        // f=1.0, k=1, 64 tokens, 8 experts -> 8 slots each.
        assert_eq!(expert_capacity(1.0, 1, 64, 8), 8);
        // f=1.25 adds headroom.
        assert_eq!(expert_capacity(1.25, 1, 64, 8), 10);
        // k=2 doubles assignments.
        assert_eq!(expert_capacity(1.0, 2, 64, 8), 16);
    }

    #[test]
    fn capacity_is_at_least_one() {
        assert_eq!(expert_capacity(1.0, 1, 1, 64), 1);
    }

    #[test]
    fn capacity_with_fewer_tokens_than_experts_never_hits_zero() {
        // Every live expert keeps a slot even when tokens << experts and
        // the raw Eq. 1 value would floor to zero.
        for tokens in 1..8 {
            for experts in [8, 16, 64] {
                assert_eq!(expert_capacity(1.0, 1, tokens, experts), 1);
            }
        }
    }

    #[test]
    fn capacity_below_one_factor_sheds_but_never_to_zero() {
        // f < 1.0 is the shed regime: capacity shrinks proportionally...
        assert_eq!(expert_capacity(0.5, 1, 64, 8), 4);
        assert_eq!(expert_capacity(0.75, 2, 64, 8), 12);
        // ...but the floor holds even for tiny factors.
        assert_eq!(expert_capacity(0.01, 1, 8, 8), 1);
        assert_eq!(expert_capacity(0.001, 1, 1, 1), 1);
    }

    #[test]
    fn capacity_rounds_up_at_the_edge() {
        // 1.0 * 1 * 65 / 8 = 8.125 -> ceil 9: the fractional slot is
        // granted, not truncated (truncation would shed deterministically
        // admissible tokens).
        assert_eq!(expert_capacity(1.0, 1, 65, 8), 9);
        // An exact integer must NOT round up further.
        assert_eq!(expert_capacity(1.0, 1, 64, 8), 8);
        // Capacity factors slightly under an integer boundary still ceil.
        assert_eq!(expert_capacity(0.99, 1, 64, 8), 8);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn capacity_rejects_zero_experts() {
        expert_capacity(1.0, 1, 64, 0);
    }
}
