//! The expert abstraction (`AbsExpert`) and its feed-forward default.

use rand::rngs::SmallRng;
use schemoe_tensor::nn::{ActivationKind, FeedForward, Module, Param};
use schemoe_tensor::Tensor;

/// The `AbsExpert` abstraction: a differentiable token transformer.
///
/// The paper notes experts need no customization beyond the default
/// fflayer (§3.1) but abstracts them anyway for profiling and scheduling;
/// we keep the trait so alternative expert bodies can be plugged in.
pub trait Expert: Send {
    /// Transforms `[n, M]` tokens, caching for backward.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Backward pass for the most recent forward.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visits learnable parameters.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Forward FLOPs for `n` tokens (used by the profiler/cost models).
    fn forward_flops(&self, n: usize) -> u64;

    /// Model dimension `M`.
    fn model_dim(&self) -> usize;
}

/// The default expert: a two-layer feed-forward network (`M → H → M`).
pub struct FfExpert {
    ff: FeedForward,
}

impl FfExpert {
    /// Creates an expert with hidden dim `h` and GELU activation.
    pub fn new(m: usize, h: usize, rng: &mut SmallRng) -> Self {
        FfExpert {
            ff: FeedForward::new(m, h, ActivationKind::Gelu, rng),
        }
    }

    /// Hidden dimension `H`.
    pub fn hidden_dim(&self) -> usize {
        self.ff.hidden_dim()
    }
}

impl Expert for FfExpert {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.ff.forward(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.ff.backward(dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ff.visit_params(f);
    }

    fn forward_flops(&self, n: usize) -> u64 {
        self.ff.forward_flops(n)
    }

    fn model_dim(&self) -> usize {
        self.ff.model_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_tensor::rng;

    #[test]
    fn expert_round_trips_shapes() {
        let mut e = FfExpert::new(8, 16, &mut rng::seeded(1));
        let x = rng::uniform(&[5, 8], 1.0, &mut rng::seeded(2));
        let y = e.forward(&x);
        assert_eq!(y.dims(), &[5, 8]);
        let dx = e.backward(&y);
        assert_eq!(dx.dims(), &[5, 8]);
        assert_eq!(e.model_dim(), 8);
        assert_eq!(e.hidden_dim(), 16);
    }

    #[test]
    fn empty_batch_is_supported() {
        // Capacity-dropped experts may receive zero tokens; the expert must
        // handle an empty batch without special casing upstream.
        let mut e = FfExpert::new(4, 8, &mut rng::seeded(3));
        let x = Tensor::zeros(&[0, 4]);
        let y = e.forward(&x);
        assert_eq!(y.dims(), &[0, 4]);
        let dx = e.backward(&y);
        assert_eq!(dx.dims(), &[0, 4]);
    }
}
