//! Expert-parallel MoE execution over the rank fabric.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use schemoe_cluster::{FabricError, RankHandle};
use schemoe_collectives::{
    chunk_tag, lanes, reference_all_to_all, reference_all_to_all_timeout, AllToAll,
    MAX_PARTITION_DEGREE, TAG_STRIDE,
};
use schemoe_compression::Compressor;
use schemoe_obs as obs;
use schemoe_scheduler::executor::{run_overlapped_cancellable, ExecTask, Worker};
use schemoe_tensor::nn::Param;
use schemoe_tensor::Tensor;

use crate::expert::Expert;
use crate::gating::{GateDecision, TopKGate};
use crate::placement::Placement;

/// An expert-parallel MoE layer: every rank owns `experts_per_rank`
/// experts and a gate replica, tokens travel through two all-to-alls.
///
/// Forward (paper §2.2, Fig. 2): the gate routes local tokens to *global*
/// experts; per-destination payloads are serialized, compressed with the
/// configured [`Compressor`], exchanged through the configured
/// [`AllToAll`], decompressed, pushed through the owning rank's experts,
/// and shipped back the same way for the weighted combine. Backward
/// reverses the exchanges (gradients travel uncompressed, matching the
/// paper's §7 caution about compressing backpropagation).
///
/// With [`with_partition_degree`](Self::with_partition_degree) above 1 the
/// forward runs ScheMoE's *pipelined* schedule instead: the batch's routed
/// slots are split into `r` chunks and the per-chunk task chain
/// `C1 → A2A1 → (D1·E·C2) → A2A2 → D2` executes on a two-worker overlap
/// executor, so chunk `c`'s exchange overlaps chunk `c+1`'s compute (the
/// paper's OptSche order). The overlapped output is bit-identical to the
/// serial path: the gate runs once on the whole batch, expert bodies are
/// row-wise, and the final combine reassembles chunks into exactly the
/// serial slot order before accumulating.
pub struct DistributedMoeLayer {
    gate: TopKGate,
    local_experts: Vec<Box<dyn Expert>>,
    experts_per_rank: usize,
    compressor: Box<dyn Compressor>,
    a2a: Box<dyn AllToAll>,
    cache: Option<Cache>,
    /// ScheMoE pipelining degree `r`; 1 = serial.
    partition_degree: usize,
    /// Liveness deadline for the overlapped path's receives.
    recv_timeout: Option<Duration>,
    /// Ranks declared dead mid-training: their experts are masked out of
    /// routing and all exchanges skip them (degraded mode).
    dead_ranks: BTreeSet<usize>,
    /// Hot-failover routing: dead rank → live host currently serving its
    /// experts from a buddy replica. Every live rank must hold the same
    /// table so the hosted exchanges agree on who speaks for whom; a dead
    /// rank with a route keeps its experts in the routing table.
    failover_hosts: BTreeMap<usize, usize>,
    /// The expert bodies this rank serves on behalf of dead wards (the
    /// host side of `failover_hosts`), keyed by the dead rank.
    hosted_experts: BTreeMap<usize, Vec<Box<dyn Expert>>>,
    /// Load-aware expert placement installed by the placement controller;
    /// `None` (or a static table) keeps the owner-per-rank layout. A
    /// non-static placement activates the *placed* forward/backward, which
    /// fans each expert's slots across its replica set.
    placement: Option<Placement>,
    /// Guest expert bodies this rank serves for experts whose static home
    /// is elsewhere (replicated or migrated onto this rank), keyed by
    /// global expert id. Kept out of [`visit_params`](Self::visit_params)
    /// so optimizer slot order never shifts when placements change.
    guest_experts: BTreeMap<usize, Box<dyn Expert>>,
    /// Per-global-expert routed token counts since the last
    /// [`take_load_stats`](Self::take_load_stats) drain (placement policy
    /// input; recorded by every forward path).
    routing_loads: Vec<u64>,
    /// Capacity-shed assignments since the last drain.
    shed_tokens: u64,
    /// Admitted assignments since the last drain.
    routed_tokens: u64,
    /// Per-forward local expert-stage service times (µs) since the last
    /// drain. Only the serial and placed paths record these; the
    /// overlapped path interleaves compute with communication, so its
    /// expert stage has no isolated wall-clock reading.
    service_us: Vec<u64>,
}

struct Cache {
    decision: GateDecision,
    /// Per local expert, per src rank: row count received.
    recv_counts: Vec<Vec<usize>>,
    /// Per hosted dead rank, per its local expert, per src rank: row count
    /// received on the hosted dispatch lane (host side of failover).
    hosted_recv_counts: BTreeMap<usize, Vec<Vec<usize>>>,
    /// Per hosted dead rank, per its local expert: the src-major input
    /// rows, for the same per-(expert, source) recompute grouping the
    /// rank itself would have used.
    hosted_inputs: BTreeMap<usize, Vec<Tensor>>,
    /// Per global expert this rank dispatched to: the returned output rows
    /// in this rank's slot order.
    returned_outputs: Vec<Tensor>,
    /// Per local expert: the serial-order (src-major) input rows. Set by
    /// both forwards; the backward recomputes each (expert, source)
    /// group's activations from these before differentiating it, which is
    /// what makes the weight-gradient accumulation order — and therefore
    /// the grads — independent of the partition degree.
    expert_inputs: Option<Vec<Tensor>>,
    n: usize,
    tag_base: u64,
    /// `Some(served list)` when the forward ran the placed path: the
    /// ascending global expert ids this rank served, indexing
    /// `recv_counts` / `expert_inputs`. Routes the backward to the placed
    /// path with the same fan-out.
    served: Option<Vec<usize>>,
}

/// A replicated-parameter gradient allreduce to fold into the MoE
/// backward's task graph
/// ([`backward_with_allreduce`](DistributedMoeLayer::backward_with_allreduce)).
///
/// The referenced gradients must already be final when the backward is
/// submitted (e.g. the LM head's grads, produced before the MoE backward
/// starts); the reduction then rides the comm worker concurrently with
/// the backward's compute stages instead of serializing after the step.
/// The result is bit-identical to calling
/// [`allreduce_live`] separately: the same elementwise sums in the same
/// gather order, only overlapped in wall clock.
pub struct GradAllreduce<'a> {
    /// The flattened gradients to sum elementwise across live ranks.
    pub values: &'a mut [f32],
    /// Base tag of the reduction (uses `tag` and `tag + 1`).
    pub tag: u64,
    /// Live mask over the world, as [`allreduce_live`] expects.
    pub live: &'a [bool],
}

impl DistributedMoeLayer {
    /// Creates the layer from its parts.
    ///
    /// The gate must route over `world_size × experts_per_rank` experts;
    /// `local_experts.len()` must equal `experts_per_rank`.
    ///
    /// # Panics
    ///
    /// Panics on count mismatches.
    pub fn new(
        gate: TopKGate,
        local_experts: Vec<Box<dyn Expert>>,
        compressor: Box<dyn Compressor>,
        a2a: Box<dyn AllToAll>,
    ) -> Self {
        let experts_per_rank = local_experts.len();
        assert!(experts_per_rank > 0, "at least one local expert required");
        DistributedMoeLayer {
            gate,
            local_experts,
            experts_per_rank,
            compressor,
            a2a,
            cache: None,
            partition_degree: 1,
            recv_timeout: None,
            dead_ranks: BTreeSet::new(),
            failover_hosts: BTreeMap::new(),
            hosted_experts: BTreeMap::new(),
            placement: None,
            guest_experts: BTreeMap::new(),
            routing_loads: Vec::new(),
            shed_tokens: 0,
            routed_tokens: 0,
            service_us: Vec::new(),
        }
    }

    /// Sets the pipelining degree `r` (the paper's token-chunk count).
    ///
    /// `1` keeps the serial forward; larger degrees run the overlapped
    /// pipeline. Degrees above the batch size simply yield empty chunks.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or exceeds [`MAX_PARTITION_DEGREE`]
    /// (past which per-chunk tags would overflow their lane and collide
    /// with another lane's traffic).
    pub fn with_partition_degree(mut self, degree: usize) -> Self {
        assert!(degree >= 1, "partition degree must be at least 1");
        assert!(
            degree <= MAX_PARTITION_DEGREE,
            "partition degree {degree} exceeds MAX_PARTITION_DEGREE ({MAX_PARTITION_DEGREE})"
        );
        self.partition_degree = degree;
        self
    }

    /// Sets a liveness deadline for the overlapped pipeline's receives:
    /// a live-but-silent peer surfaces as [`FabricError::Timeout`] instead
    /// of hanging the pipeline.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// The configured pipelining degree.
    pub fn partition_degree(&self) -> usize {
        self.partition_degree
    }

    /// Number of experts on this rank.
    pub fn experts_per_rank(&self) -> usize {
        self.experts_per_rank
    }

    /// The gate replica.
    pub fn gate(&self) -> &TopKGate {
        &self.gate
    }

    /// Retunes the gate's capacity factor in place — the placement
    /// controller's overload-shedding knob. Routing weights are untouched,
    /// so the change affects only how many slots each expert admits.
    pub fn set_capacity_factor(&mut self, factor: f64) {
        self.gate.set_capacity_factor(factor);
    }

    /// The rank owning global expert `e`.
    fn owner_of(&self, e: usize) -> usize {
        e / self.experts_per_rank
    }

    /// Declares `rank` dead: its experts leave the routing table (the gate
    /// renormalizes over survivors) and every exchange skips it. The next
    /// forward runs in degraded mode — with a quality warning recorded on
    /// the `degraded` span and counter — instead of hanging on the dead
    /// peer. With at least two live ranks the overlapped (r > 1) pipeline
    /// keeps running over the survivors; only a world shrunk to one live
    /// rank falls back to the serial path.
    pub fn mark_rank_dead(&mut self, rank: usize) {
        self.dead_ranks.insert(rank);
        // A dying host orphans its wards: their routes vanish and the gate
        // masks their experts out again until a new host takes over.
        self.failover_hosts.retain(|_, host| *host != rank);
    }

    /// The inverse of [`mark_rank_dead`](Self::mark_rank_dead): `rank` has
    /// rejoined (its state was restored by the rejoin protocol), so its
    /// experts re-enter the routing table, the gate's normalization expands
    /// back over them, exchanges include it again, and — once the dead set
    /// is empty — the forward leaves degraded mode entirely.
    pub fn mark_rank_alive(&mut self, rank: usize) {
        self.dead_ranks.remove(&rank);
        self.failover_hosts.remove(&rank);
        self.hosted_experts.remove(&rank);
    }

    /// Installs a failover route: live rank `host` serves the experts of
    /// dead rank `dead` from its buddy replica, so `dead`'s experts stay
    /// in the routing table instead of being masked out. Every live rank
    /// must install the same route for the hosted exchanges to line up;
    /// only the host itself also calls
    /// [`install_hosted_experts`](Self::install_hosted_experts).
    ///
    /// # Panics
    ///
    /// Panics if `dead == host`.
    pub fn set_failover_route(&mut self, dead: usize, host: usize) {
        assert_ne!(dead, host, "a rank cannot host its own failover");
        self.failover_hosts.insert(dead, host);
    }

    /// Hands this rank the expert bodies it will serve for dead rank
    /// `dead` (typically rebuilt from the buddy replica).
    ///
    /// # Panics
    ///
    /// Panics if the expert count differs from `experts_per_rank`.
    pub fn install_hosted_experts(&mut self, dead: usize, experts: Vec<Box<dyn Expert>>) {
        assert_eq!(
            experts.len(),
            self.experts_per_rank,
            "hosted expert count must match experts_per_rank"
        );
        self.hosted_experts.insert(dead, experts);
    }

    /// The live rank currently serving `dead`'s experts, if routed.
    pub fn failover_host_of(&self, dead: usize) -> Option<usize> {
        self.failover_hosts.get(&dead).copied()
    }

    /// All `(dead, host)` failover routes, ascending by dead rank.
    pub fn failover_routes(&self) -> Vec<(usize, usize)> {
        self.failover_hosts.iter().map(|(&d, &h)| (d, h)).collect()
    }

    /// Drops every failover route and hosted expert (used when the dead
    /// rank rejoins and takes its experts back).
    pub fn clear_failover_routes(&mut self) {
        self.failover_hosts.clear();
        self.hosted_experts.clear();
    }

    /// True when any failover route is active.
    pub fn has_failover(&self) -> bool {
        !self.failover_hosts.is_empty()
    }

    /// The dead ranks whose experts this rank is hosting, ascending.
    pub fn hosted_dead_ranks(&self) -> Vec<usize> {
        self.hosted_experts.keys().copied().collect()
    }

    /// Visits the parameters of the experts hosted for dead rank `dead`
    /// (no-op when this rank does not host it). Kept separate from
    /// [`visit_params`](Self::visit_params) so optimizer state indexed by
    /// visit order is not shifted by transient hosted experts.
    pub fn visit_hosted_params(&mut self, dead: usize, f: &mut dyn FnMut(&mut Param)) {
        if let Some(wards) = self.hosted_experts.get_mut(&dead) {
            for e in wards {
                e.visit_params(f);
            }
        }
    }

    /// The installed placement, if any.
    pub fn placement(&self) -> Option<&Placement> {
        self.placement.as_ref()
    }

    /// True when a non-static placement is active: the next forward runs
    /// the placed path (replica fan-out / migrated homes).
    pub fn is_placed(&self) -> bool {
        self.placement.as_ref().is_some_and(|p| !p.is_static())
    }

    /// Installs a placement for rank `me`. Guest bodies for every expert
    /// the placement assigns to `me` away from its static home must
    /// already be installed
    /// ([`install_guest_expert`](Self::install_guest_expert)); guests the
    /// new placement no longer assigns here are dropped.
    ///
    /// Placement composes with a fully live world only: burial, failover
    /// and rejoin all reset to the static layout first
    /// ([`reset_placement`](Self::reset_placement)), so the placed path
    /// never has to reason about dead peers or hosted lanes.
    ///
    /// # Panics
    ///
    /// Panics if the world is degraded or a failover route is active, if
    /// the placement's shape disagrees with this layer, or if a required
    /// guest body is missing.
    pub fn set_placement(&mut self, me: usize, placement: Placement) {
        assert!(
            self.dead_ranks.is_empty() && !self.has_failover(),
            "placement requires a fully live world; degraded mode resets to static"
        );
        assert_eq!(
            placement.experts_per_rank(),
            self.experts_per_rank,
            "placement experts_per_rank mismatch"
        );
        let guests = placement.guests_of(me);
        for &e in &guests {
            assert!(
                self.guest_experts.contains_key(&e),
                "guest body for expert {e} must be installed before activation"
            );
        }
        self.guest_experts.retain(|e, _| guests.contains(e));
        self.placement = Some(placement);
    }

    /// Drops any installed placement and all guest bodies, returning the
    /// layer to the static owner-per-rank layout. Called on every epoch
    /// transition (burial, failover routing, rejoin admission).
    pub fn reset_placement(&mut self) {
        self.placement = None;
        self.guest_experts.clear();
    }

    /// Hands this rank a guest body for global expert `e` (state streamed
    /// from the expert's static home). Inert until a placement assigning
    /// `e` here is activated.
    ///
    /// # Panics
    ///
    /// Panics if `e`'s static home would be this-rank-local under the
    /// current `experts_per_rank` — the local body already serves it.
    pub fn install_guest_expert(&mut self, me: usize, e: usize, body: Box<dyn Expert>) {
        assert_ne!(
            e / self.experts_per_rank,
            me,
            "expert {e} is home on rank {me}; a guest body would shadow it"
        );
        self.guest_experts.insert(e, body);
    }

    /// Global expert ids with guest bodies installed, ascending.
    pub fn guest_expert_ids(&self) -> Vec<usize> {
        self.guest_experts.keys().copied().collect()
    }

    /// Drops a staged guest body that never made it into a committed
    /// placement — the abort path of a placement quantum. A no-op when no
    /// guest body for `e` is installed.
    pub fn discard_guest_expert(&mut self, e: usize) {
        self.guest_experts.remove(&e);
    }

    /// Visits the parameters of whichever body this rank uses to serve
    /// global expert `e`: the local body when `me` is `e`'s static home,
    /// the guest body when one is installed, else a no-op. The placement
    /// controller's per-expert gradient sync walks parameters through
    /// this, so home and guest flatten in the same order.
    pub fn visit_serving_params(&mut self, me: usize, e: usize, f: &mut dyn FnMut(&mut Param)) {
        if e / self.experts_per_rank == me {
            self.local_experts[e % self.experts_per_rank].visit_params(f);
        } else if let Some(body) = self.guest_experts.get_mut(&e) {
            body.visit_params(f);
        }
    }

    /// Drains the routing-load / shed / service-time accumulators gathered
    /// since the previous drain: `(per-expert routed token counts, shed
    /// assignments, admitted assignments, p99 expert-stage service µs)`.
    /// Feeds the placement controller's [`LoadReport`](crate::LoadReport).
    pub fn take_load_stats(&mut self) -> (Vec<u64>, u64, u64, u64) {
        let loads = std::mem::take(&mut self.routing_loads);
        let shed = std::mem::take(&mut self.shed_tokens);
        let routed = std::mem::take(&mut self.routed_tokens);
        let mut service = std::mem::take(&mut self.service_us);
        let p99 = if service.is_empty() {
            0
        } else {
            service.sort_unstable();
            service[(service.len() - 1) * 99 / 100]
        };
        (loads, shed, routed, p99)
    }

    /// Folds a gate decision into the load accumulators and the obs
    /// routing board (the chrome "routing" counter track).
    fn note_decision(&mut self, rank: usize, world: usize, decision: &GateDecision) {
        let n_experts = world * self.experts_per_rank;
        if self.routing_loads.len() < n_experts {
            self.routing_loads.resize(n_experts, 0);
        }
        let mut routed = 0u64;
        for (e, slots) in decision.expert_slots.iter().enumerate() {
            self.routing_loads[e] += slots.len() as u64;
            routed += slots.len() as u64;
        }
        self.routed_tokens += routed;
        self.shed_tokens += decision.dropped as u64;
        if obs::enabled() {
            let board = obs::routing_for_rank(rank);
            for (e, slots) in decision.expert_slots.iter().enumerate() {
                board.add_expert_load(e, slots.len() as u64);
            }
            board.add_shed(decision.dropped as u64);
            board.add_routed(routed);
        }
    }

    /// Records one expert-stage wall-clock sample.
    fn note_service(&mut self, elapsed: Duration) {
        self.service_us.push(elapsed.as_micros() as u64);
    }

    /// Rows expert `e` sends to the server at position `i` of its
    /// `g`-replica set when its slot list has `len` entries: slot `s` goes
    /// to position `s % g`, so position `i` receives slots `i, i+g, …`.
    fn slot_share(len: usize, i: usize, g: usize) -> usize {
        if len > i {
            (len - i - 1) / g + 1
        } else {
            0
        }
    }

    /// The ranks currently declared dead, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.dead_ranks.iter().copied().collect()
    }

    /// True when any peer has been declared dead.
    pub fn is_degraded(&self) -> bool {
        !self.dead_ranks.is_empty()
    }

    /// The routing mask for the current dead set: `mask[e]` is true when
    /// expert `e` lives on a dead rank *without* a failover route. A
    /// routed dead rank's experts keep serving tokens through their host,
    /// so they stay in the routing table.
    fn dead_expert_mask(&self, world_size: usize) -> Vec<bool> {
        (0..world_size * self.experts_per_rank)
            .map(|e| {
                let owner = self.owner_of(e);
                self.dead_ranks.contains(&owner) && !self.failover_hosts.contains_key(&owner)
            })
            .collect()
    }

    /// Tag for the hosted leg of a lane: the traffic dead rank `dead`
    /// would have carried on `lane_tag`, redirected to its failover host.
    /// Offsets `1..=world` stay clear of the lane tags themselves (spaced
    /// `TAG_STRIDE / 4` apart) and of the overlapped path's chunk tags
    /// (failover forces the serial path).
    fn hosted_tag(lane_tag: u64, dead: usize) -> u64 {
        lane_tag + 1 + dead as u64
    }

    /// Direct exchange among live ranks only: sends go to live peers, dead
    /// peers' inbound chunks are replaced by `placeholder` (an encoding of
    /// zero rows), and receives — deadline-aware when the fabric has one —
    /// touch live peers only, so a dead rank cannot hang the step.
    fn exchange_live(
        h: &mut RankHandle,
        chunks: Vec<Bytes>,
        tag: u64,
        dead: &BTreeSet<usize>,
        placeholder: &Bytes,
        timeout: Option<Duration>,
    ) -> Result<Vec<Bytes>, FabricError> {
        let p = h.world_size();
        for (j, chunk) in chunks.into_iter().enumerate() {
            if !dead.contains(&j) {
                h.send(j, tag, chunk)?;
            }
        }
        let mut out = Vec::with_capacity(p);
        for j in 0..p {
            if dead.contains(&j) {
                out.push(placeholder.clone());
            } else {
                out.push(match timeout {
                    Some(t) => h.recv_timeout(j, tag, t)?,
                    None => h.recv(j, tag)?,
                });
            }
        }
        Ok(out)
    }

    /// Exchange for the placed step. Legs run either *toward* servers
    /// (dispatch: every rank sends, only serving ranks receive) or *from*
    /// servers (combine: only serving ranks send, every rank receives). A
    /// rank serving no experts is skipped on the server-facing side —
    /// nothing is sent to it on dispatch legs and nothing is awaited from
    /// it on combine legs — so a demoted gray rank's slow links leave the
    /// critical path except for the unavoidable hops carrying its own
    /// tokens. Skipped slots decode as zero-expert placeholders.
    fn exchange_placed(
        h: &mut RankHandle,
        chunks: Vec<Bytes>,
        tag: u64,
        to_servers: bool,
        serves: &[bool],
        placeholder: &Bytes,
        timeout: Option<Duration>,
    ) -> Result<Vec<Bytes>, FabricError> {
        let p = h.world_size();
        let me = h.rank();
        let send_all = if to_servers { true } else { serves[me] };
        for (j, chunk) in chunks.into_iter().enumerate() {
            let dst_wants = if to_servers { serves[j] } else { true };
            if send_all && dst_wants {
                h.send(j, tag, chunk)?;
            }
        }
        let mut out = Vec::with_capacity(p);
        for j in 0..p {
            let expect = if to_servers { serves[me] } else { serves[j] };
            if expect {
                out.push(match timeout {
                    Some(t) => h.recv_timeout(j, tag, t)?,
                    None => h.recv(j, tag)?,
                });
            } else {
                out.push(placeholder.clone());
            }
        }
        Ok(out)
    }

    /// Serializes rows destined for one rank: a count header per local
    /// expert followed by the compressed concatenation of all rows.
    ///
    /// An associated function (not a method) so the overlapped pipeline can
    /// encode on the compute worker while the expert list is mutably
    /// borrowed elsewhere.
    fn encode_chunk(compressor: &dyn Compressor, per_expert_rows: &[Tensor], m: usize) -> Bytes {
        let mut header = BytesMut::with_capacity(4 * per_expert_rows.len());
        let mut flat: Vec<f32> = Vec::new();
        for rows in per_expert_rows {
            let count = rows.dims()[0] as u32;
            header.extend_from_slice(&count.to_le_bytes());
            flat.extend_from_slice(rows.data());
        }
        let _ = m;
        let payload = compressor.compress(&flat);
        header.extend_from_slice(&payload);
        header.freeze()
    }

    /// Decodes a chunk into per-local-expert row tensors.
    fn decode_chunk(
        compressor: &dyn Compressor,
        chunk: &Bytes,
        experts: usize,
        m: usize,
    ) -> Vec<Tensor> {
        let mut counts = Vec::with_capacity(experts);
        for i in 0..experts {
            let b = &chunk[i * 4..(i + 1) * 4];
            counts.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize);
        }
        let total: usize = counts.iter().sum();
        let payload = &chunk[experts * 4..];
        let flat = compressor
            .decompress(payload, total * m)
            .expect("peer encodes with the same codec");
        let mut out = Vec::with_capacity(experts);
        let mut off = 0usize;
        for &c in &counts {
            let rows = Tensor::from_vec(flat[off * m..(off + c) * m].to_vec(), &[c, m])
                .expect("framing consistent");
            off += c;
            out.push(rows);
        }
        out
    }

    /// Raw (uncompressed) encode used for gradient exchanges.
    fn encode_raw(per_expert_rows: &[Tensor]) -> Bytes {
        let mut buf = BytesMut::new();
        for rows in per_expert_rows {
            buf.extend_from_slice(&(rows.dims()[0] as u32).to_le_bytes());
            for &v in rows.data() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        buf.freeze()
    }

    fn decode_raw(chunk: &Bytes, experts: usize, m: usize) -> Vec<Tensor> {
        let mut out = Vec::with_capacity(experts);
        let mut off = 0usize;
        for _ in 0..experts {
            let b = &chunk[off..off + 4];
            let count = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
            off += 4;
            let mut data = Vec::with_capacity(count * m);
            for _ in 0..count * m {
                let b = &chunk[off..off + 4];
                data.push(f32::from_le_bytes([b[0], b[1], b[2], b[3]]));
                off += 4;
            }
            out.push(Tensor::from_vec(data, &[count, m]).expect("framing consistent"));
        }
        out
    }

    /// Expert-parallel forward over the fabric.
    ///
    /// `tag_base` namespaces this invocation; step it by [`TAG_STRIDE`]
    /// between layer invocations on the same fabric. Dispatches to the
    /// serial or overlapped implementation per the configured
    /// [`partition_degree`](Self::partition_degree); both produce
    /// bit-identical outputs.
    ///
    /// Degraded mode does not force the serial path: the per-chunk
    /// exchanges are already direct tagged sends, so as long as at least
    /// two ranks are live the overlapped pipeline simply routes around the
    /// dead peers. Only a world shrunk to a single live rank (where there
    /// is no communication left to overlap) falls back to serial.
    pub fn forward(
        &mut self,
        h: &mut RankHandle,
        x: &Tensor,
        tag_base: u64,
    ) -> Result<Tensor, FabricError> {
        if self.is_placed() {
            // A non-static placement only ever coexists with a fully live,
            // failover-free world (see `set_placement`), so the placed
            // path dominates the degraded/failover dispatch below.
            return self.forward_placed(h, x, tag_base);
        }
        let live = h.world_size() - self.dead_ranks.len();
        if self.partition_degree <= 1 || live < 2 || self.has_failover() {
            // Failover hosting speaks the serial path's hosted side lanes;
            // the overlapped pipeline does not carry them, so any active
            // route forces serial until handback.
            self.forward_serial(h, x, tag_base)
        } else {
            self.forward_overlapped(h, x, tag_base)
        }
    }

    /// The serial reference forward: one dispatch A2A, all experts, one
    /// combine A2A, no overlap.
    fn forward_serial(
        &mut self,
        h: &mut RankHandle,
        x: &Tensor,
        tag_base: u64,
    ) -> Result<Tensor, FabricError> {
        let p = h.world_size();
        let m = x.dims()[1];
        let n = x.dims()[0];
        let epr = self.experts_per_rank;
        // Degraded mode: record the quality warning (span + counter) and
        // route around the dead ranks' experts.
        let _degraded_span = self.is_degraded().then(|| {
            obs::counters_for_rank(h.rank()).add_degraded_step();
            obs::span(
                "degraded",
                format!("degraded step ({} dead)", self.dead_ranks.len()),
            )
        });
        let decision = {
            let _g = obs::span("gate", "gate");
            if self.is_degraded() {
                let mask = self.dead_expert_mask(p);
                self.gate.forward_masked(x, Some(&mask))
            } else {
                self.gate.forward(x)
            }
        };
        self.note_decision(h.rank(), p, &decision);

        // Build one chunk per destination rank: this rank's admitted rows
        // for each of the destination's local experts.
        let chunks = {
            let _s = obs::span_sized("encode", "C1", (n * m * 4) as f64);
            let mut chunks = Vec::with_capacity(p);
            for dst in 0..p {
                let mut per_expert = Vec::with_capacity(epr);
                for le in 0..epr {
                    let e = dst * epr + le;
                    let slots = &decision.expert_slots[e];
                    let mut rows = Tensor::zeros(&[slots.len(), m]);
                    for (s, &(t, _)) in slots.iter().enumerate() {
                        rows.row_mut(s).copy_from_slice(x.row(t));
                    }
                    per_expert.push(rows);
                }
                chunks.push(Self::encode_chunk(self.compressor.as_ref(), &per_expert, m));
            }
            chunks
        };
        let dispatch_tag = tag_base;
        let combine_tag = tag_base + TAG_STRIDE / 4;
        // Hosted dispatch: the chunk routed to a dead-but-routed rank's
        // experts goes to its failover host instead. Sends precede every
        // receive on all ranks (channels are buffered), so the extra lane
        // cannot deadlock the exchange below.
        let routes = self.failover_routes();
        for &(j, host) in &routes {
            h.send(host, Self::hosted_tag(dispatch_tag, j), chunks[j].clone())?;
        }
        let sent_bytes: usize = chunks.iter().map(Bytes::len).sum();
        let received = {
            let _s = obs::span_sized("a2a", "A1", sent_bytes as f64);
            if self.is_degraded() {
                let empty = vec![Tensor::zeros(&[0, m]); epr];
                let placeholder = Self::encode_chunk(self.compressor.as_ref(), &empty, m);
                Self::exchange_live(
                    h,
                    chunks,
                    dispatch_tag,
                    &self.dead_ranks,
                    &placeholder,
                    self.recv_timeout,
                )?
            } else {
                self.a2a.all_to_all(h, chunks, dispatch_tag)?
            }
        };
        let recv_bytes: usize = received.iter().map(Bytes::len).sum();

        // Decode: concatenate per local expert, src-major.
        let d1 = obs::span_sized("decode", "D1", recv_bytes as f64);
        let mut expert_inputs = Vec::with_capacity(epr);
        let mut recv_counts = vec![Vec::with_capacity(p); epr];
        let decoded: Vec<Vec<Tensor>> = received
            .iter()
            .map(|c| Self::decode_chunk(self.compressor.as_ref(), c, epr, m))
            .collect();
        for le in 0..epr {
            let total: usize = decoded.iter().map(|d| d[le].dims()[0]).sum();
            let mut input = Tensor::zeros(&[total, m]);
            let mut off = 0;
            for src_rows in decoded.iter().map(|d| &d[le]) {
                let c = src_rows.dims()[0];
                for r in 0..c {
                    input.row_mut(off + r).copy_from_slice(src_rows.row(r));
                }
                off += c;
            }
            for d in &decoded {
                recv_counts[le].push(d[le].dims()[0]);
            }
            expert_inputs.push(input);
        }
        drop(d1);

        // Failover host phase: serve the dead wards' experts from the
        // buddy replica. Every live rank (self included) shipped this rank
        // its chunk for ward `j` on the hosted dispatch lane; concatenate
        // src-major exactly as the ward itself would have, run the hosted
        // experts, and ship each live src its slice back on the hosted
        // combine lane.
        let mut hosted_recv_counts: BTreeMap<usize, Vec<Vec<usize>>> = BTreeMap::new();
        let mut hosted_inputs: BTreeMap<usize, Vec<Tensor>> = BTreeMap::new();
        for (&j, wards) in self.hosted_experts.iter_mut() {
            let _s = obs::span("expert", format!("E[host r{j}]"));
            let mut decoded: Vec<Vec<Tensor>> = Vec::with_capacity(p);
            for src in 0..p {
                if self.dead_ranks.contains(&src) {
                    decoded.push(vec![Tensor::zeros(&[0, m]); epr]);
                } else {
                    let chunk = match self.recv_timeout {
                        Some(t) => h.recv_timeout(src, Self::hosted_tag(dispatch_tag, j), t)?,
                        None => h.recv(src, Self::hosted_tag(dispatch_tag, j))?,
                    };
                    decoded.push(Self::decode_chunk(&*self.compressor, &chunk, epr, m));
                }
            }
            let mut counts = vec![Vec::with_capacity(p); epr];
            let mut outputs = Vec::with_capacity(epr);
            let mut ward_inputs = Vec::with_capacity(epr);
            for le in 0..epr {
                let total: usize = decoded.iter().map(|d| d[le].dims()[0]).sum();
                let mut input = Tensor::zeros(&[total, m]);
                let mut off = 0;
                for src_rows in decoded.iter().map(|d| &d[le]) {
                    for r in 0..src_rows.dims()[0] {
                        input.row_mut(off + r).copy_from_slice(src_rows.row(r));
                    }
                    off += src_rows.dims()[0];
                }
                for d in &decoded {
                    counts[le].push(d[le].dims()[0]);
                }
                outputs.push(wards[le].forward(&input));
                ward_inputs.push(input);
            }
            hosted_inputs.insert(j, ward_inputs);
            for src in 0..p {
                if self.dead_ranks.contains(&src) {
                    continue;
                }
                let mut per_expert = Vec::with_capacity(epr);
                for le in 0..epr {
                    let before: usize = counts[le][..src].iter().sum();
                    let count = counts[le][src];
                    let mut rows = Tensor::zeros(&[count, m]);
                    for r in 0..count {
                        rows.row_mut(r).copy_from_slice(outputs[le].row(before + r));
                    }
                    per_expert.push(rows);
                }
                let chunk = Self::encode_chunk(&*self.compressor, &per_expert, m);
                h.send(src, Self::hosted_tag(combine_tag, j), chunk)?;
            }
            hosted_recv_counts.insert(j, counts);
        }

        // Local expert computation.
        let expert_rows: usize = expert_inputs.iter().map(|t| t.dims()[0]).sum();
        let service_start = Instant::now();
        let expert_outputs: Vec<Tensor> = {
            let _s = obs::span_sized("expert", "E", expert_rows as f64);
            expert_inputs
                .iter()
                .enumerate()
                .map(|(le, input)| self.local_experts[le].forward(input))
                .collect()
        };
        self.note_service(service_start.elapsed());

        // Ship outputs back: chunk for src rank = its slice of each local
        // expert's output.
        let back_chunks = {
            let _s = obs::span_sized("encode", "C2", (expert_rows * m * 4) as f64);
            let mut back_chunks = Vec::with_capacity(p);
            for src in 0..p {
                let mut per_expert = Vec::with_capacity(epr);
                for le in 0..epr {
                    let before: usize = recv_counts[le][..src].iter().sum();
                    let count = recv_counts[le][src];
                    let mut rows = Tensor::zeros(&[count, m]);
                    for r in 0..count {
                        rows.row_mut(r)
                            .copy_from_slice(expert_outputs[le].row(before + r));
                    }
                    per_expert.push(rows);
                }
                back_chunks.push(Self::encode_chunk(self.compressor.as_ref(), &per_expert, m));
            }
            back_chunks
        };
        let back_bytes: usize = back_chunks.iter().map(Bytes::len).sum();
        let returned = {
            let _s = obs::span_sized("a2a", "A2", back_bytes as f64);
            if self.is_degraded() {
                let empty = vec![Tensor::zeros(&[0, m]); epr];
                let placeholder = Self::encode_chunk(self.compressor.as_ref(), &empty, m);
                Self::exchange_live(
                    h,
                    back_chunks,
                    combine_tag,
                    &self.dead_ranks,
                    &placeholder,
                    self.recv_timeout,
                )?
            } else {
                self.a2a.all_to_all(h, back_chunks, combine_tag)?
            }
        };

        // Hosted combine: collect the routed dead owners' outputs from
        // their hosts; they replace the zero-row placeholders below.
        let mut hosted_returns: BTreeMap<usize, Bytes> = BTreeMap::new();
        for &(j, host) in &routes {
            let chunk = match self.recv_timeout {
                Some(t) => h.recv_timeout(host, Self::hosted_tag(combine_tag, j), t)?,
                None => h.recv(host, Self::hosted_tag(combine_tag, j))?,
            };
            hosted_returns.insert(j, chunk);
        }

        // Combine: the chunk from rank r holds outputs for the experts r
        // owns, in this rank's slot order.
        let d2 = obs::span_sized(
            "decode",
            "D2",
            returned.iter().map(Bytes::len).sum::<usize>() as f64,
        );
        let mut y = Tensor::zeros(&[n, m]);
        let mut returned_outputs: Vec<Tensor> = Vec::with_capacity(p * epr);
        for owner in 0..p {
            let chunk = hosted_returns.get(&owner).unwrap_or(&returned[owner]);
            let outs = Self::decode_chunk(self.compressor.as_ref(), chunk, epr, m);
            for (le, rows) in outs.into_iter().enumerate() {
                let e = owner * epr + le;
                let slots = &decision.expert_slots[e];
                assert_eq!(rows.dims()[0], slots.len(), "combine framing mismatch");
                for (s, &(t, w)) in slots.iter().enumerate() {
                    let orow = rows.row(s);
                    let yrow = y.row_mut(t);
                    for (yj, &oj) in yrow.iter_mut().zip(orow.iter()) {
                        *yj += w * oj;
                    }
                }
                returned_outputs.push(rows);
            }
        }
        drop(d2);
        self.cache = Some(Cache {
            decision,
            recv_counts,
            hosted_recv_counts,
            hosted_inputs,
            returned_outputs,
            expert_inputs: Some(expert_inputs),
            n,
            tag_base,
            served: None,
        });
        Ok(y)
    }

    /// The placed forward: the serial schedule with a load-aware routing
    /// table. Each expert's admitted slots fan round-robin across its
    /// replica set (slot `s` → server `s % g`), so a hot expert's rows
    /// split over `g` ranks; a migrated expert's rows go to its new home.
    ///
    /// Bitwise properties: expert bodies are row-wise, each slot's output
    /// row is computed from the same input row by an identical parameter
    /// copy (the controller's per-expert gradient sync keeps home and
    /// guests in lockstep), and the combine reassembles full slot order
    /// before accumulating ascending-expert — so `y` is bit-identical to
    /// the static serial forward for the same batch.
    ///
    /// Requires a fully live, failover-free world (`set_placement`
    /// enforces this), so exchanges use the plain all-to-all.
    fn forward_placed(
        &mut self,
        h: &mut RankHandle,
        x: &Tensor,
        tag_base: u64,
    ) -> Result<Tensor, FabricError> {
        let p = h.world_size();
        let me = h.rank();
        let m = x.dims()[1];
        let n = x.dims()[0];
        let epr = self.experts_per_rank;
        let pl = self
            .placement
            .clone()
            .expect("placed forward without placement");
        assert_eq!(
            pl.n_experts(),
            p * epr,
            "placement must cover the routing table"
        );
        debug_assert!(
            self.dead_ranks.is_empty() && !self.has_failover(),
            "placed path requires a fully live world"
        );
        let served_lists: Vec<Vec<usize>> = (0..p).map(|r| pl.served_by(r)).collect();

        let decision = {
            let _g = obs::span("gate", "gate");
            self.gate.forward(x)
        };
        self.note_decision(me, p, &decision);

        // C1: one chunk per server rank — for each expert it serves, this
        // rank's slot share for that server's replica position.
        let chunks = {
            let _s = obs::span_sized("encode", "C1", (n * m * 4) as f64);
            let mut chunks = Vec::with_capacity(p);
            for dst in 0..p {
                let served = &served_lists[dst];
                let mut per_expert = Vec::with_capacity(served.len());
                for &e in served {
                    let srv = pl.servers(e);
                    let g = srv.len();
                    let i = srv.iter().position(|&r| r == dst).expect("dst serves e");
                    let slots = &decision.expert_slots[e];
                    let count = Self::slot_share(slots.len(), i, g);
                    let mut rows = Tensor::zeros(&[count, m]);
                    for (row, sidx) in (i..slots.len()).step_by(g).enumerate() {
                        rows.row_mut(row).copy_from_slice(x.row(slots[sidx].0));
                    }
                    per_expert.push(rows);
                }
                chunks.push(Self::encode_chunk(self.compressor.as_ref(), &per_expert, m));
            }
            chunks
        };
        let dispatch_tag = tag_base;
        let combine_tag = tag_base + TAG_STRIDE / 4;
        let serves: Vec<bool> = served_lists.iter().map(|l| !l.is_empty()).collect();
        let empty_chunk = Self::encode_chunk(self.compressor.as_ref(), &[], m);
        let timeout = self.recv_timeout;
        let sent_bytes: usize = chunks.iter().map(Bytes::len).sum();
        let received = {
            let _s = obs::span_sized("a2a", "A1", sent_bytes as f64);
            Self::exchange_placed(
                h,
                chunks,
                dispatch_tag,
                true,
                &serves,
                &empty_chunk,
                timeout,
            )?
        };
        let recv_bytes: usize = received.iter().map(Bytes::len).sum();

        // D1: concatenate per served expert, src-major — the same serial
        // input order the backward's recompute grouping relies on.
        let served = served_lists[me].clone();
        let d1 = obs::span_sized("decode", "D1", recv_bytes as f64);
        let decoded: Vec<Vec<Tensor>> = received
            .iter()
            .map(|c| Self::decode_chunk(self.compressor.as_ref(), c, served.len(), m))
            .collect();
        let mut expert_inputs = Vec::with_capacity(served.len());
        let mut recv_counts = vec![Vec::with_capacity(p); served.len()];
        for k in 0..served.len() {
            let total: usize = decoded.iter().map(|d| d[k].dims()[0]).sum();
            let mut input = Tensor::zeros(&[total, m]);
            let mut off = 0;
            for src_rows in decoded.iter().map(|d| &d[k]) {
                for r in 0..src_rows.dims()[0] {
                    input.row_mut(off + r).copy_from_slice(src_rows.row(r));
                }
                off += src_rows.dims()[0];
            }
            for d in &decoded {
                recv_counts[k].push(d[k].dims()[0]);
            }
            expert_inputs.push(input);
        }
        drop(d1);

        // E: run each served expert — the local body when this rank is the
        // static home, the installed guest body otherwise.
        let expert_rows: usize = expert_inputs.iter().map(|t| t.dims()[0]).sum();
        let service_start = Instant::now();
        let expert_outputs: Vec<Tensor> = {
            let _s = obs::span_sized("expert", "E", expert_rows as f64);
            served
                .iter()
                .zip(expert_inputs.iter())
                .map(|(&e, input)| {
                    if e / epr == me {
                        self.local_experts[e % epr].forward(input)
                    } else {
                        self.guest_experts
                            .get_mut(&e)
                            .expect("guest body installed for served expert")
                            .forward(input)
                    }
                })
                .collect()
        };
        self.note_service(service_start.elapsed());

        // C2: ship each source its slice of every served expert's output.
        let back_chunks = {
            let _s = obs::span_sized("encode", "C2", (expert_rows * m * 4) as f64);
            let mut back_chunks = Vec::with_capacity(p);
            for src in 0..p {
                let mut per_expert = Vec::with_capacity(served.len());
                for k in 0..served.len() {
                    let before: usize = recv_counts[k][..src].iter().sum();
                    let count = recv_counts[k][src];
                    let mut rows = Tensor::zeros(&[count, m]);
                    for r in 0..count {
                        rows.row_mut(r)
                            .copy_from_slice(expert_outputs[k].row(before + r));
                    }
                    per_expert.push(rows);
                }
                back_chunks.push(Self::encode_chunk(self.compressor.as_ref(), &per_expert, m));
            }
            back_chunks
        };
        let back_bytes: usize = back_chunks.iter().map(Bytes::len).sum();
        let returned = {
            let _s = obs::span_sized("a2a", "A2", back_bytes as f64);
            Self::exchange_placed(
                h,
                back_chunks,
                combine_tag,
                false,
                &serves,
                &empty_chunk,
                timeout,
            )?
        };

        // D2: reassemble each expert's full slot-order rows from its
        // servers' shares, then combine ascending-expert — exactly the
        // serial accumulation order (a token meets each expert at most
        // once, so per-token addition order is unchanged).
        let d2 = obs::span_sized(
            "decode",
            "D2",
            returned.iter().map(Bytes::len).sum::<usize>() as f64,
        );
        let outs_per_rank: Vec<Vec<Tensor>> = returned
            .iter()
            .enumerate()
            .map(|(r2, c)| {
                Self::decode_chunk(self.compressor.as_ref(), c, served_lists[r2].len(), m)
            })
            .collect();
        let mut y = Tensor::zeros(&[n, m]);
        let mut returned_outputs: Vec<Tensor> = Vec::with_capacity(p * epr);
        for e in 0..p * epr {
            let srv = pl.servers(e);
            let g = srv.len();
            let slots = &decision.expert_slots[e];
            let mut rows = Tensor::zeros(&[slots.len(), m]);
            for (i, &r2) in srv.iter().enumerate() {
                let k = served_lists[r2]
                    .iter()
                    .position(|&se| se == e)
                    .expect("server serves e");
                let part = &outs_per_rank[r2][k];
                assert_eq!(
                    part.dims()[0],
                    Self::slot_share(slots.len(), i, g),
                    "combine framing mismatch"
                );
                for (row, sidx) in (i..slots.len()).step_by(g).enumerate() {
                    rows.row_mut(sidx).copy_from_slice(part.row(row));
                }
            }
            for (s, &(t, w)) in slots.iter().enumerate() {
                let orow = rows.row(s);
                let yrow = y.row_mut(t);
                for (yj, &oj) in yrow.iter_mut().zip(orow.iter()) {
                    *yj += w * oj;
                }
            }
            returned_outputs.push(rows);
        }
        drop(d2);
        self.cache = Some(Cache {
            decision,
            recv_counts,
            hosted_recv_counts: BTreeMap::new(),
            hosted_inputs: BTreeMap::new(),
            returned_outputs,
            expert_inputs: Some(expert_inputs),
            n,
            tag_base,
            served: Some(served),
        });
        Ok(y)
    }

    /// The placed backward, mirroring [`forward_placed`]'s fan-out: output
    /// grads travel to each slot's serving rank, every server
    /// differentiates its share with the same canonical per-(expert,
    /// source) recompute grouping as the serial path, and input grads
    /// scatter back. `dx` and the gate grads are bit-identical to the
    /// static serial backward (same per-token accumulation order); expert
    /// weight grads are *partial* per server — the placement controller
    /// sums them across each expert's sync group before stepping.
    fn backward_placed(&mut self, h: &mut RankHandle, dy: &Tensor) -> Result<Tensor, FabricError> {
        let cache = self
            .cache
            .take()
            .expect("distributed backward without forward");
        let served = cache
            .served
            .clone()
            .expect("placed backward without placed forward");
        let pl = self
            .placement
            .clone()
            .expect("placement uninstalled between forward and backward");
        let p = h.world_size();
        let me = h.rank();
        let m = dy.dims()[1];
        let epr = self.experts_per_rank;
        assert_eq!(dy.dims()[0], cache.n, "gradient row count mismatch");
        debug_assert_eq!(pl.served_by(me), served, "placement changed mid-step");
        let served_lists: Vec<Vec<usize>> = (0..p).map(|r| pl.served_by(r)).collect();

        // C1b: per server, the output grads (w · dy) for its slot share of
        // every expert it serves; plus the combine-weight grads, identical
        // to the serial path (returned_outputs holds full slot order).
        let c1b = obs::span_sized("encode", "C1b", (cache.n * m * 4) as f64);
        let mut d_weights: Vec<Vec<f32>> = vec![Vec::new(); cache.n];
        let mut grad_chunks = Vec::with_capacity(p);
        for dst in 0..p {
            let mut per_expert = Vec::with_capacity(served_lists[dst].len());
            for &e in &served_lists[dst] {
                let srv = pl.servers(e);
                let g = srv.len();
                let i = srv.iter().position(|&r| r == dst).expect("dst serves e");
                let slots = &cache.decision.expert_slots[e];
                let count = Self::slot_share(slots.len(), i, g);
                let mut rows = Tensor::zeros(&[count, m]);
                for (row, sidx) in (i..slots.len()).step_by(g).enumerate() {
                    let (t, w) = slots[sidx];
                    let dyrow = dy.row(t);
                    let drow = rows.row_mut(row);
                    for j in 0..m {
                        drow[j] = w * dyrow[j];
                    }
                }
                per_expert.push(rows);
            }
            grad_chunks.push(Self::encode_raw(&per_expert));
        }
        for (t, assigns) in cache.decision.assignments.iter().enumerate() {
            for &(e, _) in assigns {
                let s = cache.decision.expert_slots[e]
                    .iter()
                    .position(|&(tt, _)| tt == t)
                    .expect("assignment implies slot");
                let rows = &cache.returned_outputs[e];
                let dyrow = dy.row(t);
                let orow = rows.row(s);
                d_weights[t].push(dyrow.iter().zip(orow.iter()).map(|(a, b)| a * b).sum());
            }
        }
        drop(c1b);

        let bwd1_tag = cache.tag_base + TAG_STRIDE / 2;
        let bwd2_tag = cache.tag_base + 3 * TAG_STRIDE / 4;
        let serves: Vec<bool> = served_lists.iter().map(|l| !l.is_empty()).collect();
        let empty_raw = Self::encode_raw(&[]);
        let timeout = self.recv_timeout;
        let grad_bytes: usize = grad_chunks.iter().map(Bytes::len).sum();
        let received = {
            let _s = obs::span_sized("a2a", "A1b", grad_bytes as f64);
            Self::exchange_placed(h, grad_chunks, bwd1_tag, true, &serves, &empty_raw, timeout)?
        };

        // Eb: canonical per-(expert, source) recompute + backward on the
        // serving body, sources ascending — the same call sequence the
        // static home would have made for these rows.
        let recv_grad_bytes: usize = received.iter().map(Bytes::len).sum();
        let d1b = obs::span_sized("decode", "D1b", recv_grad_bytes as f64);
        let decoded: Vec<Vec<Tensor>> = received
            .iter()
            .map(|c| Self::decode_raw(c, served.len(), m))
            .collect();
        drop(d1b);
        let dout_rows: usize = cache
            .recv_counts
            .iter()
            .map(|c| c.iter().sum::<usize>())
            .sum();
        let eb = obs::span_sized("expert", "Eb", dout_rows as f64);
        let inputs = cache
            .expert_inputs
            .as_ref()
            .expect("forward caches expert inputs");
        let mut din_per_expert: Vec<Tensor> = (0..served.len())
            .map(|k| {
                let total: usize = cache.recv_counts[k].iter().sum();
                Tensor::zeros(&[total, m])
            })
            .collect();
        for src in 0..p {
            for (k, &e) in served.iter().enumerate() {
                let count = cache.recv_counts[k][src];
                assert_eq!(
                    decoded[src][k].dims()[0],
                    count,
                    "gradient framing mismatch"
                );
                if count == 0 {
                    continue;
                }
                let before: usize = cache.recv_counts[k][..src].iter().sum();
                let mut xin = Tensor::zeros(&[count, m]);
                for row in 0..count {
                    xin.row_mut(row)
                        .copy_from_slice(inputs[k].row(before + row));
                }
                let body: &mut dyn Expert = if e / epr == me {
                    self.local_experts[e % epr].as_mut()
                } else {
                    self.guest_experts
                        .get_mut(&e)
                        .expect("guest body installed for served expert")
                        .as_mut()
                };
                let _ = body.forward(&xin);
                let din = body.backward(&decoded[src][k]);
                for row in 0..count {
                    din_per_expert[k]
                        .row_mut(before + row)
                        .copy_from_slice(din.row(row));
                }
            }
        }
        drop(eb);

        // C2b: input grads back to the token owners.
        let c2b = obs::span_sized("encode", "C2b", (dout_rows * m * 4) as f64);
        let mut back = Vec::with_capacity(p);
        for src in 0..p {
            let mut per_expert = Vec::with_capacity(served.len());
            for k in 0..served.len() {
                let before: usize = cache.recv_counts[k][..src].iter().sum();
                let count = cache.recv_counts[k][src];
                let mut rows = Tensor::zeros(&[count, m]);
                for r in 0..count {
                    rows.row_mut(r)
                        .copy_from_slice(din_per_expert[k].row(before + r));
                }
                per_expert.push(rows);
            }
            back.push(Self::encode_raw(&per_expert));
        }
        drop(c2b);
        let back_bytes: usize = back.iter().map(Bytes::len).sum();
        let returned = {
            let _s = obs::span_sized("a2a", "A2b", back_bytes as f64);
            Self::exchange_placed(h, back, bwd2_tag, false, &serves, &empty_raw, timeout)?
        };

        // D2b: scatter token grads, ascending-expert so the per-token
        // addition order matches the serial backward bit for bit.
        let d2b = obs::span_sized(
            "decode",
            "D2b",
            returned.iter().map(Bytes::len).sum::<usize>() as f64,
        );
        let dins_per_rank: Vec<Vec<Tensor>> = returned
            .iter()
            .enumerate()
            .map(|(r2, c)| Self::decode_raw(c, served_lists[r2].len(), m))
            .collect();
        let mut dx = Tensor::zeros(&[cache.n, m]);
        for e in 0..p * epr {
            let srv = pl.servers(e);
            let g = srv.len();
            let slots = &cache.decision.expert_slots[e];
            for (i, &r2) in srv.iter().enumerate() {
                let k = served_lists[r2]
                    .iter()
                    .position(|&se| se == e)
                    .expect("server serves e");
                let part = &dins_per_rank[r2][k];
                assert_eq!(
                    part.dims()[0],
                    Self::slot_share(slots.len(), i, g),
                    "input-grad framing mismatch"
                );
                for (row, sidx) in (i..slots.len()).step_by(g).enumerate() {
                    let t = slots[sidx].0;
                    let drow = part.row(row);
                    let xrow = dx.row_mut(t);
                    for j in 0..m {
                        xrow[j] += drow[j];
                    }
                }
            }
        }
        drop(d2b);
        let dx_gate = {
            let _g = obs::span("gate", "gateb");
            self.gate.backward(&d_weights)
        };
        dx.add_assign(&dx_gate).expect("same shape");
        Ok(dx)
    }

    /// Direct per-chunk exchange used by the overlapped pipeline, with an
    /// optional liveness deadline on every receive.
    fn exchange(
        h: &mut RankHandle,
        chunks: Vec<Bytes>,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<Vec<Bytes>, FabricError> {
        match timeout {
            Some(t) => reference_all_to_all_timeout(h, chunks, tag, t),
            None => reference_all_to_all(h, chunks, tag),
        }
    }

    /// ScheMoE's pipelined forward: `r = partition_degree` chunks run the
    /// per-chunk chain `C1 → A2A1 → (D1·E·C2) → A2A2 → D2` on the
    /// two-worker overlap executor, in the OptSche submission order
    /// `(C1¹..C1ʳ)(D1·E·C2)¹..(D1·E·C2)ʳ(D2¹..D2ʳ)` on the compute worker
    /// and `A2A1¹..A2A1ʳ A2A2¹..A2A2ʳ` on the comm worker.
    ///
    /// Bit-identity with the serial path comes from three invariants:
    /// the gate runs once on the full batch (identical routing/capacity);
    /// each expert slot list is split into `r` *contiguous* segments, and
    /// expert bodies are row-wise, so per-row outputs do not depend on
    /// batch composition; and the combine reassembles the returned
    /// segments into full slot order before accumulating in exactly the
    /// serial loop's owner-major order.
    ///
    /// The per-chunk exchanges are direct tagged sends at
    /// `chunk_tag(tag_base, lane, c)` — with `r` exchanges in flight per
    /// lane, structured A2A algorithms (which assume exclusive tag windows
    /// and whole-layer payloads) do not apply. That is also why degraded
    /// mode composes with overlap: each per-chunk exchange independently
    /// skips dead peers ([`exchange_live`](Self::exchange_live)) and
    /// substitutes zero-row placeholders, while the masked gate guarantees
    /// no rows were routed to a dead rank's experts in the first place.
    fn forward_overlapped(
        &mut self,
        h: &mut RankHandle,
        x: &Tensor,
        tag_base: u64,
    ) -> Result<Tensor, FabricError> {
        let r = self.partition_degree;
        let p = h.world_size();
        let m = x.dims()[1];
        let n = x.dims()[0];
        let epr = self.experts_per_rank;
        let timeout = self.recv_timeout;
        // Degraded mode: record the quality warning (span + counter) and
        // route around the dead ranks' experts, exactly as the serial path.
        let _degraded_span = self.is_degraded().then(|| {
            obs::counters_for_rank(h.rank()).add_degraded_step();
            obs::span(
                "degraded",
                format!("degraded step ({} dead)", self.dead_ranks.len()),
            )
        });
        let decision = {
            let _g = obs::span("gate", "gate");
            if self.is_degraded() {
                let mask = self.dead_expert_mask(p);
                self.gate.forward_masked(x, Some(&mask))
            } else {
                self.gate.forward(x)
            }
        };
        self.note_decision(h.rank(), p, &decision);
        let decision_ref = &decision;

        // Field split: pipeline closures share the compressor immutably
        // while the expert list is handed to the compute stages mutably.
        let compressor: &dyn Compressor = self.compressor.as_ref();
        let dead = &self.dead_ranks;
        // With dead peers, every per-chunk exchange swaps their inbound
        // chunks for this encoding of zero rows per local expert.
        let placeholder = (!self.dead_ranks.is_empty()).then(|| {
            let empty = vec![Tensor::zeros(&[0, m]); epr];
            Self::encode_chunk(compressor, &empty, m)
        });
        let placeholder = placeholder.as_ref();
        let experts = Mutex::new(&mut self.local_experts);
        let handle = Mutex::new(h);

        // Single-producer single-consumer mailboxes between stages, one
        // per chunk; the executor's dependency edges order the accesses.
        let mailbox = |count: usize| -> Vec<Mutex<Option<Vec<Bytes>>>> {
            (0..count).map(|_| Mutex::new(None)).collect()
        };
        let to_dispatch = mailbox(r);
        let dispatched = mailbox(r);
        let to_combine = mailbox(r);
        let combined = mailbox(r);
        // Per chunk: decoded dispatch payloads `[src][le]` (kept for the
        // backward's serial-order input reassembly) and decoded combine
        // payloads `[owner][le]`.
        let chunk_inputs: Vec<Mutex<Option<Vec<Vec<Tensor>>>>> =
            (0..r).map(|_| Mutex::new(None)).collect();
        let chunk_returned: Vec<Mutex<Option<Vec<Vec<Tensor>>>>> =
            (0..r).map(|_| Mutex::new(None)).collect();
        // First fabric error wins; later tasks short-circuit on it, and the
        // cancel flag tells the executor to skip queued lanes outright —
        // one dead peer must cost one receive deadline, not one per lane.
        let error: Mutex<Option<FabricError>> = Mutex::new(None);
        let cancel = AtomicBool::new(false);

        // Task indices: C1ᶜ = c, A2A1ᶜ = r+c, (D1·E·C2)ᶜ = 2r+c,
        // A2A2ᶜ = 3r+c, D2ᶜ = 4r+c.
        let mut tasks: Vec<ExecTask<'_>> = Vec::with_capacity(5 * r);
        for c in 0..r {
            let to_dispatch = &to_dispatch[c];
            let error = &error;
            tasks.push(ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: Box::new(move || {
                    if error.lock().is_some() {
                        return;
                    }
                    let _s = obs::span_sized(
                        "encode",
                        format!("C1[c{c}]"),
                        (n * m * 4) as f64 / r as f64,
                    );
                    let mut chunks = Vec::with_capacity(p);
                    for dst in 0..p {
                        let mut per_expert = Vec::with_capacity(epr);
                        for le in 0..epr {
                            let slots = &decision_ref.expert_slots[dst * epr + le];
                            let seg = &slots[c * slots.len() / r..(c + 1) * slots.len() / r];
                            let mut rows = Tensor::zeros(&[seg.len(), m]);
                            for (s, &(t, _)) in seg.iter().enumerate() {
                                rows.row_mut(s).copy_from_slice(x.row(t));
                            }
                            per_expert.push(rows);
                        }
                        chunks.push(Self::encode_chunk(compressor, &per_expert, m));
                    }
                    *to_dispatch.lock() = Some(chunks);
                }),
            });
        }
        for c in 0..r {
            let to_dispatch = &to_dispatch[c];
            let dispatched = &dispatched[c];
            let handle = &handle;
            let error = &error;
            let cancel = &cancel;
            tasks.push(ExecTask {
                worker: Worker::Comm,
                deps: vec![c],
                span: None,
                run: Box::new(move || {
                    let Some(chunks) = to_dispatch.lock().take() else {
                        return;
                    };
                    let bytes: usize = chunks.iter().map(Bytes::len).sum();
                    let _s = obs::span_sized("a2a", format!("A1[c{c}]"), bytes as f64);
                    let tag = chunk_tag(tag_base, lanes::LANE_DISPATCH, c);
                    let result = match placeholder {
                        Some(ph) => {
                            Self::exchange_live(&mut handle.lock(), chunks, tag, dead, ph, timeout)
                        }
                        None => Self::exchange(&mut handle.lock(), chunks, tag, timeout),
                    };
                    match result {
                        Ok(got) => *dispatched.lock() = Some(got),
                        Err(e) => {
                            error.lock().get_or_insert(e);
                            cancel.store(true, Ordering::Release);
                        }
                    }
                }),
            });
        }
        for c in 0..r {
            let dispatched = &dispatched[c];
            let to_combine = &to_combine[c];
            let chunk_inputs = &chunk_inputs[c];
            let experts = &experts;
            tasks.push(ExecTask {
                worker: Worker::Compute,
                deps: vec![r + c],
                span: Some(("pipe", format!("D1·E·C2[c{c}]"))),
                run: Box::new(move || {
                    let Some(received) = dispatched.lock().take() else {
                        return;
                    };
                    let recv_bytes: usize = received.iter().map(Bytes::len).sum();
                    let d1 = obs::span_sized("decode", format!("D1[c{c}]"), recv_bytes as f64);
                    let decoded: Vec<Vec<Tensor>> = received
                        .iter()
                        .map(|ch| Self::decode_chunk(compressor, ch, epr, m))
                        .collect();
                    drop(d1);
                    // Chunk expert input: src-major concat, the chunk-local
                    // analogue of the serial layout.
                    let mut experts_guard = experts.lock();
                    let rows_total: usize = decoded.iter().flatten().map(|t| t.dims()[0]).sum();
                    let e_span = obs::span_sized("expert", format!("E[c{c}]"), rows_total as f64);
                    let mut outputs = Vec::with_capacity(epr);
                    for le in 0..epr {
                        let total: usize = decoded.iter().map(|d| d[le].dims()[0]).sum();
                        let mut input = Tensor::zeros(&[total, m]);
                        let mut off = 0;
                        for src_rows in decoded.iter().map(|d| &d[le]) {
                            for row in 0..src_rows.dims()[0] {
                                input.row_mut(off + row).copy_from_slice(src_rows.row(row));
                            }
                            off += src_rows.dims()[0];
                        }
                        outputs.push(experts_guard[le].forward(&input));
                    }
                    drop(e_span);
                    drop(experts_guard);
                    let c2 =
                        obs::span_sized("encode", format!("C2[c{c}]"), (rows_total * m * 4) as f64);
                    let mut back = Vec::with_capacity(p);
                    for src in 0..p {
                        let mut per_expert = Vec::with_capacity(epr);
                        for le in 0..epr {
                            let before: usize =
                                decoded[..src].iter().map(|d| d[le].dims()[0]).sum();
                            let count = decoded[src][le].dims()[0];
                            let mut rows = Tensor::zeros(&[count, m]);
                            for row in 0..count {
                                rows.row_mut(row)
                                    .copy_from_slice(outputs[le].row(before + row));
                            }
                            per_expert.push(rows);
                        }
                        back.push(Self::encode_chunk(compressor, &per_expert, m));
                    }
                    drop(c2);
                    *to_combine.lock() = Some(back);
                    *chunk_inputs.lock() = Some(decoded);
                }),
            });
        }
        for c in 0..r {
            let to_combine = &to_combine[c];
            let combined = &combined[c];
            let handle = &handle;
            let error = &error;
            let cancel = &cancel;
            tasks.push(ExecTask {
                worker: Worker::Comm,
                deps: vec![2 * r + c],
                span: None,
                run: Box::new(move || {
                    let Some(chunks) = to_combine.lock().take() else {
                        return;
                    };
                    let bytes: usize = chunks.iter().map(Bytes::len).sum();
                    let _s = obs::span_sized("a2a", format!("A2[c{c}]"), bytes as f64);
                    let tag = chunk_tag(tag_base, lanes::LANE_COMBINE, c);
                    let result = match placeholder {
                        Some(ph) => {
                            Self::exchange_live(&mut handle.lock(), chunks, tag, dead, ph, timeout)
                        }
                        None => Self::exchange(&mut handle.lock(), chunks, tag, timeout),
                    };
                    match result {
                        Ok(got) => *combined.lock() = Some(got),
                        Err(e) => {
                            error.lock().get_or_insert(e);
                            cancel.store(true, Ordering::Release);
                        }
                    }
                }),
            });
        }
        for c in 0..r {
            let combined = &combined[c];
            let chunk_returned = &chunk_returned[c];
            tasks.push(ExecTask {
                worker: Worker::Compute,
                deps: vec![3 * r + c],
                span: None,
                run: Box::new(move || {
                    let Some(returned) = combined.lock().take() else {
                        return;
                    };
                    let bytes: usize = returned.iter().map(Bytes::len).sum();
                    let _s = obs::span_sized("decode", format!("D2[c{c}]"), bytes as f64);
                    let decoded: Vec<Vec<Tensor>> = returned
                        .iter()
                        .map(|ch| Self::decode_chunk(compressor, ch, epr, m))
                        .collect();
                    *chunk_returned.lock() = Some(decoded);
                }),
            });
        }
        let exec_result = run_overlapped_cancellable(tasks, &cancel);

        // A comm lane that failed records its typed error in the mailbox
        // and the dependent tasks skip; prefer that over the executor's
        // panic report when both exist (the panic is usually downstream
        // fallout of the fabric failure).
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        if let Err(e) = exec_result {
            return Err(FabricError::Worker {
                detail: e.to_string(),
            });
        }
        let chunk_inputs: Vec<Vec<Vec<Tensor>>> = chunk_inputs
            .into_iter()
            .map(|mx| mx.into_inner().expect("pipeline completed"))
            .collect();
        let chunk_returned: Vec<Vec<Vec<Tensor>>> = chunk_returned
            .into_iter()
            .map(|mx| mx.into_inner().expect("pipeline completed"))
            .collect();

        // Reassemble serial-order state. Received row counts sum over
        // chunks; serial expert input is src-major with each src's rows in
        // slot order, i.e. its chunk segments concatenated in chunk order.
        let mut recv_counts = vec![vec![0usize; p]; epr];
        for inputs in &chunk_inputs {
            for (src, per_le) in inputs.iter().enumerate() {
                for le in 0..epr {
                    recv_counts[le][src] += per_le[le].dims()[0];
                }
            }
        }
        let mut expert_inputs = Vec::with_capacity(epr);
        for (le, counts) in recv_counts.iter().enumerate() {
            let total: usize = counts.iter().sum();
            let mut input = Tensor::zeros(&[total, m]);
            let mut off = 0;
            for src in 0..p {
                for inputs in &chunk_inputs {
                    let seg = &inputs[src][le];
                    for row in 0..seg.dims()[0] {
                        input.row_mut(off + row).copy_from_slice(seg.row(row));
                    }
                    off += seg.dims()[0];
                }
            }
            expert_inputs.push(input);
        }

        // Combine, exactly as the serial loop: reassembling each expert's
        // returned segments in chunk order restores full slot order, so the
        // accumulation below is the serial computation verbatim.
        let mut y = Tensor::zeros(&[n, m]);
        let mut returned_outputs: Vec<Tensor> = Vec::with_capacity(p * epr);
        for owner in 0..p {
            for le in 0..epr {
                let e = owner * epr + le;
                let slots = &decision.expert_slots[e];
                let mut rows = Tensor::zeros(&[slots.len(), m]);
                let mut off = 0;
                for returned in &chunk_returned {
                    let seg = &returned[owner][le];
                    for row in 0..seg.dims()[0] {
                        rows.row_mut(off + row).copy_from_slice(seg.row(row));
                    }
                    off += seg.dims()[0];
                }
                assert_eq!(off, slots.len(), "combine framing mismatch");
                for (s, &(t, w)) in slots.iter().enumerate() {
                    let orow = rows.row(s);
                    let yrow = y.row_mut(t);
                    for (yj, &oj) in yrow.iter_mut().zip(orow.iter()) {
                        *yj += w * oj;
                    }
                }
                returned_outputs.push(rows);
            }
        }
        self.cache = Some(Cache {
            decision,
            recv_counts,
            hosted_recv_counts: BTreeMap::new(),
            hosted_inputs: BTreeMap::new(),
            returned_outputs,
            expert_inputs: Some(expert_inputs),
            n,
            tag_base,
            served: None,
        });
        Ok(y)
    }

    /// Expert-parallel backward: two more (gradient) all-to-alls.
    ///
    /// Dispatches to the serial or overlapped implementation under the
    /// same condition as [`forward`](Self::forward); both produce
    /// bit-identical gradients.
    ///
    /// # Panics
    ///
    /// Panics if called without a cached forward.
    pub fn backward(&mut self, h: &mut RankHandle, dy: &Tensor) -> Result<Tensor, FabricError> {
        self.backward_with_allreduce(h, dy, None)
    }

    /// [`backward`](Self::backward), optionally folding a replicated-
    /// parameter gradient allreduce into the same submitted task graph.
    ///
    /// On the overlapped path the reduction is the comm worker's first
    /// task, so it runs concurrently with the backward's compute stages
    /// (the combine-gradient build); on the serial path it simply runs
    /// first. Every rank must agree on whether an allreduce is attached —
    /// the dispatch condition itself (degree, live count, failover) is
    /// replicated state, so the path choice always agrees.
    ///
    /// # Panics
    ///
    /// Panics if called without a cached forward.
    pub fn backward_with_allreduce(
        &mut self,
        h: &mut RankHandle,
        dy: &Tensor,
        allreduce: Option<GradAllreduce<'_>>,
    ) -> Result<Tensor, FabricError> {
        if self.cache.as_ref().is_some_and(|c| c.served.is_some()) {
            // The forward ran the placed path; mirror its fan-out. The
            // reduction keeps the serial ordering: before the exchanges.
            if let Some(ar) = allreduce {
                allreduce_live(h, ar.values, ar.tag, ar.live)?;
            }
            return self.backward_placed(h, dy);
        }
        let live = h.world_size() - self.dead_ranks.len();
        if self.partition_degree <= 1 || live < 2 || self.has_failover() {
            // Same ordering the overlapped graph gives the reduction:
            // before the backward's exchanges.
            if let Some(ar) = allreduce {
                allreduce_live(h, ar.values, ar.tag, ar.live)?;
            }
            self.backward_serial(h, dy)
        } else {
            self.backward_overlapped(h, dy, allreduce)
        }
    }

    /// The serial reference backward: one gradient dispatch A2A, all
    /// expert backwards, one gradient return A2A, no overlap.
    fn backward_serial(&mut self, h: &mut RankHandle, dy: &Tensor) -> Result<Tensor, FabricError> {
        let cache = self
            .cache
            .take()
            .expect("distributed backward without forward");
        let p = h.world_size();
        let m = dy.dims()[1];
        let epr = self.experts_per_rank;
        assert_eq!(dy.dims()[0], cache.n, "gradient row count mismatch");

        // Combine backward: per admitted slot, grad of the expert output
        // and of the combine weight. Backward spans use `*b` names so the
        // profiler's forward-stage models never ingest them.
        let c1b = obs::span_sized("encode", "C1b", (cache.n * m * 4) as f64);
        let mut d_weights: Vec<Vec<f32>> = vec![Vec::new(); cache.n];
        let mut grad_chunks = Vec::with_capacity(p);
        for owner in 0..p {
            let mut per_expert = Vec::with_capacity(epr);
            for le in 0..epr {
                let e = owner * epr + le;
                let slots = &cache.decision.expert_slots[e];
                let mut rows = Tensor::zeros(&[slots.len(), m]);
                for (s, &(t, w)) in slots.iter().enumerate() {
                    let dyrow = dy.row(t);
                    let drow = rows.row_mut(s);
                    for j in 0..m {
                        drow[j] = w * dyrow[j];
                    }
                }
                per_expert.push(rows);
            }
            grad_chunks.push(Self::encode_raw(&per_expert));
        }
        // Weight grads in per-token assignment order.
        for (t, assigns) in cache.decision.assignments.iter().enumerate() {
            for &(e, _) in assigns {
                let s = cache.decision.expert_slots[e]
                    .iter()
                    .position(|&(tt, _)| tt == t)
                    .expect("assignment implies slot");
                let owner = self.owner_of(e);
                let le = e % epr;
                let rows = &cache.returned_outputs[owner * epr + le];
                let dyrow = dy.row(t);
                let orow = rows.row(s);
                d_weights[t].push(dyrow.iter().zip(orow.iter()).map(|(a, b)| a * b).sum());
            }
        }

        drop(c1b);
        let bwd1_tag = cache.tag_base + TAG_STRIDE / 2;
        let bwd2_tag = cache.tag_base + 3 * TAG_STRIDE / 4;
        // Hosted backward dispatch: output grads for a routed dead owner's
        // experts go to its failover host, mirroring the forward.
        let routes = self.failover_routes();
        for &(j, host) in &routes {
            h.send(host, Self::hosted_tag(bwd1_tag, j), grad_chunks[j].clone())?;
        }
        let grad_bytes: usize = grad_chunks.iter().map(Bytes::len).sum();
        let received = {
            let _s = obs::span_sized("a2a", "A1b", grad_bytes as f64);
            if self.is_degraded() {
                let empty = vec![Tensor::zeros(&[0, m]); epr];
                let placeholder = Self::encode_raw(&empty);
                Self::exchange_live(
                    h,
                    grad_chunks,
                    bwd1_tag,
                    &self.dead_ranks,
                    &placeholder,
                    self.recv_timeout,
                )?
            } else {
                self.a2a.all_to_all(h, grad_chunks, bwd1_tag)?
            }
        };

        // Failover host phase (backward): differentiate the hosted wards'
        // experts on the survivors' output grads and return the input
        // grads, mirroring the forward's hosted lanes.
        for (&j, wards) in self.hosted_experts.iter_mut() {
            let _s = obs::span("expert", format!("Eb[host r{j}]"));
            let counts = cache
                .hosted_recv_counts
                .get(&j)
                .expect("hosted backward without hosted forward");
            let mut decoded: Vec<Vec<Tensor>> = Vec::with_capacity(p);
            for src in 0..p {
                if self.dead_ranks.contains(&src) {
                    decoded.push(vec![Tensor::zeros(&[0, m]); epr]);
                } else {
                    let chunk = match self.recv_timeout {
                        Some(t) => h.recv_timeout(src, Self::hosted_tag(bwd1_tag, j), t)?,
                        None => h.recv(src, Self::hosted_tag(bwd1_tag, j))?,
                    };
                    decoded.push(Self::decode_raw(&chunk, epr, m));
                }
            }
            // Same canonical per-(expert, source) grouping the ward itself
            // would have used, so the hosted expert's weight grads stay
            // bit-identical to the dead rank's own.
            let ward_inputs = cache
                .hosted_inputs
                .get(&j)
                .expect("hosted backward without hosted forward");
            let mut dins: Vec<Tensor> = (0..epr)
                .map(|le| {
                    let total: usize = counts[le].iter().sum();
                    Tensor::zeros(&[total, m])
                })
                .collect();
            for src in 0..p {
                for le in 0..epr {
                    let count = counts[le][src];
                    if count == 0 {
                        continue;
                    }
                    let before: usize = counts[le][..src].iter().sum();
                    let mut xin = Tensor::zeros(&[count, m]);
                    for row in 0..count {
                        xin.row_mut(row)
                            .copy_from_slice(ward_inputs[le].row(before + row));
                    }
                    let _ = wards[le].forward(&xin);
                    let din = wards[le].backward(&decoded[src][le]);
                    for row in 0..count {
                        dins[le].row_mut(before + row).copy_from_slice(din.row(row));
                    }
                }
            }
            for src in 0..p {
                if self.dead_ranks.contains(&src) {
                    continue;
                }
                let mut per_expert = Vec::with_capacity(epr);
                for le in 0..epr {
                    let before: usize = counts[le][..src].iter().sum();
                    let count = counts[le][src];
                    let mut rows = Tensor::zeros(&[count, m]);
                    for r in 0..count {
                        rows.row_mut(r).copy_from_slice(dins[le].row(before + r));
                    }
                    per_expert.push(rows);
                }
                h.send(
                    src,
                    Self::hosted_tag(bwd2_tag, j),
                    Self::encode_raw(&per_expert),
                )?;
            }
        }

        // Decode the received output grads (its own `D1b` span so the
        // profiler models the gradient decode independently of the expert
        // backward), then differentiate the experts on the concatenation.
        let recv_grad_bytes: usize = received.iter().map(Bytes::len).sum();
        let d1b = obs::span_sized("decode", "D1b", recv_grad_bytes as f64);
        let decoded: Vec<Vec<Tensor>> = received
            .iter()
            .map(|c| Self::decode_raw(c, epr, m))
            .collect();
        drop(d1b);
        let dout_rows: usize = cache
            .recv_counts
            .iter()
            .map(|c| c.iter().sum::<usize>())
            .sum();
        let eb = obs::span_sized("expert", "Eb", dout_rows as f64);
        // Canonical expert backward: one recompute+backward per non-empty
        // (expert, source) group, sources ascending. The overlapped
        // backward makes exactly the same sequence of expert calls (its
        // per-source tasks run in ascending order on one worker), so the
        // weight-gradient accumulation order — and with it every gradient
        // — is identical at any partition degree by construction. A
        // whole-batch backward here would fuse the sources into one GEMM
        // and change the floating-point grouping.
        let inputs = cache
            .expert_inputs
            .as_ref()
            .expect("forward caches expert inputs");
        let mut din_per_expert: Vec<Tensor> = (0..epr)
            .map(|le| {
                let total: usize = cache.recv_counts[le].iter().sum();
                Tensor::zeros(&[total, m])
            })
            .collect();
        for src in 0..p {
            for le in 0..epr {
                let count = cache.recv_counts[le][src];
                assert_eq!(
                    decoded[src][le].dims()[0],
                    count,
                    "gradient framing mismatch"
                );
                if count == 0 {
                    continue;
                }
                let before: usize = cache.recv_counts[le][..src].iter().sum();
                let mut xin = Tensor::zeros(&[count, m]);
                for row in 0..count {
                    xin.row_mut(row)
                        .copy_from_slice(inputs[le].row(before + row));
                }
                let _ = self.local_experts[le].forward(&xin);
                let din = self.local_experts[le].backward(&decoded[src][le]);
                for row in 0..count {
                    din_per_expert[le]
                        .row_mut(before + row)
                        .copy_from_slice(din.row(row));
                }
            }
        }

        drop(eb);
        // Ship input grads back to the token owners.
        let c2b = obs::span_sized("encode", "C2b", (dout_rows * m * 4) as f64);
        let mut back = Vec::with_capacity(p);
        for src in 0..p {
            let mut per_expert = Vec::with_capacity(epr);
            for le in 0..epr {
                let before: usize = cache.recv_counts[le][..src].iter().sum();
                let count = cache.recv_counts[le][src];
                let mut rows = Tensor::zeros(&[count, m]);
                for r in 0..count {
                    rows.row_mut(r)
                        .copy_from_slice(din_per_expert[le].row(before + r));
                }
                per_expert.push(rows);
            }
            back.push(Self::encode_raw(&per_expert));
        }
        drop(c2b);
        let back_bytes: usize = back.iter().map(Bytes::len).sum();
        let returned = {
            let _s = obs::span_sized("a2a", "A2b", back_bytes as f64);
            if self.is_degraded() {
                let empty = vec![Tensor::zeros(&[0, m]); epr];
                let placeholder = Self::encode_raw(&empty);
                Self::exchange_live(
                    h,
                    back,
                    bwd2_tag,
                    &self.dead_ranks,
                    &placeholder,
                    self.recv_timeout,
                )?
            } else {
                self.a2a.all_to_all(h, back, bwd2_tag)?
            }
        };

        // Hosted backward combine: input grads for tokens served by a
        // failover host come back on the hosted lane.
        let mut hosted_dins: BTreeMap<usize, Bytes> = BTreeMap::new();
        for &(j, host) in &routes {
            let chunk = match self.recv_timeout {
                Some(t) => h.recv_timeout(host, Self::hosted_tag(bwd2_tag, j), t)?,
                None => h.recv(host, Self::hosted_tag(bwd2_tag, j))?,
            };
            hosted_dins.insert(j, chunk);
        }

        // Dispatch backward: scatter token gradients.
        let d2b = obs::span_sized(
            "decode",
            "D2b",
            returned.iter().map(Bytes::len).sum::<usize>() as f64,
        );
        let mut dx = Tensor::zeros(&[cache.n, m]);
        for owner in 0..p {
            let chunk = hosted_dins.get(&owner).unwrap_or(&returned[owner]);
            let outs = Self::decode_raw(chunk, epr, m);
            for (le, rows) in outs.into_iter().enumerate() {
                let e = owner * epr + le;
                let slots = &cache.decision.expert_slots[e];
                for (s, &(t, _)) in slots.iter().enumerate() {
                    let drow = rows.row(s);
                    let xrow = dx.row_mut(t);
                    for j in 0..m {
                        xrow[j] += drow[j];
                    }
                }
            }
        }
        drop(d2b);
        let dx_gate = {
            let _g = obs::span("gate", "gateb");
            self.gate.backward(&d_weights)
        };
        dx.add_assign(&dx_gate).expect("same shape");
        Ok(dx)
    }

    /// ScheMoE's pipelined backward: gradients flow per *peer* through
    /// the two-worker overlap executor, so source rank `j`'s expert
    /// backward hides the exchanges of sources `> j`, with an optional
    /// replicated-parameter allreduce as the comm worker's first task.
    ///
    /// Task graph (compute worker order, then comm worker order; `p`
    /// ranks, `q` live peers):
    ///
    /// ```text
    /// compute: C1b⁰..C1bᵖ⁻¹  dW  (D1b·Eb·C2b)⁰..(D1b·Eb·C2b)ᵖ⁻¹  D2b⁰..D2bᵖ⁻¹
    /// comm   : S1¹..S1ᑫ  R1¹..R1ᑫ  [AR]  S2¹..S2ᑫ  R2¹..R2ᑫ
    /// ```
    ///
    /// Unlike the forward, whose chunking follows `partition_degree`, the
    /// backward pipelines at per-source granularity: the canonical expert
    /// backward is one recompute+backward per non-empty (expert, source)
    /// group in ascending source order — exactly the serial backward's
    /// grouping — so the weight-gradient accumulation order is identical
    /// at every degree and the grads stay bit-identical while source
    /// `j`'s expert backward overlaps the remaining exchanges. The comm
    /// queue issues every send of a lane before any receive of it, and
    /// sends depend only on local compute, so the order is deadlock-free
    /// by construction. This rank's own chunks loop back through the
    /// mailboxes (still encode/decode round-tripped, exactly like the
    /// serial exchange's self-chunk) without touching the wire.
    ///
    /// The allreduce sits *between* the grad exchange (S1/R1) and the
    /// return exchange (S2/R2): putting it any earlier would stall every
    /// peer's expert-backward chain behind it, while between the lanes it
    /// fills exactly the window where the comm worker would otherwise sit
    /// idle waiting for expert backwards to produce return traffic.
    fn backward_overlapped(
        &mut self,
        h: &mut RankHandle,
        dy: &Tensor,
        allreduce: Option<GradAllreduce<'_>>,
    ) -> Result<Tensor, FabricError> {
        let cache = self
            .cache
            .take()
            .expect("distributed backward without forward");
        let p = h.world_size();
        let me = h.rank();
        let m = dy.dims()[1];
        let epr = self.experts_per_rank;
        let n = cache.n;
        let timeout = self.recv_timeout;
        assert_eq!(dy.dims()[0], n, "gradient row count mismatch");
        let _degraded_span = self.is_degraded().then(|| {
            obs::counters_for_rank(h.rank()).add_degraded_step();
            obs::span(
                "degraded",
                format!("degraded step ({} dead)", self.dead_ranks.len()),
            )
        });

        let tag_base = cache.tag_base;
        let decision = &cache.decision;
        let recv_counts = &cache.recv_counts;
        let returned_outputs = &cache.returned_outputs;
        let inputs = cache
            .expert_inputs
            .as_ref()
            .expect("forward caches expert inputs");
        let dead = &self.dead_ranks;
        let experts = Mutex::new(&mut self.local_experts);
        let handle = Mutex::new(h);

        // Live peers in ascending order; dead sources contribute zero-row
        // groups locally and never touch the wire.
        let others: Vec<usize> = (0..p).filter(|&j| j != me && !dead.contains(&j)).collect();
        let q = others.len();
        // Position of peer j in `others` (receive-task index lookup).
        let pos = |j: usize| others.iter().position(|&o| o == j).expect("live peer");

        // Mailboxes between stages, one per source/owner rank (single
        // producer, single consumer, ordered by the executor's edges).
        let mailbox = |count: usize| -> Vec<Mutex<Option<Bytes>>> {
            (0..count).map(|_| Mutex::new(None)).collect()
        };
        // C1b[j] → S1/D1b[me]: encoded output grads for owner j's experts.
        let grad_chunks = mailbox(p);
        // R1[j] → D1b[j]: encoded output grads received from source j.
        let grad_recv = mailbox(p);
        // D1b[j] → Eb[j]: decoded output grads `[le]` from source j.
        let grads_decoded: Vec<Mutex<Option<Vec<Tensor>>>> =
            (0..p).map(|_| Mutex::new(None)).collect();
        // Eb[j] → C2b[j]: input grads `[le]` for source j's rows.
        let din_rows: Vec<Mutex<Option<Vec<Tensor>>>> = (0..p).map(|_| Mutex::new(None)).collect();
        // C2b[j] → S2/D2b[me]: encoded input grads for source j.
        let back_chunks = mailbox(p);
        // R2[j] → D2b[j]: encoded input grads returned by owner j.
        let ret_recv = mailbox(p);
        // D2b[j] → scatter: decoded input grads `[le]` from owner j.
        let dins_decoded: Vec<Mutex<Option<Vec<Tensor>>>> =
            (0..p).map(|_| Mutex::new(None)).collect();
        let d_weights_box: Mutex<Option<Vec<Vec<f32>>>> = Mutex::new(None);
        let error: Mutex<Option<FabricError>> = Mutex::new(None);
        let cancel = AtomicBool::new(false);

        // Task indices (base = 1 with an attached allreduce, else 0):
        // C1bʲ = j, dW = p, S1ᵏ = p+1+k, R1ᵏ = p+1+q+k, AR = p+1+2q,
        // then with t0 = p+1+2q+base:
        // D1bʲ = t0+3j, Ebʲ = t0+3j+1, C2bʲ = t0+3j+2,
        // S2ᵏ = t0+3p+k, R2ᵏ = t0+3p+q+k, D2bʲ = t0+3p+2q+j.
        let base = usize::from(allreduce.is_some());
        let t0 = p + 1 + 2 * q + base;
        let mut tasks: Vec<ExecTask<'_>> = Vec::with_capacity(base + 4 * p + 4 * q + 1);
        // C1b: per-owner combine-gradient build + raw encode. Identical
        // per-slot arithmetic to the serial build, merely split by owner
        // so owner j's send can start while owner j+1's grads still build.
        for j in 0..p {
            let grad_chunks = &grad_chunks[j];
            let error = &error;
            tasks.push(ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: None,
                run: Box::new(move || {
                    if error.lock().is_some() {
                        return;
                    }
                    let _s = obs::span_sized(
                        "encode",
                        format!("C1b[o{j}]"),
                        (n * m * 4) as f64 / p as f64,
                    );
                    let mut per_expert = Vec::with_capacity(epr);
                    for le in 0..epr {
                        let slots = &decision.expert_slots[j * epr + le];
                        let mut rows = Tensor::zeros(&[slots.len(), m]);
                        for (s, &(t, w)) in slots.iter().enumerate() {
                            let dyrow = dy.row(t);
                            let drow = rows.row_mut(s);
                            for i in 0..m {
                                drow[i] = w * dyrow[i];
                            }
                        }
                        per_expert.push(rows);
                    }
                    *grad_chunks.lock() = Some(Self::encode_raw(&per_expert));
                }),
            });
        }
        // dW: whole-batch combine-weight gradients, in the serial path's
        // per-token assignment order. Pushed after the C1b encodes so the
        // comm lanes start as early as possible.
        {
            let d_weights_box = &d_weights_box;
            let error = &error;
            tasks.push(ExecTask {
                worker: Worker::Compute,
                deps: vec![],
                span: Some(("encode", "dW".to_string())),
                run: Box::new(move || {
                    if error.lock().is_some() {
                        return;
                    }
                    let mut d_weights: Vec<Vec<f32>> = vec![Vec::new(); n];
                    for (t, assigns) in decision.assignments.iter().enumerate() {
                        for &(e, _) in assigns {
                            let s = decision.expert_slots[e]
                                .iter()
                                .position(|&(tt, _)| tt == t)
                                .expect("assignment implies slot");
                            let owner = e / epr;
                            let le = e % epr;
                            let rows = &returned_outputs[owner * epr + le];
                            let dyrow = dy.row(t);
                            let orow = rows.row(s);
                            d_weights[t]
                                .push(dyrow.iter().zip(orow.iter()).map(|(a, b)| a * b).sum());
                        }
                    }
                    *d_weights_box.lock() = Some(d_weights);
                }),
            });
        }
        // S1: per-peer output-grad send on the backward grad lane, as soon
        // as that peer's C1b is encoded. Tags are receiver-indexed:
        // message i→j travels on `chunk_tag(.., LANE_BWD_GRAD, j)`.
        for &j in &others {
            let grad_chunks = &grad_chunks[j];
            let handle = &handle;
            let error = &error;
            let cancel = &cancel;
            tasks.push(ExecTask {
                worker: Worker::Comm,
                deps: vec![j],
                span: None,
                run: Box::new(move || {
                    let Some(chunk) = grad_chunks.lock().take() else {
                        return;
                    };
                    let _s = obs::span_sized("a2a", format!("A1b[p{j}]"), chunk.len() as f64);
                    let tag = chunk_tag(tag_base, lanes::LANE_BWD_GRAD, j);
                    if let Err(e) = handle.lock().send(j, tag, chunk) {
                        error.lock().get_or_insert(e);
                        cancel.store(true, Ordering::Release);
                    }
                }),
            });
        }
        // R1: per-peer output-grad receive, sources ascending, after every
        // send (sends depend only on local compute, so this order cannot
        // deadlock). The `A1bw` wait spans are deliberately outside the
        // profiler's stem set: blocked-receive time measures peer skew,
        // not wire cost, and must not pollute the A1b model.
        for &j in &others {
            let grad_recv = &grad_recv[j];
            let handle = &handle;
            let error = &error;
            let cancel = &cancel;
            tasks.push(ExecTask {
                worker: Worker::Comm,
                deps: vec![],
                span: Some(("a2a", format!("A1bw[p{j}]"))),
                run: Box::new(move || {
                    if error.lock().is_some() {
                        return;
                    }
                    let tag = chunk_tag(tag_base, lanes::LANE_BWD_GRAD, me);
                    let result = {
                        let mut hh = handle.lock();
                        match timeout {
                            Some(t) => hh.recv_timeout(j, tag, t),
                            None => hh.recv(j, tag),
                        }
                    };
                    match result {
                        Ok(got) => *grad_recv.lock() = Some(got),
                        Err(e) => {
                            error.lock().get_or_insert(e);
                            cancel.store(true, Ordering::Release);
                        }
                    }
                }),
            });
        }
        // AR: the replicated-parameter allreduce, queued once the grad
        // exchange is through so it rides under the expert-backward chain
        // — the longest stretch where the comm worker has nothing to move.
        if let Some(ar) = allreduce {
            let handle = &handle;
            let error = &error;
            let cancel = &cancel;
            tasks.push(ExecTask {
                worker: Worker::Comm,
                deps: vec![],
                span: Some(("coll", "allreduce[replicated]".to_string())),
                run: Box::new(move || {
                    if error.lock().is_some() {
                        return;
                    }
                    if let Err(e) = allreduce_live(&mut handle.lock(), ar.values, ar.tag, ar.live) {
                        error.lock().get_or_insert(e);
                        cancel.store(true, Ordering::Release);
                    }
                }),
            });
        }
        // Per source j ascending: D1b[j] decodes j's output grads, Eb[j]
        // recomputes and differentiates each local expert's (expert, j)
        // group — the canonical grouping the serial backward also uses —
        // and C2b[j] encodes the input grads straight back for j. Source
        // j's expert backward thus overlaps every later source's traffic.
        for j in 0..p {
            let is_dead = dead.contains(&j);
            let d1b_deps = if j == me {
                vec![j]
            } else if is_dead {
                vec![]
            } else {
                vec![p + 1 + q + pos(j)]
            };
            let src_box = if j == me {
                &grad_chunks[j]
            } else {
                &grad_recv[j]
            };
            let grads_decoded = &grads_decoded[j];
            tasks.push(ExecTask {
                worker: Worker::Compute,
                deps: d1b_deps,
                span: None,
                run: Box::new(move || {
                    let decoded = if is_dead {
                        // A dead source routed nothing here: zero rows per
                        // expert, exactly the serial placeholder's decode.
                        vec![Tensor::zeros(&[0, m]); epr]
                    } else {
                        let Some(ch) = src_box.lock().take() else {
                            return;
                        };
                        let _s = obs::span_sized("decode", format!("D1b[s{j}]"), ch.len() as f64);
                        Self::decode_raw(&ch, epr, m)
                    };
                    *grads_decoded.lock() = Some(decoded);
                }),
            });
            let din_rows = &din_rows[j];
            let experts = &experts;
            tasks.push(ExecTask {
                worker: Worker::Compute,
                deps: vec![t0 + 3 * j],
                span: None,
                run: Box::new(move || {
                    let Some(grads) = grads_decoded.lock().take() else {
                        return;
                    };
                    let rows_j: usize = (0..epr).map(|le| recv_counts[le][j]).sum();
                    let _s = obs::span_sized("expert", format!("Eb[s{j}]"), rows_j as f64);
                    let mut experts_guard = experts.lock();
                    let mut dins = Vec::with_capacity(epr);
                    for le in 0..epr {
                        let count = recv_counts[le][j];
                        assert_eq!(grads[le].dims()[0], count, "gradient framing mismatch");
                        if count == 0 {
                            dins.push(Tensor::zeros(&[0, m]));
                            continue;
                        }
                        let before: usize = recv_counts[le][..j].iter().sum();
                        let mut xin = Tensor::zeros(&[count, m]);
                        for row in 0..count {
                            xin.row_mut(row)
                                .copy_from_slice(inputs[le].row(before + row));
                        }
                        let _ = experts_guard[le].forward(&xin);
                        dins.push(experts_guard[le].backward(&grads[le]));
                    }
                    *din_rows.lock() = Some(dins);
                }),
            });
            let back_chunks = &back_chunks[j];
            tasks.push(ExecTask {
                worker: Worker::Compute,
                deps: vec![t0 + 3 * j + 1],
                span: None,
                run: Box::new(move || {
                    let Some(dins) = din_rows.lock().take() else {
                        return;
                    };
                    let rows_j: usize = dins.iter().map(|t| t.dims()[0]).sum();
                    let _s =
                        obs::span_sized("encode", format!("C2b[s{j}]"), (rows_j * m * 4) as f64);
                    *back_chunks.lock() = Some(Self::encode_raw(&dins));
                }),
            });
        }
        // S2: per-peer input-grad send back to its source on the backward
        // return lane, as soon as that source's C2b is encoded.
        for &j in &others {
            let back_chunks = &back_chunks[j];
            let handle = &handle;
            let error = &error;
            let cancel = &cancel;
            tasks.push(ExecTask {
                worker: Worker::Comm,
                deps: vec![t0 + 3 * j + 2],
                span: None,
                run: Box::new(move || {
                    let Some(chunk) = back_chunks.lock().take() else {
                        return;
                    };
                    let _s = obs::span_sized("a2a", format!("A2b[p{j}]"), chunk.len() as f64);
                    let tag = chunk_tag(tag_base, lanes::LANE_BWD_RETURN, j);
                    if let Err(e) = handle.lock().send(j, tag, chunk) {
                        error.lock().get_or_insert(e);
                        cancel.store(true, Ordering::Release);
                    }
                }),
            });
        }
        // R2: per-peer returned input grads, owners ascending, after every
        // send (same no-deadlock argument as R1).
        for &j in &others {
            let ret_recv = &ret_recv[j];
            let handle = &handle;
            let error = &error;
            let cancel = &cancel;
            tasks.push(ExecTask {
                worker: Worker::Comm,
                deps: vec![],
                span: Some(("a2a", format!("A2bw[p{j}]"))),
                run: Box::new(move || {
                    if error.lock().is_some() {
                        return;
                    }
                    let tag = chunk_tag(tag_base, lanes::LANE_BWD_RETURN, me);
                    let result = {
                        let mut hh = handle.lock();
                        match timeout {
                            Some(t) => hh.recv_timeout(j, tag, t),
                            None => hh.recv(j, tag),
                        }
                    };
                    match result {
                        Ok(got) => *ret_recv.lock() = Some(got),
                        Err(e) => {
                            error.lock().get_or_insert(e);
                            cancel.store(true, Ordering::Release);
                        }
                    }
                }),
            });
        }
        // D2b: per-owner input-grad decode.
        for j in 0..p {
            let is_dead = dead.contains(&j);
            let d2b_deps = if j == me {
                vec![t0 + 3 * j + 2]
            } else if is_dead {
                vec![]
            } else {
                vec![t0 + 3 * p + q + pos(j)]
            };
            let src_box = if j == me {
                &back_chunks[j]
            } else {
                &ret_recv[j]
            };
            let dins_decoded = &dins_decoded[j];
            tasks.push(ExecTask {
                worker: Worker::Compute,
                deps: d2b_deps,
                span: None,
                run: Box::new(move || {
                    let decoded = if is_dead {
                        // The masked gate routed no slots to a dead owner's
                        // experts, so its contribution is zero rows.
                        vec![Tensor::zeros(&[0, m]); epr]
                    } else {
                        let Some(ch) = src_box.lock().take() else {
                            return;
                        };
                        let _s = obs::span_sized("decode", format!("D2b[o{j}]"), ch.len() as f64);
                        Self::decode_raw(&ch, epr, m)
                    };
                    *dins_decoded.lock() = Some(decoded);
                }),
            });
        }
        let exec_result = run_overlapped_cancellable(tasks, &cancel);
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        if let Err(e) = exec_result {
            return Err(FabricError::Worker {
                detail: e.to_string(),
            });
        }
        let dins_decoded: Vec<Vec<Tensor>> = dins_decoded
            .into_iter()
            .map(|mx| mx.into_inner().expect("pipeline completed"))
            .collect();
        let d_weights = d_weights_box.into_inner().expect("pipeline completed");

        // Scatter, exactly as the serial loop: each owner returned its
        // full slot-order rows in one piece, accumulated owner-major.
        let mut dx = Tensor::zeros(&[n, m]);
        for owner in 0..p {
            for (le, rows) in dins_decoded[owner].iter().enumerate() {
                let e = owner * epr + le;
                let slots = &cache.decision.expert_slots[e];
                assert_eq!(rows.dims()[0], slots.len(), "input-grad framing mismatch");
                for (s, &(t, _)) in slots.iter().enumerate() {
                    let drow = rows.row(s);
                    let xrow = dx.row_mut(t);
                    for i in 0..m {
                        xrow[i] += drow[i];
                    }
                }
            }
        }
        let dx_gate = {
            let _g = obs::span("gate", "gateb");
            self.gate.backward(&d_weights)
        };
        dx.add_assign(&dx_gate).expect("same shape");
        Ok(dx)
    }

    /// Visits the gate's and local experts' parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gate.visit_params(f);
        for e in &mut self.local_experts {
            e.visit_params(f);
        }
    }
}

/// Sums `values` elementwise across all ranks in place (naive allreduce:
/// gather on rank 0, reduce, broadcast).
///
/// Used to keep replicated parameters (the gate) synchronized in
/// data-parallel training.
pub fn allreduce_inplace(
    h: &mut RankHandle,
    values: &mut [f32],
    tag: u64,
) -> Result<(), FabricError> {
    let live = vec![true; h.world_size()];
    allreduce_live(h, values, tag, &live)
}

/// [`allreduce_inplace`] restricted to the ranks marked `true` in `live`:
/// the sum is gathered on the lowest live rank and broadcast back to the
/// survivors only, so a dead rank (which can no longer participate) does
/// not wedge the reduction. The caller must itself be live.
///
/// # Panics
///
/// Panics if `live` disagrees with the world size, marks no rank, or marks
/// the caller dead.
pub fn allreduce_live(
    h: &mut RankHandle,
    values: &mut [f32],
    tag: u64,
    live: &[bool],
) -> Result<(), FabricError> {
    let p = h.world_size();
    let me = h.rank();
    assert_eq!(live.len(), p, "live mask must cover the world");
    assert!(live[me], "a dead rank cannot join an allreduce");
    let root = live
        .iter()
        .position(|&l| l)
        .expect("at least one live rank");
    if live.iter().filter(|&&l| l).count() <= 1 {
        return Ok(());
    }
    let encode = |v: &[f32]| {
        let mut buf = BytesMut::with_capacity(v.len() * 4);
        for &x in v {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        buf.freeze()
    };
    if me == root {
        for src in 0..p {
            if src == root || !live[src] {
                continue;
            }
            let chunk = h.recv(src, tag)?;
            for (i, b) in chunk.chunks_exact(4).enumerate() {
                values[i] += f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            }
        }
        let summed = encode(values);
        for dst in 0..p {
            if dst != root && live[dst] {
                h.send(dst, tag + 1, summed.clone())?;
            }
        }
    } else {
        h.send(root, tag, encode(values))?;
        let summed = h.recv(root, tag + 1)?;
        for (i, b) in summed.chunks_exact(4).enumerate() {
            values[i] = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::FfExpert;
    use crate::layer::MoeLayer;
    use schemoe_cluster::{Fabric, Topology};
    use schemoe_collectives::NcclA2A;
    use schemoe_compression::NoCompression;
    use schemoe_tensor::nn::Module;
    use schemoe_tensor::rng::{self, seeded};

    const M: usize = 6;
    const H: usize = 10;

    /// Experts and gate built from fixed seeds so every construction site
    /// produces identical parameters.
    fn make_expert(e: usize) -> Box<dyn Expert> {
        Box::new(FfExpert::new(M, H, &mut seeded(1000 + e as u64)))
    }

    fn make_gate(experts: usize, k: usize, f: f64) -> TopKGate {
        TopKGate::new(M, experts, k, f, &mut seeded(555))
    }

    #[test]
    fn matches_single_process_layer() {
        let topo = Topology::new(2, 2);
        let p = topo.world_size();
        let n_local = 5;
        // Global batch, split contiguously across ranks.
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(7));

        // Distributed forward.
        let dist_out = Fabric::run(topo, |mut h| {
            let me = h.rank();
            let gate = make_gate(p, 2, 8.0); // big capacity: no drops
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            );
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            layer.forward(&mut h, &x, 0).unwrap()
        });

        // Single-process references, one per rank's shard (capacity is per
        // shard in expert-parallel training, so compare shard by shard).
        for me in 0..p {
            let gate = make_gate(p, 2, 8.0);
            let experts: Vec<Box<dyn Expert>> = (0..p).map(make_expert).collect();
            let mut reference = MoeLayer::from_parts(gate, experts);
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let want = reference.forward(&x);
            let diff = dist_out[me].max_abs_diff(&want).unwrap();
            assert!(diff < 1e-5, "rank {me} diverged from reference by {diff}");
        }
    }

    #[test]
    fn backward_matches_single_process_layer() {
        let topo = Topology::new(1, 2);
        let p = topo.world_size();
        let n_local = 4;
        let x_global = rng::uniform(&[n_local * p, M], 0.7, &mut seeded(8));

        let dist = Fabric::run(topo, |mut h| {
            let me = h.rank();
            let gate = make_gate(p, 1, 8.0);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            );
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let y = layer.forward(&mut h, &x, 0).unwrap();
            let dx = layer.backward(&mut h, &y).unwrap();
            // Also return the gate gradient for cross-checking.
            let mut gate_grad = Vec::new();
            layer.visit_params(&mut |prm| {
                if prm.name == "gate.wg" {
                    gate_grad = prm.grad.data().to_vec();
                }
            });
            (dx, gate_grad)
        });

        for me in 0..p {
            let gate = make_gate(p, 1, 8.0);
            let experts: Vec<Box<dyn Expert>> = (0..p).map(make_expert).collect();
            let mut reference = MoeLayer::from_parts(gate, experts);
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let y = reference.forward(&x);
            let dx_want = reference.backward(&y);
            let diff = dist[me].0.max_abs_diff(&dx_want).unwrap();
            assert!(diff < 1e-4, "rank {me} dx diverged by {diff}");
        }
    }

    /// Forward outputs per rank for a given constructor, so serial and
    /// overlapped configurations can be compared bit-for-bit.
    fn forward_outputs(
        topo: Topology,
        n_local: usize,
        epr: usize,
        k: usize,
        x_global: &Tensor,
        degree: usize,
        compressor: fn() -> Box<dyn schemoe_compression::Compressor>,
    ) -> Vec<Tensor> {
        let p = topo.world_size();
        Fabric::run(topo, |mut h| {
            let me = h.rank();
            let gate = make_gate(p * epr, k, 8.0);
            let experts: Vec<Box<dyn Expert>> =
                (0..epr).map(|le| make_expert(me * epr + le)).collect();
            let mut layer =
                DistributedMoeLayer::new(gate, experts, compressor(), Box::new(NcclA2A))
                    .with_partition_degree(degree)
                    .with_recv_timeout(std::time::Duration::from_secs(30));
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            layer.forward(&mut h, &x, 0).unwrap()
        })
    }

    #[test]
    fn overlapped_forward_is_bit_identical_to_serial() {
        let topo = Topology::new(2, 2);
        let p = topo.world_size();
        let n_local = 7;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(21));
        let serial = forward_outputs(topo, n_local, 1, 2, &x_global, 1, || {
            Box::new(NoCompression)
        });
        // Degrees beyond the slot counts exercise empty chunks too.
        for degree in [2, 3, 4, 16] {
            let overlapped = forward_outputs(topo, n_local, 1, 2, &x_global, degree, || {
                Box::new(NoCompression)
            });
            for me in 0..p {
                let diff = overlapped[me].max_abs_diff(&serial[me]).unwrap();
                assert_eq!(diff, 0.0, "degree {degree} rank {me} diverged by {diff}");
            }
        }
    }

    #[test]
    fn overlapped_forward_is_bit_identical_with_fp16_and_multi_experts() {
        let topo = Topology::new(1, 2);
        let p = topo.world_size();
        let (epr, n_local) = (2, 6);
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(22));
        let fp16 = || -> Box<dyn schemoe_compression::Compressor> {
            Box::new(schemoe_compression::Fp16Compressor)
        };
        let serial = forward_outputs(topo, n_local, epr, 2, &x_global, 1, fp16);
        let overlapped = forward_outputs(topo, n_local, epr, 2, &x_global, 4, fp16);
        for me in 0..p {
            let diff = overlapped[me].max_abs_diff(&serial[me]).unwrap();
            assert_eq!(diff, 0.0, "rank {me} diverged by {diff}");
        }
    }

    #[test]
    fn overlapped_backward_is_bit_identical_to_serial() {
        let topo = Topology::new(1, 2);
        let p = topo.world_size();
        let n_local = 5;
        let x_global = rng::uniform(&[n_local * p, M], 0.7, &mut seeded(23));
        let run = |degree: usize| {
            Fabric::run(topo, |mut h| {
                let me = h.rank();
                let gate = make_gate(p, 2, 8.0);
                let mut layer = DistributedMoeLayer::new(
                    gate,
                    vec![make_expert(me)],
                    Box::new(NoCompression),
                    Box::new(NcclA2A),
                )
                .with_partition_degree(degree);
                let mut x = Tensor::zeros(&[n_local, M]);
                for r in 0..n_local {
                    x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
                }
                let y = layer.forward(&mut h, &x, 0).unwrap();
                let dx = layer.backward(&mut h, &y).unwrap();
                let mut grads = Vec::new();
                layer.visit_params(&mut |prm| grads.push(prm.grad.data().to_vec()));
                (dx, grads)
            })
        };
        let serial = run(1);
        let overlapped = run(4);
        for me in 0..p {
            let diff = overlapped[me].0.max_abs_diff(&serial[me].0).unwrap();
            assert_eq!(diff, 0.0, "rank {me} dx diverged by {diff}");
            assert_eq!(
                overlapped[me].1, serial[me].1,
                "rank {me} param grads diverged"
            );
        }
    }

    #[test]
    fn allreduce_folded_into_the_backward_graph_matches_a_separate_call() {
        // Submitting the replicated-parameter allreduce as part of the
        // backward task graph must change nothing numerically: the reduced
        // values equal a standalone `allreduce_live`, and dx / param grads
        // equal a plain `backward`. Degree 1 covers the serial fallback
        // (which runs the allreduce first), degree 4 the pipelined graph.
        let topo = Topology::new(1, 2);
        let p = topo.world_size();
        let n_local = 5;
        let x_global = rng::uniform(&[n_local * p, M], 0.7, &mut seeded(24));
        let run = |degree: usize, folded: bool| {
            Fabric::run(topo, |mut h| {
                let me = h.rank();
                let gate = make_gate(p, 2, 8.0);
                let mut layer = DistributedMoeLayer::new(
                    gate,
                    vec![make_expert(me)],
                    Box::new(NoCompression),
                    Box::new(NcclA2A),
                )
                .with_partition_degree(degree);
                let mut x = Tensor::zeros(&[n_local, M]);
                for r in 0..n_local {
                    x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
                }
                let y = layer.forward(&mut h, &x, 0).unwrap();
                let live = vec![true; p];
                let mut values: Vec<f32> = (0..8).map(|i| (me * 8 + i) as f32 * 0.5).collect();
                let dx = if folded {
                    layer
                        .backward_with_allreduce(
                            &mut h,
                            &y,
                            Some(GradAllreduce {
                                values: &mut values,
                                tag: 9_000_000,
                                live: &live,
                            }),
                        )
                        .unwrap()
                } else {
                    let dx = layer.backward(&mut h, &y).unwrap();
                    allreduce_live(&mut h, &mut values, 9_000_000, &live).unwrap();
                    dx
                };
                let mut grads = Vec::new();
                layer.visit_params(&mut |prm| grads.push(prm.grad.data().to_vec()));
                (dx, grads, values)
            })
        };
        for degree in [1, 4] {
            let folded = run(degree, true);
            let separate = run(degree, false);
            for me in 0..p {
                let diff = folded[me].0.max_abs_diff(&separate[me].0).unwrap();
                assert_eq!(diff, 0.0, "degree {degree} rank {me} dx diverged");
                assert_eq!(
                    folded[me].1, separate[me].1,
                    "degree {degree} rank {me} param grads diverged"
                );
                assert_eq!(
                    folded[me].2, separate[me].2,
                    "degree {degree} rank {me} allreduced values diverged"
                );
            }
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let topo = Topology::new(2, 2);
        let results = Fabric::run(topo, |mut h| {
            let mut v = vec![h.rank() as f32, 1.0];
            allreduce_inplace(&mut h, &mut v, 42).unwrap();
            v
        });
        for v in results {
            assert_eq!(v, vec![0.0 + 1.0 + 2.0 + 3.0, 4.0]);
        }
    }

    #[test]
    fn allreduce_live_skips_dead_ranks() {
        // Rank 2 is "dead": it never joins. Survivors reduce among
        // themselves, rooted at the lowest live rank.
        let topo = Topology::new(2, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 2 {
                return Vec::new();
            }
            let live = [true, true, false, true];
            let mut v = vec![h.rank() as f32, 1.0];
            allreduce_live(&mut h, &mut v, 42, &live).unwrap();
            v
        });
        for (r, v) in results.iter().enumerate() {
            if r == 2 {
                continue;
            }
            assert_eq!(v, &vec![0.0 + 1.0 + 3.0, 3.0], "rank {r}");
        }
    }

    #[test]
    fn degraded_forward_and_backward_complete_without_the_dead_rank() {
        // Rank 1 of 4 dies before the step. Survivors mark it dead,
        // reroute its tokens, and complete forward + backward with finite
        // outputs; the dead rank's experts receive nothing.
        let topo = Topology::new(2, 2);
        let p = topo.world_size();
        let n_local = 6;
        let dead = 1usize;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(41));
        let outs = Fabric::run(topo, |mut h| {
            let me = h.rank();
            if me == dead {
                return None;
            }
            let gate = make_gate(p, 2, 8.0);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            )
            .with_recv_timeout(std::time::Duration::from_secs(20));
            layer.mark_rank_dead(dead);
            assert!(layer.is_degraded());
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let y = layer.forward(&mut h, &x, 0).unwrap();
            let dx = layer.backward(&mut h, &y).unwrap();
            Some((y, dx))
        });
        for (r, out) in outs.iter().enumerate() {
            if r == dead {
                assert!(out.is_none());
                continue;
            }
            let (y, dx) = out.as_ref().unwrap();
            assert_eq!(y.dims(), &[n_local, M]);
            assert!(y.all_finite(), "rank {r} produced non-finite output");
            assert!(dx.all_finite(), "rank {r} produced non-finite grads");
            // Degraded combine still moves data: the output is not zero.
            assert!(
                y.data().iter().any(|&v| v.abs() > 1e-6),
                "rank {r} output is all zeros"
            );
        }
    }

    #[test]
    fn a_single_live_rank_falls_back_to_the_serial_path_and_still_completes() {
        // With only one rank left alive there is no communication to
        // overlap, so a layer configured for overlapped execution falls
        // back to the serial degraded path and still completes.
        let topo = Topology::new(1, 2);
        let n_local = 5;
        let dead = 1usize;
        let x_global = rng::uniform(&[n_local * 2, M], 1.0, &mut seeded(42));
        let outs = Fabric::run(topo, |mut h| {
            let me = h.rank();
            if me == dead {
                return None;
            }
            let gate = make_gate(2, 1, 8.0);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            )
            .with_partition_degree(4)
            .with_recv_timeout(std::time::Duration::from_secs(20));
            layer.mark_rank_dead(dead);
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            Some(layer.forward(&mut h, &x, 0).unwrap())
        });
        let y = outs[0].as_ref().unwrap();
        assert!(y.all_finite());
        assert!(y.data().iter().any(|&v| v.abs() > 1e-6));
    }

    /// Per-rank (forward, dx, grads) for a degraded run at the given
    /// partition degree: `dead` never joins, survivors mark it dead.
    #[allow(clippy::type_complexity)]
    fn degraded_run(
        topo: Topology,
        dead: usize,
        degree: usize,
        x_global: &Tensor,
        n_local: usize,
    ) -> Vec<Option<(Tensor, Tensor, Vec<Vec<f32>>)>> {
        let p = topo.world_size();
        Fabric::run(topo, |mut h| {
            let me = h.rank();
            if me == dead {
                return None;
            }
            let gate = make_gate(p, 2, 8.0);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            )
            .with_partition_degree(degree)
            .with_recv_timeout(std::time::Duration::from_secs(30));
            layer.mark_rank_dead(dead);
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let y = layer.forward(&mut h, &x, 0).unwrap();
            let dx = layer.backward(&mut h, &y).unwrap();
            let mut grads = Vec::new();
            layer.visit_params(&mut |prm| grads.push(prm.grad.data().to_vec()));
            Some((y, dx, grads))
        })
    }

    #[test]
    fn degraded_overlapped_forward_matches_degraded_serial_bit_for_bit() {
        // Satellite of the elastic-membership work: losing a rank must not
        // cost the overlap. With three live peers the overlapped pipeline
        // keeps running (masked gate + live-aware per-chunk exchanges) and
        // reproduces the degraded serial path exactly.
        let topo = Topology::new(2, 2);
        let p = topo.world_size();
        let n_local = 6;
        let dead = 3usize;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(43));
        let serial = degraded_run(topo, dead, 1, &x_global, n_local);
        for degree in [2, 4] {
            let overlapped = degraded_run(topo, dead, degree, &x_global, n_local);
            for me in 0..p {
                if me == dead {
                    assert!(overlapped[me].is_none());
                    continue;
                }
                let (ys, dxs, gs) = serial[me].as_ref().unwrap();
                let (yo, dxo, go) = overlapped[me].as_ref().unwrap();
                assert_eq!(
                    yo.max_abs_diff(ys).unwrap(),
                    0.0,
                    "degree {degree} rank {me} forward diverged"
                );
                assert_eq!(
                    dxo.max_abs_diff(dxs).unwrap(),
                    0.0,
                    "degree {degree} rank {me} dx diverged"
                );
                assert_eq!(go, gs, "degree {degree} rank {me} param grads diverged");
            }
        }
    }

    #[test]
    fn degraded_steps_with_live_peers_still_overlap() {
        // Regression for the old `is_degraded() → forward_serial` fallback:
        // a degraded step with live peers must still run the chunked
        // pipeline. Partition degree 17 is unique in this test binary, so
        // the `A1[c16]` span can only come from this run.
        let topo = Topology::new(2, 2);
        let p = topo.world_size();
        let n_local = 6;
        let dead = 2usize;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(44));
        obs::enable();
        let degraded_deltas = Fabric::run(topo, |mut h| {
            let me = h.rank();
            if me == dead {
                return 0;
            }
            let before = obs::counters_for_rank(me).snapshot().degraded_steps;
            let gate = make_gate(p, 2, 8.0);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            )
            .with_partition_degree(17)
            .with_recv_timeout(std::time::Duration::from_secs(30));
            layer.mark_rank_dead(dead);
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let y = layer.forward(&mut h, &x, 0).unwrap();
            assert!(y.all_finite());
            obs::counters_for_rank(me).snapshot().degraded_steps - before
        });
        let trace = obs::take();
        obs::disable();
        for (r, delta) in degraded_deltas.iter().enumerate() {
            if r != dead {
                assert!(*delta >= 1, "rank {r} did not record a degraded step");
            }
        }
        let has = |name: &str| trace.spans.iter().any(|s| s.name == name);
        assert!(
            has("A1[c16]") && has("A2[c16]"),
            "degraded run did not produce per-chunk overlap spans"
        );
        assert!(
            trace.spans.iter().any(|s| s.cat == "degraded"),
            "degraded run did not record the degraded span"
        );
    }

    #[test]
    fn mark_rank_alive_restores_full_capacity_bit_for_bit() {
        // Kill rank 1, run a degraded step, revive it, and check the next
        // step is indistinguishable from one that never degraded: the gate
        // expands back over the returned experts and the overlapped path
        // re-engages.
        let topo = Topology::new(2, 2);
        let p = topo.world_size();
        let n_local = 5;
        let dead = 1usize;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(45));
        let outs = Fabric::run(topo, |mut h| {
            let me = h.rank();
            let gate = make_gate(p, 2, 8.0);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            )
            .with_partition_degree(2)
            .with_recv_timeout(std::time::Duration::from_secs(30));
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            // Step 0: full world, baseline output.
            let baseline = layer.forward(&mut h, &x, 0).unwrap();
            // Step 1: rank 1 is out; survivors run degraded.
            if me != dead {
                layer.mark_rank_dead(dead);
                assert!(layer.is_degraded());
                layer.forward(&mut h, &x, TAG_STRIDE).unwrap();
                layer.mark_rank_alive(dead);
                assert!(!layer.is_degraded());
            }
            // Step 2: the revived rank is back; full-capacity output must
            // match the baseline exactly.
            let after = layer.forward(&mut h, &x, 2 * TAG_STRIDE).unwrap();
            (baseline, after)
        });
        for (r, (baseline, after)) in outs.iter().enumerate() {
            assert_eq!(
                after.max_abs_diff(baseline).unwrap(),
                0.0,
                "rank {r} post-rejoin output differs from the never-degraded baseline"
            );
        }
    }

    /// Per-rank (y, dx, expert grads) for a no-deaths run — the reference
    /// the failover path must reproduce. `empty_rank` contributes a
    /// zero-token batch: that is exactly the world a failover step sees
    /// (the dead rank's shard is gone, but its expert keeps serving), so
    /// comparing against it checks expert fidelity without conflating the
    /// vanished tokens.
    #[allow(clippy::type_complexity)]
    fn full_capacity_run(
        topo: Topology,
        x_global: &Tensor,
        n_local: usize,
        empty_rank: Option<usize>,
    ) -> Vec<(Tensor, Tensor, Vec<Vec<f32>>)> {
        let p = topo.world_size();
        Fabric::run(topo, |mut h| {
            let me = h.rank();
            let gate = make_gate(p, 2, 8.0);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            );
            let rows = if empty_rank == Some(me) { 0 } else { n_local };
            let mut x = Tensor::zeros(&[rows, M]);
            for r in 0..rows {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let y = layer.forward(&mut h, &x, 0).unwrap();
            let dx = layer.backward(&mut h, &y).unwrap();
            let mut expert_grads = Vec::new();
            layer.visit_params(&mut |prm| {
                if !prm.name.starts_with("gate") {
                    expert_grads.push(prm.grad.data().to_vec());
                }
            });
            (y, dx, expert_grads)
        })
    }

    #[test]
    fn a_failover_host_serves_the_dead_ranks_expert_bit_for_bit() {
        // Rank 1 of 4 dies but rank 2 holds a fresh replica of its expert
        // and a failover route is installed everywhere. Because no expert
        // leaves the routing table and the hosted replica is bit-identical,
        // every survivor's forward, dx, and the hosted expert's gradients
        // must equal the never-degraded full-capacity run exactly.
        let topo = Topology::new(2, 2);
        let p = topo.world_size();
        let n_local = 6;
        let (dead, host) = (1usize, 2usize);
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(51));
        let baseline = full_capacity_run(topo, &x_global, n_local, Some(dead));
        let failover = Fabric::run(topo, |mut h| {
            let me = h.rank();
            if me == dead {
                return None;
            }
            let gate = make_gate(p, 2, 8.0);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            )
            .with_recv_timeout(std::time::Duration::from_secs(20));
            layer.mark_rank_dead(dead);
            layer.set_failover_route(dead, host);
            if me == host {
                layer.install_hosted_experts(dead, vec![make_expert(dead)]);
                assert_eq!(layer.hosted_dead_ranks(), vec![dead]);
            }
            assert!(layer.has_failover());
            assert_eq!(layer.failover_host_of(dead), Some(host));
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let y = layer.forward(&mut h, &x, 0).unwrap();
            let dx = layer.backward(&mut h, &y).unwrap();
            let mut hosted_grads = Vec::new();
            layer.visit_hosted_params(dead, &mut |prm| {
                hosted_grads.push(prm.grad.data().to_vec());
            });
            Some((y, dx, hosted_grads))
        });
        for me in 0..p {
            if me == dead {
                assert!(failover[me].is_none());
                continue;
            }
            let (y, dx, hosted_grads) = failover[me].as_ref().unwrap();
            let (by, bdx, _) = &baseline[me];
            assert_eq!(
                y.max_abs_diff(by).unwrap(),
                0.0,
                "rank {me} failover forward diverged from full capacity"
            );
            assert_eq!(
                dx.max_abs_diff(bdx).unwrap(),
                0.0,
                "rank {me} failover dx diverged from full capacity"
            );
            if me == host {
                // The hosted expert's gradients are exactly what the dead
                // rank would have computed for its own expert.
                assert_eq!(
                    hosted_grads, &baseline[dead].2,
                    "hosted expert grads diverged from the dead rank's own"
                );
            } else {
                assert!(hosted_grads.is_empty());
            }
        }
    }

    #[test]
    fn an_orphaned_expert_reroutes_while_routed_experts_keep_serving() {
        // Double fault: ranks 1 and 3 are both dead, but only rank 1 has a
        // failover route (to rank 2). Rank 3's expert is orphaned and must
        // fall back to the masked reroute, while rank 1's keeps serving
        // through its host — the step completes with finite outputs.
        let topo = Topology::new(2, 2);
        let p = topo.world_size();
        let n_local = 6;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(52));
        let outs = Fabric::run(topo, |mut h| {
            let me = h.rank();
            if me == 1 || me == 3 {
                return None;
            }
            let gate = make_gate(p, 2, 8.0);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            )
            .with_recv_timeout(std::time::Duration::from_secs(20));
            layer.mark_rank_dead(1);
            layer.mark_rank_dead(3);
            layer.set_failover_route(1, 2);
            if me == 2 {
                layer.install_hosted_experts(1, vec![make_expert(1)]);
            }
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let y = layer.forward(&mut h, &x, 0).unwrap();
            let dx = layer.backward(&mut h, &y).unwrap();
            let mut hosted_nonzero = false;
            layer.visit_hosted_params(1, &mut |prm| {
                hosted_nonzero |= prm.grad.data().iter().any(|&g| g != 0.0);
            });
            Some((y, dx, hosted_nonzero))
        });
        for (r, out) in outs.iter().enumerate() {
            if r == 1 || r == 3 {
                assert!(out.is_none());
                continue;
            }
            let (y, dx, hosted_nonzero) = out.as_ref().unwrap();
            assert!(y.all_finite(), "rank {r} non-finite output");
            assert!(dx.all_finite(), "rank {r} non-finite grads");
            assert!(
                y.data().iter().any(|&v| v.abs() > 1e-6),
                "rank {r} output is all zeros"
            );
            if r == 2 {
                assert!(hosted_nonzero, "hosted expert saw no gradient");
            }
        }
    }

    #[test]
    fn a_dying_host_orphans_its_wards_and_rejoin_clears_routes() {
        let mut layer = DistributedMoeLayer::new(
            make_gate(4, 2, 8.0),
            vec![make_expert(0)],
            Box::new(NoCompression),
            Box::new(NcclA2A),
        );
        layer.mark_rank_dead(1);
        layer.set_failover_route(1, 2);
        assert_eq!(layer.failover_routes(), vec![(1, 2)]);
        // The host dies too: the ward's route is dropped, so its expert
        // is masked again (orphaned).
        layer.mark_rank_dead(2);
        assert!(!layer.has_failover());
        assert_eq!(layer.failover_host_of(1), None);
        // Rejoin clears a rank's own route and hosted entry.
        layer.set_failover_route(1, 3);
        layer.install_hosted_experts(1, vec![make_expert(1)]);
        layer.mark_rank_alive(1);
        assert!(!layer.has_failover());
        assert!(layer.hosted_dead_ranks().is_empty());
    }

    #[test]
    fn multiple_experts_per_rank() {
        let topo = Topology::new(1, 2);
        let p = topo.world_size();
        let epr = 2;
        let n_local = 6;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(9));
        let outs = Fabric::run(topo, |mut h| {
            let me = h.rank();
            let gate = make_gate(p * epr, 2, 8.0);
            let experts: Vec<Box<dyn Expert>> =
                (0..epr).map(|le| make_expert(me * epr + le)).collect();
            let mut layer =
                DistributedMoeLayer::new(gate, experts, Box::new(NoCompression), Box::new(NcclA2A));
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            layer.forward(&mut h, &x, 0).unwrap()
        });
        for me in 0..p {
            let gate = make_gate(p * epr, 2, 8.0);
            let experts: Vec<Box<dyn Expert>> = (0..p * epr).map(make_expert).collect();
            let mut reference = MoeLayer::from_parts(gate, experts);
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let want = reference.forward(&x);
            let diff = outs[me].max_abs_diff(&want).unwrap();
            assert!(diff < 1e-5, "rank {me} diverged by {diff}");
        }
    }

    /// Runs one forward + backward on a 4-rank world (epr = 1), optionally
    /// under the given placement (guest bodies rebuilt from the same seeds
    /// as the homes, like a state transfer would). Returns per rank:
    /// `(y, dx, own expert grads, guest grads by expert)`.
    #[allow(clippy::type_complexity)]
    fn placed_step(
        x_global: &Tensor,
        n_local: usize,
        servers: Option<&[Vec<usize>]>,
    ) -> Vec<(Tensor, Tensor, Vec<Vec<f32>>, Vec<(usize, Vec<Vec<f32>>)>)> {
        let topo = Topology::new(2, 2);
        let p = topo.world_size();
        Fabric::run(topo, |mut h| {
            let me = h.rank();
            let gate = make_gate(p, 2, 8.0);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            );
            if let Some(servers) = servers {
                let pl = Placement::new(1, 1, servers.to_vec());
                for &e in &pl.guests_of(me) {
                    layer.install_guest_expert(me, e, make_expert(e));
                }
                layer.set_placement(me, pl);
            }
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let y = layer.forward(&mut h, &x, 0).unwrap();
            let dx = layer.backward(&mut h, &y).unwrap();
            let mut own = Vec::new();
            layer.visit_serving_params(me, me, &mut |prm| own.push(prm.grad.data().to_vec()));
            let mut guests = Vec::new();
            for e in layer.guest_expert_ids() {
                let mut g = Vec::new();
                layer.visit_serving_params(me, e, &mut |prm| g.push(prm.grad.data().to_vec()));
                guests.push((e, g));
            }
            (y, dx, own, guests)
        })
    }

    #[test]
    fn placed_fan_out_is_bit_identical_to_serial() {
        // Expert 0 replicated on ranks {0, 2}, expert 3 migrated to rank 1.
        // Outputs and input grads must match the static serial step bit for
        // bit: expert bodies are row-wise and the combine reassembles the
        // serial slot order before accumulating.
        let p = 4;
        let n_local = 7;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(91));
        let servers = vec![vec![0usize, 2], vec![1], vec![2], vec![1]];
        let serial = placed_step(&x_global, n_local, None);
        let placed = placed_step(&x_global, n_local, Some(&servers));
        for me in 0..p {
            let dy = placed[me].0.max_abs_diff(&serial[me].0).unwrap();
            assert_eq!(dy, 0.0, "rank {me} y diverged by {dy}");
            let ddx = placed[me].1.max_abs_diff(&serial[me].1).unwrap();
            assert_eq!(ddx, 0.0, "rank {me} dx diverged by {ddx}");
        }
    }

    #[test]
    fn migrated_expert_weight_grads_match_the_static_home_bitwise() {
        // Pure migration (no replicas): the guest body receives exactly the
        // rows the home would have, in the same src-major order, and makes
        // the same canonical per-(expert, source) backward calls — so its
        // weight grads equal the static home's bit for bit.
        let p = 4;
        let n_local = 7;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(92));
        let servers = vec![vec![0usize], vec![3], vec![2], vec![1]];
        let serial = placed_step(&x_global, n_local, None);
        let placed = placed_step(&x_global, n_local, Some(&servers));
        for (e, host) in [(1usize, 3usize), (3, 1)] {
            let guest = &placed[host]
                .3
                .iter()
                .find(|(ge, _)| *ge == e)
                .expect("guest grads recorded")
                .1;
            assert_eq!(
                guest, &serial[e].2,
                "guest grads for expert {e} on rank {host}"
            );
        }
    }

    #[test]
    fn replica_partial_grads_sum_to_the_full_expert_grad() {
        // A replicated expert's weight grads are partial per server; their
        // sum must match the static full-batch grad up to float regrouping
        // (this is what the controller's sync-group allreduce restores).
        let p = 4;
        let n_local = 8;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(93));
        let servers = vec![vec![0usize, 2], vec![1], vec![2], vec![3]];
        let serial = placed_step(&x_global, n_local, None);
        let placed = placed_step(&x_global, n_local, Some(&servers));
        let home = &placed[0].2;
        let guest = &placed[2]
            .3
            .iter()
            .find(|(ge, _)| *ge == 0)
            .expect("rank 2 serves expert 0")
            .1;
        assert_eq!(home.len(), guest.len());
        for (i, want) in serial[0].2.iter().enumerate() {
            for (j, &w) in want.iter().enumerate() {
                let got = home[i][j] + guest[i][j];
                assert!(
                    (got - w).abs() < 1e-4,
                    "expert 0 grad[{i}][{j}]: {got} vs {w}"
                );
            }
        }
    }

    #[test]
    fn load_stats_accumulate_and_drain() {
        let topo = Topology::new(1, 2);
        let p = topo.world_size();
        let n_local = 7;
        let x_global = rng::uniform(&[n_local * p, M], 1.0, &mut seeded(94));
        let outs = Fabric::run(topo, |mut h| {
            let me = h.rank();
            // A starved capacity factor guarantees shed assignments.
            let gate = make_gate(p, 2, 0.05);
            let mut layer = DistributedMoeLayer::new(
                gate,
                vec![make_expert(me)],
                Box::new(NoCompression),
                Box::new(NcclA2A),
            );
            let mut x = Tensor::zeros(&[n_local, M]);
            for r in 0..n_local {
                x.row_mut(r).copy_from_slice(x_global.row(me * n_local + r));
            }
            let _y = layer.forward(&mut h, &x, 0).unwrap();
            let stats = layer.take_load_stats();
            let drained = layer.take_load_stats();
            (stats, drained)
        });
        for (me, ((loads, shed, routed, _p99), drained)) in outs.iter().enumerate() {
            assert_eq!(loads.iter().sum::<u64>(), *routed, "rank {me}");
            assert!(*routed > 0, "rank {me} routed nothing");
            assert!(*shed > 0, "rank {me} shed nothing despite f=0.05");
            assert!(
                drained.0.is_empty() && drained.1 == 0 && drained.2 == 0 && drained.3 == 0,
                "rank {me} drain did not reset"
            );
        }
    }

    #[test]
    #[should_panic(expected = "guest body")]
    fn activating_a_placement_without_its_guest_bodies_panics() {
        let gate = make_gate(2, 1, 8.0);
        let mut layer = DistributedMoeLayer::new(
            gate,
            vec![make_expert(0)],
            Box::new(NoCompression),
            Box::new(NcclA2A),
        );
        // Expert 1 migrated onto rank 0 without a guest body installed.
        let pl = Placement::new(1, 1, vec![vec![0], vec![0]]);
        layer.set_placement(0, pl);
    }
}
