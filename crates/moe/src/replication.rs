//! Buddy-replication delta codec: the wire format that keeps a warm copy
//! of every rank's expert state on its ring buddy.
//!
//! Every rank streams its expert weights and optimizer velocity to the
//! buddy at `(rank + 1) mod n` once per replication quantum (every `K`
//! committed steps). The payload is a sealed `checkpoint` blob, but
//! between quanta most of it barely changes, so the codec ships *deltas*:
//! the state is cut into fixed chunks, a bitmask marks the chunks that
//! changed since the last acknowledged quantum, and only those travel.
//!
//! # Frame format (`SREP`, version 1)
//!
//! ```text
//! [magic "SREP"][version u32][quantum u64][base_quantum u64]
//! [total_len u64][chunk u32][n_chunks u32][mask ceil(n/8) bytes]
//! [changed chunks, concatenated][crc32 u32]
//! ```
//!
//! All integers little-endian. `base_quantum == u64::MAX` marks a *full*
//! frame (every chunk present, mask all ones) that establishes a new base;
//! a delta frame only applies when the receiver's stored replica is at
//! exactly `base_quantum` with the same `total_len`. The trailing CRC32
//! seals everything before it.
//!
//! # Discipline
//!
//! [`ReplicaStore::apply`] is parse-then-verify-then-apply, the same
//! contract as `schemoe_tensor::checkpoint`: the frame is structurally
//! parsed, bounds-checked, CRC-verified, and checked for base
//! compatibility, and only then is the stored replica rebuilt — any
//! failure leaves the store bit-identical. A buddy therefore never holds
//! a torn replica, no matter what the wire did.

use std::fmt;

use schemoe_cluster::faults::crc32;

/// Chunk granularity of the delta mask, in bytes.
///
/// Small enough that a touched `16×32` expert matrix does not drag the
/// whole payload along, large enough that the mask stays tiny.
pub const REPLICA_CHUNK: usize = 256;

/// `base_quantum` sentinel marking a full (non-delta) frame.
const FULL_BASE: u64 = u64::MAX;

/// Deltas resync to a full frame at this quantum cadence even when every
/// delta applied cleanly, healing any silent divergence.
const FULL_EVERY: u64 = 8;

const MAGIC: &[u8; 4] = b"SREP";
const VERSION: u32 = 1;
/// magic + version + quantum + base + total_len + chunk + n_chunks.
const HEADER: usize = 4 + 4 + 8 + 8 + 8 + 4 + 4;
/// Replica payloads larger than this are rejected as nonsense.
const MAX_TOTAL: u64 = 1 << 28;

/// Why a replica frame was rejected. The stored replica is untouched in
/// every case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// Too short, bad magic, unknown version, or inconsistent lengths.
    Malformed(&'static str),
    /// The CRC seal did not verify.
    Corrupt,
    /// A delta frame whose base does not match the stored replica.
    BaseMismatch {
        /// The base quantum the frame was encoded against.
        expected: u64,
        /// The quantum of the replica actually stored (`None` = empty).
        stored: Option<u64>,
    },
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Malformed(what) => write!(f, "malformed replica frame: {what}"),
            ReplicaError::Corrupt => write!(f, "replica frame failed its CRC seal"),
            ReplicaError::BaseMismatch { expected, stored } => write!(
                f,
                "delta base quantum {expected} does not match stored {stored:?}"
            ),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// Sender side: remembers the last state it shipped and encodes the next
/// quantum as a delta against it.
#[derive(Debug, Default)]
pub struct DeltaEncoder {
    /// The state as of the last encoded frame, chunk-comparable.
    last: Option<(u64, Vec<u8>)>,
    /// Frames encoded since the last full frame.
    since_full: u64,
    /// Set when a send failed: the buddy's base is unknown, so the next
    /// frame must re-establish it in full.
    pending_full: bool,
}

impl DeltaEncoder {
    /// A fresh encoder; its first frame is always full.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the buddy's base unknown (e.g. after a failed send or a
    /// buddy change); the next [`encode`](Self::encode) ships in full.
    pub fn reset(&mut self) {
        self.pending_full = true;
    }

    /// Encodes `state` as the frame for `quantum`.
    ///
    /// Ships a full frame on first use, after [`reset`](Self::reset), when
    /// the payload length changed, and on a periodic resync cadence;
    /// otherwise only the chunks that differ from the last encoded state.
    pub fn encode(&mut self, state: &[u8], quantum: u64) -> Vec<u8> {
        let full = self.pending_full
            || self.since_full >= FULL_EVERY
            || !matches!(&self.last, Some((_, prev)) if prev.len() == state.len());
        let frame = if full {
            self.since_full = 0;
            encode_frame(state, quantum, FULL_BASE, None)
        } else {
            let (base_q, prev) = self.last.as_ref().expect("delta implies a prior state");
            self.since_full += 1;
            encode_frame(state, quantum, *base_q, Some(prev))
        };
        self.pending_full = false;
        self.last = Some((quantum, state.to_vec()));
        frame
    }
}

/// Encodes one frame; `prev = None` means a full frame.
fn encode_frame(state: &[u8], quantum: u64, base: u64, prev: Option<&Vec<u8>>) -> Vec<u8> {
    let n_chunks = state.len().div_ceil(REPLICA_CHUNK);
    let mut mask = vec![0u8; n_chunks.div_ceil(8)];
    let mut changed: Vec<&[u8]> = Vec::new();
    for c in 0..n_chunks {
        let lo = c * REPLICA_CHUNK;
        let hi = (lo + REPLICA_CHUNK).min(state.len());
        let differs = match prev {
            None => true,
            Some(prev) => prev[lo..hi] != state[lo..hi],
        };
        if differs {
            mask[c / 8] |= 1 << (c % 8);
            changed.push(&state[lo..hi]);
        }
    }
    let mut out = Vec::with_capacity(
        HEADER + mask.len() + changed.iter().map(|c| c.len()).sum::<usize>() + 4,
    );
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&quantum.to_le_bytes());
    out.extend_from_slice(&base.to_le_bytes());
    out.extend_from_slice(&(state.len() as u64).to_le_bytes());
    out.extend_from_slice(&(REPLICA_CHUNK as u32).to_le_bytes());
    out.extend_from_slice(&(n_chunks as u32).to_le_bytes());
    out.extend_from_slice(&mask);
    for c in changed {
        out.extend_from_slice(c);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Receiver side: the buddy's warm copy of its ward's expert state.
#[derive(Debug, Default)]
pub struct ReplicaStore {
    replica: Option<(u64, Vec<u8>)>,
}

impl ReplicaStore {
    /// An empty store (no replica yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored replica, as `(quantum, payload)`.
    pub fn replica(&self) -> Option<(u64, &[u8])> {
        self.replica.as_ref().map(|(q, p)| (*q, p.as_slice()))
    }

    /// Forgets the stored replica (e.g. after handing the state back to a
    /// rejoined ward, whose live copy is now newer).
    pub fn clear(&mut self) {
        self.replica = None;
    }

    /// Applies one `SREP` frame, returning the quantum it installed.
    ///
    /// Parse-then-verify-then-apply: structural parse, bounds checks, CRC
    /// verification, and base compatibility all pass before the stored
    /// replica is rebuilt; any error leaves it bit-identical.
    pub fn apply(&mut self, frame: &[u8]) -> Result<u64, ReplicaError> {
        if frame.len() < HEADER + 4 {
            return Err(ReplicaError::Malformed("short frame"));
        }
        if &frame[0..4] != MAGIC {
            return Err(ReplicaError::Malformed("bad magic"));
        }
        let u32_at = |i: usize| u32::from_le_bytes(frame[i..i + 4].try_into().expect("4 bytes"));
        let u64_at = |i: usize| u64::from_le_bytes(frame[i..i + 8].try_into().expect("8 bytes"));
        if u32_at(4) != VERSION {
            return Err(ReplicaError::Malformed("unknown version"));
        }
        let quantum = u64_at(8);
        let base = u64_at(16);
        let total_len = u64_at(24);
        let chunk = u32_at(32) as usize;
        let n_chunks = u32_at(36) as usize;
        if total_len > MAX_TOTAL {
            return Err(ReplicaError::Malformed("absurd total length"));
        }
        let total_len = total_len as usize;
        if chunk != REPLICA_CHUNK || n_chunks != total_len.div_ceil(REPLICA_CHUNK) {
            return Err(ReplicaError::Malformed("inconsistent chunking"));
        }
        let mask_len = n_chunks.div_ceil(8);
        let Some(body) = frame.get(HEADER..frame.len() - 4) else {
            return Err(ReplicaError::Malformed("short frame"));
        };
        if body.len() < mask_len {
            return Err(ReplicaError::Malformed("truncated mask"));
        }
        let (mask, chunks) = body.split_at(mask_len);
        // Stray bits past n_chunks would make the mask ambiguous.
        for c in n_chunks..mask_len * 8 {
            if mask[c / 8] & (1 << (c % 8)) != 0 {
                return Err(ReplicaError::Malformed("mask bit past n_chunks"));
            }
        }
        let mut expected_bytes = 0usize;
        for c in 0..n_chunks {
            if mask[c / 8] & (1 << (c % 8)) != 0 {
                let lo = c * REPLICA_CHUNK;
                expected_bytes += (lo + REPLICA_CHUNK).min(total_len) - lo;
            }
        }
        if chunks.len() != expected_bytes {
            return Err(ReplicaError::Malformed("chunk bytes do not match mask"));
        }
        let sealed = &frame[..frame.len() - 4];
        let crc = u32_at(frame.len() - 4);
        if crc32(sealed) != crc {
            return Err(ReplicaError::Corrupt);
        }
        // Verified. Now check the delta is applicable, then rebuild.
        let mut next = if base == FULL_BASE {
            vec![0u8; total_len]
        } else {
            match &self.replica {
                Some((q, prev)) if *q == base && prev.len() == total_len => prev.clone(),
                other => {
                    return Err(ReplicaError::BaseMismatch {
                        expected: base,
                        stored: other.as_ref().map(|(q, _)| *q),
                    })
                }
            }
        };
        let mut off = 0;
        for c in 0..n_chunks {
            if mask[c / 8] & (1 << (c % 8)) != 0 {
                let lo = c * REPLICA_CHUNK;
                let hi = (lo + REPLICA_CHUNK).min(total_len);
                next[lo..hi].copy_from_slice(&chunks[off..off + (hi - lo)]);
                off += hi - lo;
            }
        }
        self.replica = Some((quantum, next));
        Ok(quantum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn state(len: usize, tag: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31) ^ tag).collect()
    }

    #[test]
    fn a_full_frame_establishes_the_replica() {
        let s = state(1000, 1);
        let mut enc = DeltaEncoder::new();
        let mut store = ReplicaStore::new();
        let frame = enc.encode(&s, 5);
        assert_eq!(store.apply(&frame), Ok(5));
        assert_eq!(store.replica(), Some((5, s.as_slice())));
    }

    #[test]
    fn deltas_ship_only_changed_chunks_and_apply_exactly() {
        let mut s = state(4096, 2);
        let mut enc = DeltaEncoder::new();
        let mut store = ReplicaStore::new();
        store.apply(&enc.encode(&s, 0)).expect("full");
        let full_len = encode_frame(&s, 0, FULL_BASE, None).len();
        // Touch one chunk; the delta should be far smaller than a full
        // frame and the store must still converge bit-exactly.
        s[300] ^= 0xFF;
        let delta = enc.encode(&s, 1);
        assert!(
            delta.len() < full_len / 4,
            "one-chunk delta ({}) not much smaller than full ({full_len})",
            delta.len()
        );
        assert_eq!(store.apply(&delta), Ok(1));
        assert_eq!(store.replica(), Some((1, s.as_slice())));
    }

    #[test]
    fn an_unchanged_state_ships_an_empty_delta() {
        let s = state(2048, 3);
        let mut enc = DeltaEncoder::new();
        let mut store = ReplicaStore::new();
        store.apply(&enc.encode(&s, 0)).expect("full");
        let delta = enc.encode(&s, 1);
        assert!(delta.len() < HEADER + 8 + 4, "no chunks should travel");
        assert_eq!(store.apply(&delta), Ok(1));
        assert_eq!(store.replica(), Some((1, s.as_slice())));
    }

    #[test]
    fn a_delta_against_a_missed_base_is_rejected_untouched() {
        let s0 = state(1024, 4);
        let mut s1 = s0.clone();
        s1[10] = 99;
        let mut enc = DeltaEncoder::new();
        let mut store = ReplicaStore::new();
        store.apply(&enc.encode(&s0, 0)).expect("full");
        // The quantum-1 delta is lost; quantum 2's delta bases on 1.
        let _lost = enc.encode(&s1, 1);
        s1[20] = 42;
        let delta2 = enc.encode(&s1, 2);
        let before = store.replica().map(|(q, p)| (q, p.to_vec()));
        assert_eq!(
            store.apply(&delta2),
            Err(ReplicaError::BaseMismatch {
                expected: 1,
                stored: Some(0),
            })
        );
        assert_eq!(
            store.replica().map(|(q, p)| (q, p.to_vec())),
            before,
            "a rejected delta must not touch the store"
        );
        // Sender-side recovery: reset, next frame is full, store heals.
        enc.reset();
        let full = enc.encode(&s1, 3);
        assert_eq!(store.apply(&full), Ok(3));
        assert_eq!(store.replica(), Some((3, s1.as_slice())));
    }

    #[test]
    fn a_length_change_forces_a_full_frame() {
        let mut enc = DeltaEncoder::new();
        let mut store = ReplicaStore::new();
        store.apply(&enc.encode(&state(512, 5), 0)).expect("full");
        let grown = state(768, 5);
        let frame = enc.encode(&grown, 1);
        assert_eq!(store.apply(&frame), Ok(1));
        assert_eq!(store.replica(), Some((1, grown.as_slice())));
    }

    #[test]
    fn periodic_resync_reestablishes_a_full_base() {
        let mut enc = DeltaEncoder::new();
        let mut s = state(1024, 6);
        enc.encode(&s, 0);
        for q in 1..=FULL_EVERY {
            s[0] = s[0].wrapping_add(1);
            enc.encode(&s, q);
        }
        s[0] = s[0].wrapping_add(1);
        let frame = enc.encode(&s, FULL_EVERY + 1);
        // A fresh store (no base at all) can apply it: it must be full.
        let mut fresh = ReplicaStore::new();
        assert_eq!(fresh.apply(&frame), Ok(FULL_EVERY + 1));
        assert_eq!(fresh.replica(), Some((FULL_EVERY + 1, s.as_slice())));
    }

    #[test]
    fn garbage_frames_are_rejected() {
        let mut store = ReplicaStore::new();
        assert!(matches!(
            store.apply(b"short"),
            Err(ReplicaError::Malformed(_))
        ));
        let mut frame = DeltaEncoder::new().encode(&state(100, 7), 0);
        frame[0] = b'X';
        assert!(matches!(
            store.apply(&frame),
            Err(ReplicaError::Malformed("bad magic"))
        ));
        assert_eq!(store.replica(), None);
    }

    proptest! {
        /// Arbitrary per-quantum change masks round-trip bit-identically:
        /// after any sequence of mutations and deltas the store equals the
        /// sender's state exactly.
        #[test]
        fn arbitrary_change_sequences_round_trip(
            len in 1usize..3000,
            rounds in proptest::collection::vec(
                proptest::collection::vec((0usize..3000, 0u8..=255), 0..6),
                1..10,
            ),
        ) {
            let mut s = state(len, 8);
            let mut enc = DeltaEncoder::new();
            let mut store = ReplicaStore::new();
            store.apply(&enc.encode(&s, 0)).expect("full frame applies");
            for (q, edits) in rounds.iter().enumerate() {
                for &(pos, val) in edits {
                    let n = s.len();
                    s[pos % n] = val;
                }
                let frame = enc.encode(&s, q as u64 + 1);
                prop_assert_eq!(store.apply(&frame), Ok(q as u64 + 1));
                prop_assert_eq!(store.replica(), Some((q as u64 + 1, s.as_slice())));
            }
        }

        /// Any single corrupted byte anywhere in a frame is rejected by the
        /// seal (or structural checks) without touching the stored replica.
        #[test]
        fn any_corrupted_frame_is_rejected_without_side_effects(
            len in 1usize..2000,
            edits in proptest::collection::vec((0usize..2000, 0u8..=255), 0..5),
            corrupt_at in 0usize..4096,
            flip in 1u8..=255,
        ) {
            let mut s = state(len, 9);
            let mut enc = DeltaEncoder::new();
            let mut store = ReplicaStore::new();
            store.apply(&enc.encode(&s, 0)).expect("full frame applies");
            for &(pos, val) in &edits {
                let n = s.len();
                s[pos % n] = val;
            }
            let mut frame = enc.encode(&s, 1);
            let n = frame.len();
            frame[corrupt_at % n] ^= flip;
            let before = store.replica().map(|(q, p)| (q, p.to_vec()));
            let got = store.apply(&frame);
            prop_assert!(got.is_err(), "a damaged frame must not apply");
            prop_assert_eq!(
                store.replica().map(|(q, p)| (q, p.to_vec())),
                before,
                "a rejected frame must leave the store bit-identical"
            );
        }
    }
}
