//! The learnable top-k gating function.

use rand::rngs::SmallRng;
use schemoe_tensor::nn::Param;
use schemoe_tensor::{rng, Tensor};

/// The routing decision for one batch of tokens.
#[derive(Clone, Debug)]
pub struct GateDecision {
    /// Per token: the `(expert, combine_weight)` pairs that were admitted
    /// (at most `k`; fewer if capacity dropped some).
    pub assignments: Vec<Vec<(usize, f32)>>,
    /// Per expert: admitted `(token_index, combine_weight)` in slot order.
    pub expert_slots: Vec<Vec<(usize, f32)>>,
    /// The per-expert capacity that was enforced.
    pub capacity: usize,
    /// Number of `(token, expert)` assignments dropped by capacity.
    pub dropped: usize,
}

impl GateDecision {
    /// Fraction of assignments dropped by the capacity limit.
    pub fn drop_rate(&self, k: usize) -> f64 {
        let total = self.assignments.len() * k;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }

    /// Tokens routed to each expert (admitted only).
    pub fn expert_loads(&self) -> Vec<usize> {
        self.expert_slots.iter().map(Vec::len).collect()
    }
}

/// What happens to an assignment whose chosen expert is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Drop the assignment (GShard/Switch default; the residual connection
    /// carries the token).
    #[default]
    Drop,
    /// Reroute to the next-best expert with free capacity (GShard's
    /// secondary routing, generalized down the preference list).
    NextBest,
}

/// A learnable linear router with softmax probabilities and top-k routing.
///
/// Follows GShard/Switch: logits are `x · Wg`, probabilities are a row
/// softmax, each token picks its top-`k` experts, and tokens beyond an
/// expert's capacity (Eq. 1) are handled by the configured
/// [`OverflowPolicy`]. The combine weight of an admitted `(token, expert)`
/// pair is the softmax probability; gradients flow back through the
/// selected probabilities into `Wg` and the token embeddings, while
/// dropped assignments contribute nothing.
pub struct TopKGate {
    wg: Param,
    k: usize,
    capacity_factor: f64,
    overflow: OverflowPolicy,
    /// Weight of the auxiliary load-balancing loss (0 disables it).
    pub aux_loss_weight: f32,
    cache: Option<Cache>,
}

struct Cache {
    x: Tensor,
    probs: Tensor,
    decision: GateDecision,
    aux_grad: Option<Tensor>,
}

impl TopKGate {
    /// Creates a gate for `experts` experts over `model_dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the expert count.
    pub fn new(
        model_dim: usize,
        experts: usize,
        k: usize,
        capacity_factor: f64,
        rng_: &mut SmallRng,
    ) -> Self {
        assert!(k >= 1 && k <= experts, "need 1 <= k <= experts, got k={k}");
        TopKGate {
            wg: Param::new("gate.wg", rng::xavier(model_dim, experts, rng_)),
            k,
            capacity_factor,
            overflow: OverflowPolicy::Drop,
            aux_loss_weight: 0.0,
            cache: None,
        }
    }

    /// Sets the overflow policy, builder style.
    pub fn with_overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// The configured overflow policy.
    pub fn overflow_policy(&self) -> OverflowPolicy {
        self.overflow
    }

    /// Top-k value.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of experts routed to.
    pub fn num_experts(&self) -> usize {
        self.wg.value.dims()[1]
    }

    /// Capacity factor `f`.
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// Replaces the capacity factor — the placement controller's shed
    /// knob. Takes effect on the next forward; must be positive and
    /// finite so [`crate::expert_capacity`] stays well-defined.
    pub fn set_capacity_factor(&mut self, f: f64) {
        assert!(f.is_finite() && f > 0.0, "capacity factor must be positive");
        self.capacity_factor = f;
    }

    /// Routes a `[n, model_dim]` batch; returns the decision.
    ///
    /// Tokens are admitted to an expert in token order until its capacity
    /// fills, which matches the deterministic GShard dispatch.
    pub fn forward(&mut self, x: &Tensor) -> GateDecision {
        self.forward_masked(x, None)
    }

    /// Routes like [`forward`](Self::forward), but with an optional
    /// liveness mask: experts whose `masked[e]` is `true` are removed from
    /// routing *before* the softmax, so probabilities renormalize over the
    /// surviving experts and their combine weights stay a proper
    /// distribution. This is the degraded-mode router used when peer ranks
    /// die mid-training: the masked experts' tokens reroute to live ones.
    ///
    /// # Panics
    ///
    /// Panics if the mask length disagrees with the expert count or if it
    /// masks every expert.
    pub fn forward_masked(&mut self, x: &Tensor, masked: Option<&[bool]>) -> GateDecision {
        let n = x.dims()[0];
        let e = self.num_experts();
        if let Some(mask) = masked {
            assert_eq!(mask.len(), e, "mask length must equal expert count");
            assert!(!mask.iter().all(|&d| d), "cannot mask every expert");
        }
        let mut logits = x.matmul(&self.wg.value).expect("gate input shape");
        if let Some(mask) = masked {
            // A large negative logit (not -inf: keeps the softmax finite)
            // drives a masked expert's probability to exactly 0 after the
            // shift-by-max exponentiation.
            for t in 0..n {
                let row = logits.row_mut(t);
                for (j, &dead) in mask.iter().enumerate() {
                    if dead {
                        row[j] = -1e30;
                    }
                }
            }
        }
        let probs = logits.softmax_rows().expect("rank-2 logits");
        let capacity = crate::expert_capacity(self.capacity_factor, self.k, n, e);

        let mut assignments: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
        let mut expert_slots: Vec<Vec<(usize, f32)>> = vec![Vec::new(); e];
        let mut dropped = 0usize;
        for t in 0..n {
            let row = probs.row(t);
            // Expert preference order by probability (E is small); masked
            // experts do not participate at all.
            let mut order: Vec<usize> = (0..e).filter(|&j| masked.is_none_or(|m| !m[j])).collect();
            order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite probs"));
            let e = order.len();
            let mut admitted = 0usize;
            let mut cursor = 0usize;
            while admitted < self.k && cursor < e {
                let ex = order[cursor];
                cursor += 1;
                if expert_slots[ex].len() < capacity {
                    let w = row[ex];
                    expert_slots[ex].push((t, w));
                    assignments[t].push((ex, w));
                    admitted += 1;
                } else {
                    match self.overflow {
                        // Drop: this preference slot is lost.
                        OverflowPolicy::Drop => {
                            dropped += 1;
                            admitted += 1;
                        }
                        // NextBest: keep scanning down the preference list.
                        OverflowPolicy::NextBest => {}
                    }
                }
            }
            // NextBest may exhaust every expert; account the shortfall.
            if cursor >= e {
                dropped += self.k - admitted.min(self.k);
            }
        }
        let decision = GateDecision {
            assignments,
            expert_slots,
            capacity,
            dropped,
        };
        let aux_grad = if self.aux_loss_weight > 0.0 {
            Some(self.aux_loss_grad(&probs, &decision))
        } else {
            None
        };
        self.cache = Some(Cache {
            x: x.clone(),
            probs,
            decision: decision.clone(),
            aux_grad,
        });
        decision
    }

    /// The Switch auxiliary loss value for the most recent forward:
    /// `E · Σ_e f_e · p̄_e`, where `f_e` is the admitted token fraction and
    /// `p̄_e` the mean router probability of expert `e`.
    ///
    /// # Panics
    ///
    /// Panics if called without a cached forward.
    pub fn aux_loss(&self) -> f32 {
        let cache = self.cache.as_ref().expect("aux_loss requires a forward");
        let n = cache.probs.dims()[0] as f32;
        let e = self.num_experts();
        let mut loss = 0.0f32;
        for ex in 0..e {
            let f_e = cache.decision.expert_slots[ex].len() as f32 / n.max(1.0);
            let mut p_mean = 0.0f32;
            for t in 0..cache.probs.dims()[0] {
                p_mean += cache.probs.row(t)[ex];
            }
            p_mean /= n.max(1.0);
            loss += f_e * p_mean;
        }
        loss * e as f32
    }

    /// Gradient of the auxiliary loss with respect to the probabilities,
    /// treating the discrete token fractions as constants (Switch-style).
    fn aux_loss_grad(&self, probs: &Tensor, decision: &GateDecision) -> Tensor {
        let (n, e) = (probs.dims()[0], probs.dims()[1]);
        let mut g = Tensor::zeros(&[n, e]);
        for ex in 0..e {
            let f_e = decision.expert_slots[ex].len() as f32 / n.max(1) as f32;
            let coeff = self.aux_loss_weight * e as f32 * f_e / n.max(1) as f32;
            for t in 0..n {
                g.row_mut(t)[ex] = coeff;
            }
        }
        g
    }

    /// Backward pass given the gradient of the loss with respect to each
    /// admitted assignment's combine weight.
    ///
    /// `d_weights[t]` holds one entry per admitted assignment of token `t`,
    /// in the same order as `GateDecision::assignments[t]`. Returns the
    /// gradient with respect to the input tokens.
    ///
    /// # Panics
    ///
    /// Panics if called without a cached forward or with a ragged
    /// `d_weights` that disagrees with the cached decision.
    pub fn backward(&mut self, d_weights: &[Vec<f32>]) -> Tensor {
        let cache = self.cache.take().expect("gate backward without forward");
        let (n, e) = (cache.probs.dims()[0], cache.probs.dims()[1]);
        assert_eq!(d_weights.len(), n, "one weight-grad list per token");
        // dL/dprobs: scatter the admitted weight grads, plus the aux term.
        let mut dprobs = cache.aux_grad.unwrap_or_else(|| Tensor::zeros(&[n, e]));
        for t in 0..n {
            let assigns = &cache.decision.assignments[t];
            assert_eq!(
                d_weights[t].len(),
                assigns.len(),
                "token {t}: weight-grad arity mismatch"
            );
            for (&(ex, _), &dw) in assigns.iter().zip(d_weights[t].iter()) {
                dprobs.row_mut(t)[ex] += dw;
            }
        }
        // Softmax backward per row: dlogit = p ⊙ (dp − Σ p·dp).
        let mut dlogits = Tensor::zeros(&[n, e]);
        for t in 0..n {
            let p = cache.probs.row(t);
            let dp = dprobs.row(t);
            let dot: f32 = p.iter().zip(dp.iter()).map(|(a, b)| a * b).sum();
            let out = dlogits.row_mut(t);
            for j in 0..e {
                out[j] = p[j] * (dp[j] - dot);
            }
        }
        // Linear backward: dWg += x^T·dlogits ; dx = dlogits·Wg^T.
        let dwg = cache.x.t_matmul(&dlogits).expect("shapes agree");
        self.wg.grad.add_assign(&dwg).expect("dWg shape");
        dlogits.matmul_t(&self.wg.value).expect("dx shape")
    }

    /// Visits the gate's learnable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wg);
    }

    /// Read-only access to the router weight.
    pub fn weight(&self) -> &Param {
        &self.wg
    }

    /// Replaces the router weight (used to replicate gates across ranks).
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn set_weight(&mut self, w: Tensor) {
        assert_eq!(
            w.dims(),
            self.wg.value.dims(),
            "router weight shape mismatch"
        );
        self.wg = Param::new("gate.wg", w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_tensor::rng::seeded;

    fn gate(k: usize, f: f64) -> TopKGate {
        TopKGate::new(8, 4, k, f, &mut seeded(77))
    }

    #[test]
    fn every_token_gets_up_to_k_assignments() {
        let mut g = gate(2, 10.0); // huge capacity: nothing drops
        let x = rng::uniform(&[16, 8], 1.0, &mut seeded(1));
        let d = g.forward(&x);
        assert_eq!(d.dropped, 0);
        for a in &d.assignments {
            assert_eq!(a.len(), 2);
            // Distinct experts per token.
            assert_ne!(a[0].0, a[1].0);
        }
    }

    #[test]
    fn capacity_limits_and_drops() {
        let mut g = gate(1, 0.5); // half capacity: some tokens must drop
        let x = rng::uniform(&[32, 8], 1.0, &mut seeded(2));
        let d = g.forward(&x);
        assert!(d.expert_loads().iter().all(|&l| l <= d.capacity));
        // With f=0.5 and any imbalance, something must drop.
        assert!(d.dropped > 0, "expected drops with tight capacity");
        assert!(d.drop_rate(1) > 0.0 && d.drop_rate(1) < 1.0);
    }

    #[test]
    fn tight_factors_never_zero_capacity_on_a_live_expert() {
        // Fewer tokens than experts AND a sub-1.0 factor: the capacity
        // floor must still grant every expert one slot, so a token whose
        // top choice is an otherwise-idle expert is admitted, not shed.
        let mut g = gate(1, 0.25);
        let x = rng::uniform(&[2, 8], 1.0, &mut seeded(9));
        let d = g.forward(&x);
        assert_eq!(d.capacity, 1, "floor holds at the boundary");
        assert!(
            d.assignments.iter().any(|a| !a.is_empty()),
            "at least one token must be admitted"
        );
        assert!(d.expert_loads().iter().all(|&l| l <= d.capacity));
    }

    #[test]
    fn set_capacity_factor_takes_effect_next_forward() {
        let mut g = gate(1, 10.0);
        let x = rng::uniform(&[32, 8], 1.0, &mut seeded(2));
        assert_eq!(g.forward(&x).dropped, 0, "generous base factor");
        g.set_capacity_factor(0.5);
        assert_eq!(g.capacity_factor(), 0.5);
        let shed = g.forward(&x);
        assert!(shed.dropped > 0, "the shed knob must bite");
        // Restoring the base factor restores the original decision.
        g.set_capacity_factor(10.0);
        assert_eq!(g.forward(&x).dropped, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn set_capacity_factor_rejects_zero() {
        gate(1, 1.0).set_capacity_factor(0.0);
    }

    #[test]
    fn weights_are_softmax_probabilities() {
        let mut g = gate(2, 10.0);
        let x = rng::uniform(&[4, 8], 1.0, &mut seeded(3));
        let d = g.forward(&x);
        for a in &d.assignments {
            for &(_, w) in a {
                assert!(w > 0.0 && w <= 1.0);
            }
            // Top-1 weight >= top-2 weight.
            assert!(a[0].1 >= a[1].1);
        }
    }

    #[test]
    fn slot_order_is_token_order() {
        let mut g = gate(1, 10.0);
        let x = rng::uniform(&[10, 8], 1.0, &mut seeded(4));
        let d = g.forward(&x);
        for slots in &d.expert_slots {
            let tokens: Vec<usize> = slots.iter().map(|s| s.0).collect();
            let mut sorted = tokens.clone();
            sorted.sort_unstable();
            assert_eq!(tokens, sorted, "slots must fill in token order");
        }
    }

    #[test]
    fn gate_gradients_match_finite_differences() {
        // Probe loss: sum over admitted assignments of weight * c(t, slot).
        let mut g = gate(2, 10.0);
        let x = rng::uniform(&[5, 8], 0.5, &mut seeded(5));
        let coeff = |t: usize, i: usize| 0.3 + 0.1 * ((t * 2 + i) % 5) as f32;

        let d = g.forward(&x);
        let d_weights: Vec<Vec<f32>> = (0..5)
            .map(|t| (0..d.assignments[t].len()).map(|i| coeff(t, i)).collect())
            .collect();
        let dx = g.backward(&d_weights);

        // Finite differences on Wg (routing is locally stable for small eps).
        let probe = |g: &mut TopKGate, x: &Tensor| -> f32 {
            let d = g.forward(x);
            let mut s = 0.0f32;
            for (t, a) in d.assignments.iter().enumerate() {
                for (i, &(_, w)) in a.iter().enumerate() {
                    s += w * coeff(t, i);
                }
            }
            s
        };
        let eps = 1e-3;
        let mut analytic = Tensor::zeros(&[8, 4]);
        g.visit_params(&mut |p| analytic = p.grad.clone());
        for i in 0..8 {
            for j in 0..4 {
                g.visit_params(&mut |p| p.value.row_mut(i)[j] += eps);
                let fp = probe(&mut g, &x);
                g.visit_params(&mut |p| p.value.row_mut(i)[j] -= 2.0 * eps);
                let fm = probe(&mut g, &x);
                g.visit_params(&mut |p| p.value.row_mut(i)[j] += eps);
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (analytic.row(i)[j] - fd).abs() < 2e-2,
                    "dWg[{i},{j}]: analytic {} vs fd {}",
                    analytic.row(i)[j],
                    fd
                );
            }
        }

        // Finite differences on x.
        for t in 0..5 {
            for j in 0..8 {
                let mut xp = x.clone();
                xp.row_mut(t)[j] += eps;
                let mut xm = x.clone();
                xm.row_mut(t)[j] -= eps;
                let fp = probe(&mut g, &xp);
                let fm = probe(&mut g, &xm);
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (dx.row(t)[j] - fd).abs() < 2e-2,
                    "dx[{t},{j}]: analytic {} vs fd {}",
                    dx.row(t)[j],
                    fd
                );
            }
        }
    }

    #[test]
    fn aux_loss_penalizes_imbalance() {
        let mut g = gate(1, 10.0);
        g.aux_loss_weight = 1.0;
        // A batch the router sends mostly to one expert has higher aux loss
        // than a perfectly balanced batch would (lower bound is 1.0).
        let x = rng::uniform(&[32, 8], 1.0, &mut seeded(6));
        g.forward(&x);
        let loss = g.aux_loss();
        assert!(loss >= 1.0 - 1e-3, "aux loss {loss} below balanced optimum");
    }

    #[test]
    #[should_panic(expected = "1 <= k <= experts")]
    fn k_larger_than_experts_is_rejected() {
        TopKGate::new(4, 2, 3, 1.0, &mut seeded(1));
    }

    #[test]
    fn masked_experts_receive_nothing_and_weights_renormalize() {
        let mut g = gate(2, 10.0);
        let x = rng::uniform(&[16, 8], 1.0, &mut seeded(31));
        // Mask expert 1: nothing routes there, and every token's admitted
        // weights are softmax probabilities over the 3 survivors.
        let d = g.forward_masked(&x, Some(&[false, true, false, false]));
        assert_eq!(d.expert_slots[1].len(), 0, "masked expert got tokens");
        for a in &d.assignments {
            assert_eq!(a.len(), 2);
            for &(ex, w) in a {
                assert_ne!(ex, 1);
                assert!(w > 0.0 && w <= 1.0);
            }
        }
        // Renormalization: a k = live-count decision sums to ~1.
        let mut g3 = gate(3, 10.0);
        let d3 = g3.forward_masked(&x, Some(&[false, true, false, false]));
        for a in &d3.assignments {
            let sum: f32 = a.iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-4, "weights sum to {sum}, not 1");
        }
    }

    #[test]
    fn masked_gradients_stay_finite() {
        let mut g = gate(2, 10.0);
        let x = rng::uniform(&[8, 8], 0.5, &mut seeded(32));
        let d = g.forward_masked(&x, Some(&[false, false, true, false]));
        let d_weights: Vec<Vec<f32>> = d.assignments.iter().map(|a| vec![1.0; a.len()]).collect();
        let dx = g.backward(&d_weights);
        assert!(dx.all_finite());
    }

    #[test]
    #[should_panic(expected = "cannot mask every expert")]
    fn masking_every_expert_is_rejected() {
        let mut g = gate(1, 1.0);
        let x = rng::uniform(&[2, 8], 1.0, &mut seeded(33));
        g.forward_masked(&x, Some(&[true, true, true, true]));
    }

    #[test]
    fn no_mask_matches_plain_forward() {
        let x = rng::uniform(&[12, 8], 1.0, &mut seeded(34));
        let mut a = gate(2, 4.0);
        let mut b = gate(2, 4.0);
        let da = a.forward(&x);
        let db = b.forward_masked(&x, Some(&[false; 4]));
        for (x_, y_) in da.assignments.iter().zip(db.assignments.iter()) {
            assert_eq!(x_, y_);
        }
    }

    #[test]
    fn unmasking_restores_the_unmasked_decision_exactly() {
        // Re-expansion after a rank rejoin: masking is purely per-call
        // state, so a gate that routed around a dead expert produces the
        // original full-world decision — same assignments, same
        // renormalized weights — as soon as the mask is lifted.
        let x = rng::uniform(&[16, 8], 1.0, &mut seeded(35));
        let mut survivor = gate(2, 4.0);
        let masked = survivor.forward_masked(&x, Some(&[false, false, true, false]));
        assert_eq!(masked.expert_slots[2].len(), 0);
        let expanded = survivor.forward_masked(&x, None);
        let mut fresh = gate(2, 4.0);
        let want = fresh.forward(&x);
        assert_eq!(expanded.assignments, want.assignments);
        assert_eq!(expanded.expert_slots, want.expert_slots);
    }

    #[test]
    fn next_best_overflow_reroutes_instead_of_dropping() {
        // Tight capacity: Drop loses assignments, NextBest finds room.
        let x = rng::uniform(&[32, 8], 1.0, &mut seeded(21));
        let mut drop_gate = TopKGate::new(8, 4, 1, 0.5, &mut seeded(77));
        let d_drop = drop_gate.forward(&x);
        assert!(
            d_drop.dropped > 0,
            "tight capacity must drop under Drop policy"
        );
        let mut reroute_gate =
            TopKGate::new(8, 4, 1, 0.5, &mut seeded(77)).with_overflow(OverflowPolicy::NextBest);
        let d_next = reroute_gate.forward(&x);
        // Capacity 0.5·32/4 = 4 slots × 4 experts = 16 total; 32 tokens
        // cannot all fit, but every slot fills before anything drops.
        assert!(d_next.dropped < d_drop.dropped + 1);
        let total: usize = d_next.expert_loads().iter().sum();
        assert_eq!(total, 4 * d_next.capacity, "NextBest fills every slot");
        assert!(d_next.expert_loads().iter().all(|&l| l <= d_next.capacity));
    }

    #[test]
    fn next_best_with_ample_capacity_matches_drop_policy() {
        let x = rng::uniform(&[16, 8], 1.0, &mut seeded(22));
        let mut a = TopKGate::new(8, 4, 2, 8.0, &mut seeded(78));
        let mut b =
            TopKGate::new(8, 4, 2, 8.0, &mut seeded(78)).with_overflow(OverflowPolicy::NextBest);
        let da = a.forward(&x);
        let db = b.forward(&x);
        // No overflow happens, so the decisions are identical.
        assert_eq!(da.dropped, 0);
        assert_eq!(db.dropped, 0);
        for (x_, y_) in da.assignments.iter().zip(db.assignments.iter()) {
            assert_eq!(x_, y_);
        }
    }

    #[test]
    fn gradients_still_correct_under_next_best() {
        // The backward contract only depends on the decision structure, so
        // rerouted assignments must flow gradients like any other.
        let mut g =
            TopKGate::new(8, 4, 1, 0.5, &mut seeded(79)).with_overflow(OverflowPolicy::NextBest);
        let x = rng::uniform(&[16, 8], 0.5, &mut seeded(23));
        let d = g.forward(&x);
        let d_weights: Vec<Vec<f32>> = d.assignments.iter().map(|a| vec![1.0; a.len()]).collect();
        let dx = g.backward(&d_weights);
        assert_eq!(dx.dims(), &[16, 8]);
        assert!(dx.all_finite());
    }
}
