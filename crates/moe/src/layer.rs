//! The single-process MoE layer: gate → dispatch → experts → combine.

use rand::rngs::SmallRng;
use schemoe_compression::Compressor;
use schemoe_tensor::nn::{Module, Param};
use schemoe_tensor::Tensor;

use crate::expert::{Expert, FfExpert};
use crate::gating::{GateDecision, TopKGate};

/// A complete MoE layer with every expert local to the process.
///
/// Forward: the gate routes each token to its top-`k` experts (capacity
/// limited), admitted tokens are gathered per expert, each expert runs its
/// fflayer, and outputs are combined back per token weighted by the gate
/// probabilities. Dropped tokens contribute zero (the standard GShard
/// behaviour — the residual connection around the layer carries them).
///
/// An optional [`Compressor`] round-trips both the dispatched tokens and
/// the expert outputs through the codec, reproducing bit-exactly the
/// numeric effect of compressing the two all-to-alls in distributed
/// training. This is how the convergence-under-compression study (Table 6)
/// runs at single-process speed.
pub struct MoeLayer {
    gate: TopKGate,
    experts: Vec<Box<dyn Expert>>,
    compressor: Option<Box<dyn Compressor>>,
    cache: Option<Cache>,
}

struct Cache {
    decision: GateDecision,
    /// Per expert: the (possibly compressed) outputs, in slot order.
    /// (Expert *inputs* are cached inside each expert for its backward.)
    expert_outputs: Vec<Tensor>,
    n: usize,
}

impl MoeLayer {
    /// Creates a layer with `experts` fresh [`FfExpert`]s.
    pub fn new(
        model_dim: usize,
        hidden_dim: usize,
        experts: usize,
        k: usize,
        capacity_factor: f64,
        rng: &mut SmallRng,
    ) -> Self {
        let gate = TopKGate::new(model_dim, experts, k, capacity_factor, rng);
        let experts: Vec<Box<dyn Expert>> = (0..experts)
            .map(|_| Box::new(FfExpert::new(model_dim, hidden_dim, rng)) as Box<dyn Expert>)
            .collect();
        MoeLayer {
            gate,
            experts,
            compressor: None,
            cache: None,
        }
    }

    /// Builds a layer from an explicit gate and expert set.
    ///
    /// # Panics
    ///
    /// Panics if the gate's expert count differs from `experts.len()`.
    pub fn from_parts(gate: TopKGate, experts: Vec<Box<dyn Expert>>) -> Self {
        assert_eq!(
            gate.num_experts(),
            experts.len(),
            "gate/expert count mismatch"
        );
        MoeLayer {
            gate,
            experts,
            compressor: None,
            cache: None,
        }
    }

    /// Round-trips dispatch and combine payloads through `codec`,
    /// builder style.
    pub fn with_compressor(mut self, codec: Box<dyn Compressor>) -> Self {
        self.compressor = Some(codec);
        self
    }

    /// Enables the auxiliary load-balancing loss with the given weight.
    pub fn with_aux_loss(mut self, weight: f32) -> Self {
        self.gate.aux_loss_weight = weight;
        self
    }

    /// The gate.
    pub fn gate(&self) -> &TopKGate {
        &self.gate
    }

    /// Number of experts.
    pub fn num_experts(&self) -> usize {
        self.experts.len()
    }

    /// The routing decision of the most recent forward.
    pub fn last_decision(&self) -> Option<&GateDecision> {
        self.cache.as_ref().map(|c| &c.decision)
    }

    /// Applies the configured codec as a lossy identity, if any.
    fn maybe_compress(&self, t: &Tensor) -> Tensor {
        match &self.compressor {
            Some(codec) => {
                let wire = codec.compress(t.data());
                let back = codec
                    .decompress(&wire, t.numel())
                    .expect("codec accepts its own output");
                Tensor::from_vec(back, t.dims()).expect("shape preserved")
            }
            None => t.clone(),
        }
    }
}

impl Module for MoeLayer {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let n = x.dims()[0];
        let m = x.dims()[1];
        let decision = self.gate.forward(x);

        // Dispatch: gather admitted rows per expert (the first A2A), with
        // the codec applied to what would cross the wire.
        let mut expert_inputs = Vec::with_capacity(self.experts.len());
        for slots in &decision.expert_slots {
            let mut rows = Tensor::zeros(&[slots.len(), m]);
            for (s, &(t, _)) in slots.iter().enumerate() {
                rows.row_mut(s).copy_from_slice(x.row(t));
            }
            expert_inputs.push(self.maybe_compress(&rows));
        }

        // Expert computation.
        let mut expert_outputs = Vec::with_capacity(self.experts.len());
        for (e, input) in expert_inputs.iter().enumerate() {
            let out = self.experts[e].forward(input);
            // The second A2A carries the outputs back.
            expert_outputs.push(self.maybe_compress(&out));
        }

        // Combine: weighted scatter back to token positions.
        let mut y = Tensor::zeros(&[n, m]);
        for (e, slots) in decision.expert_slots.iter().enumerate() {
            for (s, &(t, w)) in slots.iter().enumerate() {
                let orow = expert_outputs[e].row(s);
                let yrow = y.row_mut(t);
                for (yj, &oj) in yrow.iter_mut().zip(orow.iter()) {
                    *yj += w * oj;
                }
            }
        }
        self.cache = Some(Cache {
            decision,
            expert_outputs,
            n,
        });
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("moe backward without forward");
        let m = dy.dims()[1];
        assert_eq!(dy.dims()[0], cache.n, "gradient row count mismatch");

        // Combine backward: per admitted slot, d_out = w · dy[t] and the
        // weight gradient is <dy[t], expert_out[slot]>.
        let mut d_weights: Vec<Vec<f32>> = vec![Vec::new(); cache.n];
        let mut dx = Tensor::zeros(&[cache.n, m]);
        for (e, slots) in cache.decision.expert_slots.iter().enumerate() {
            let mut d_out = Tensor::zeros(&[slots.len(), m]);
            for (s, &(t, w)) in slots.iter().enumerate() {
                let dyrow = dy.row(t);
                let orow = cache.expert_outputs[e].row(s);
                let dorow = d_out.row_mut(s);
                for j in 0..m {
                    dorow[j] = w * dyrow[j];
                }
                let _ = orow;
            }
            // Expert backward, then dispatch backward (scatter to tokens).
            let d_in = self.experts[e].backward(&d_out);
            for (s, &(t, _)) in slots.iter().enumerate() {
                let drow = d_in.row(s);
                let xrow = dx.row_mut(t);
                for j in 0..m {
                    xrow[j] += drow[j];
                }
            }
        }
        // Weight gradients need the expert outputs in per-token assignment
        // order.
        for (t, assigns) in cache.decision.assignments.iter().enumerate() {
            for &(e, _) in assigns {
                // Find this token's slot in expert e (token order = slot
                // order, binary search is possible; linear is fine at our
                // slot counts).
                let s = cache.decision.expert_slots[e]
                    .iter()
                    .position(|&(tt, _)| tt == t)
                    .expect("assignment implies a slot");
                let dyrow = dy.row(t);
                let orow = cache.expert_outputs[e].row(s);
                let dw: f32 = dyrow.iter().zip(orow.iter()).map(|(a, b)| a * b).sum();
                d_weights[t].push(dw);
            }
        }
        let dx_gate = self.gate.backward(&d_weights);
        dx.add_assign(&dx_gate).expect("same shape");
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gate.visit_params(f);
        for e in &mut self.experts {
            e.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_compression::{Fp16Compressor, ZfpCompressor};
    use schemoe_tensor::grad_check::check_module_gradients;
    use schemoe_tensor::rng::{self, seeded};

    fn layer(k: usize, f: f64) -> MoeLayer {
        MoeLayer::new(6, 12, 4, k, f, &mut seeded(91))
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let mut l = layer(2, 2.0);
        let x = rng::uniform(&[10, 6], 1.0, &mut seeded(92));
        let y = l.forward(&x);
        assert_eq!(y.dims(), &[10, 6]);
        assert!(y.all_finite());
        let d = l.last_decision().unwrap();
        assert_eq!(d.assignments.len(), 10);
    }

    #[test]
    fn dropped_tokens_produce_zero_output() {
        // Capacity 1 slot per expert: most tokens drop entirely with k=1.
        let mut l = MoeLayer::new(6, 12, 2, 1, 0.1, &mut seeded(93));
        let x = rng::uniform(&[20, 6], 1.0, &mut seeded(94));
        let y = l.forward(&x);
        let d = l.last_decision().unwrap().clone();
        for (t, assigns) in d.assignments.iter().enumerate() {
            if assigns.is_empty() {
                assert!(
                    y.row(t).iter().all(|&v| v == 0.0),
                    "dropped token {t} non-zero"
                );
            }
        }
        assert!(d.dropped > 0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Generous capacity keeps routing stable under the probe epsilon.
        let mut l = MoeLayer::new(4, 6, 3, 2, 4.0, &mut seeded(95));
        let x = rng::uniform(&[4, 4], 0.5, &mut seeded(96));
        check_module_gradients(&mut l, &x, 5e-2);
    }

    #[test]
    fn compressor_changes_output_within_bounds() {
        let x = rng::uniform(&[8, 6], 1.0, &mut seeded(97));
        let mut exact = layer(1, 4.0);
        let y_exact = exact.forward(&x);
        // Same parameters (same seed), with an FP16 round-trip.
        let mut lossy = layer(1, 4.0).with_compressor(Box::new(Fp16Compressor));
        let y_lossy = lossy.forward(&x);
        let diff = y_exact.max_abs_diff(&y_lossy).unwrap();
        assert!(diff > 0.0, "fp16 must perturb something");
        assert!(diff < 1e-2, "fp16 perturbation too large: {diff}");
        // ZFP: coarser but still bounded.
        let mut zfp = layer(1, 4.0).with_compressor(Box::new(ZfpCompressor::default()));
        let y_zfp = zfp.forward(&x);
        let diff = y_exact.max_abs_diff(&y_zfp).unwrap();
        assert!(diff < 0.2, "zfp perturbation too large: {diff}");
    }

    #[test]
    fn param_count_covers_gate_and_experts() {
        let mut l = layer(1, 1.0);
        // Gate 6*4; each expert 6*12+12+12*6+6.
        assert_eq!(l.num_params(), 6 * 4 + 4 * (6 * 12 + 12 + 12 * 6 + 6));
    }

    #[test]
    fn aux_loss_is_exposed_through_gate() {
        let mut l = layer(1, 2.0).with_aux_loss(0.01);
        let x = rng::uniform(&[16, 6], 1.0, &mut seeded(98));
        l.forward(&x);
        assert!(l.gate().aux_loss() >= 1.0 - 1e-3);
    }
}
