//! Alternative routing strategies and load-balance analysis.
//!
//! The paper's §8 surveys the algorithmic line of work on balanced
//! routing — BASE layers (token-to-expert assignment as matching),
//! expert-choice routing (Zhou et al.: experts pick tokens), and
//! stochastic routing — and notes ScheMoE composes with any of them.
//! This module provides those routers behind a common [`Router`] trait
//! (inference-style routing, no learned state) plus the imbalance
//! statistics that determine dispatch-buffer pressure: the quantity that
//! decides whether a Faster-MoE-style uncapped system survives (Table 8).

use rand::rngs::SmallRng;
use rand::Rng;
use schemoe_tensor::Tensor;

use crate::gating::GateDecision;

/// A routing strategy: scores tokens against experts and produces a
/// dispatch decision.
pub trait Router {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Routes `scores` (a `[tokens, experts]` affinity matrix, e.g. gate
    /// softmax probabilities) into a dispatch decision.
    fn route(&mut self, scores: &Tensor) -> GateDecision;
}

/// GShard/Switch token-choice routing: every token picks its top-k
/// experts, capacity drops the overflow in token order.
pub struct TokenChoiceRouter {
    k: usize,
    capacity_factor: f64,
}

impl TokenChoiceRouter {
    /// Creates the router.
    pub fn new(k: usize, capacity_factor: f64) -> Self {
        TokenChoiceRouter { k, capacity_factor }
    }
}

impl Router for TokenChoiceRouter {
    fn name(&self) -> &'static str {
        "token-choice"
    }

    fn route(&mut self, scores: &Tensor) -> GateDecision {
        let (n, e) = (scores.dims()[0], scores.dims()[1]);
        let capacity = crate::expert_capacity(self.capacity_factor, self.k, n, e);
        let mut assignments: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
        let mut expert_slots: Vec<Vec<(usize, f32)>> = vec![Vec::new(); e];
        let mut dropped = 0usize;
        for t in 0..n {
            let row = scores.row(t);
            let mut order: Vec<usize> = (0..e).collect();
            order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite"));
            for &ex in order.iter().take(self.k) {
                if expert_slots[ex].len() < capacity {
                    expert_slots[ex].push((t, row[ex]));
                    assignments[t].push((ex, row[ex]));
                } else {
                    dropped += 1;
                }
            }
        }
        GateDecision {
            assignments,
            expert_slots,
            capacity,
            dropped,
        }
    }
}

/// Expert-choice routing (Zhou et al., NeurIPS'22): each expert picks its
/// own top-`capacity` tokens. Perfect load balance by construction; a
/// token may be chosen by zero or many experts.
pub struct ExpertChoiceRouter {
    capacity_factor: f64,
    k: usize,
}

impl ExpertChoiceRouter {
    /// Creates the router; `k` only sizes the capacity budget
    /// (`C = f·k·n/E`) for fair comparison with token-choice.
    pub fn new(k: usize, capacity_factor: f64) -> Self {
        ExpertChoiceRouter { capacity_factor, k }
    }
}

impl Router for ExpertChoiceRouter {
    fn name(&self) -> &'static str {
        "expert-choice"
    }

    fn route(&mut self, scores: &Tensor) -> GateDecision {
        let (n, e) = (scores.dims()[0], scores.dims()[1]);
        let capacity = crate::expert_capacity(self.capacity_factor, self.k, n, e);
        let mut assignments: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
        let mut expert_slots: Vec<Vec<(usize, f32)>> = vec![Vec::new(); e];
        for ex in 0..e {
            // Expert ex picks its top-capacity tokens by score.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                scores.row(b)[ex]
                    .partial_cmp(&scores.row(a)[ex])
                    .expect("finite")
            });
            let mut picked: Vec<usize> = order.into_iter().take(capacity).collect();
            // Slot order stays token order, as the dispatch format expects.
            picked.sort_unstable();
            for t in picked {
                let w = scores.row(t)[ex];
                expert_slots[ex].push((t, w));
                assignments[t].push((ex, w));
            }
        }
        // Expert-choice never "drops" (experts always fill), but tokens
        // may be unrouted; report those as drops for comparability.
        let dropped = assignments.iter().filter(|a| a.is_empty()).count();
        GateDecision {
            assignments,
            expert_slots,
            capacity,
            dropped,
        }
    }
}

/// Stochastic routing (Zuo et al., ICLR'22 style): each token samples `k`
/// experts uniformly, ignoring scores. Balanced in expectation; used as a
/// generalization-improving baseline.
pub struct RandomRouter {
    k: usize,
    capacity_factor: f64,
    rng: SmallRng,
}

impl RandomRouter {
    /// Creates the router with its own routing RNG.
    pub fn new(k: usize, capacity_factor: f64, rng: SmallRng) -> Self {
        RandomRouter {
            k,
            capacity_factor,
            rng,
        }
    }
}

impl Router for RandomRouter {
    fn name(&self) -> &'static str {
        "stochastic"
    }

    fn route(&mut self, scores: &Tensor) -> GateDecision {
        let (n, e) = (scores.dims()[0], scores.dims()[1]);
        let capacity = crate::expert_capacity(self.capacity_factor, self.k, n, e);
        let mut assignments: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
        let mut expert_slots: Vec<Vec<(usize, f32)>> = vec![Vec::new(); e];
        let mut dropped = 0usize;
        for t in 0..n {
            let mut chosen = Vec::new();
            while chosen.len() < self.k.min(e) {
                let ex = self.rng.gen_range(0..e);
                if !chosen.contains(&ex) {
                    chosen.push(ex);
                }
            }
            for ex in chosen {
                if expert_slots[ex].len() < capacity {
                    // Uniform combine weight: the sampled expert's output
                    // is taken at 1/k.
                    let w = 1.0 / self.k as f32;
                    expert_slots[ex].push((t, w));
                    assignments[t].push((ex, w));
                } else {
                    dropped += 1;
                }
            }
        }
        GateDecision {
            assignments,
            expert_slots,
            capacity,
            dropped,
        }
    }
}

/// Load-balance statistics of a routing decision.
#[derive(Clone, Copy, Debug)]
pub struct BalanceStats {
    /// Max expert load divided by mean expert load (1.0 = perfect).
    pub imbalance: f64,
    /// Fraction of `(token, assignment)` slots dropped or unrouted.
    pub drop_rate: f64,
    /// Coefficient of variation of expert loads.
    pub load_cv: f64,
}

/// Computes balance statistics for a decision made over `n` tokens with
/// budget `k`.
pub fn balance_stats(decision: &GateDecision, k: usize) -> BalanceStats {
    let loads = decision.expert_loads();
    let e = loads.len().max(1) as f64;
    let total: usize = loads.iter().sum();
    let mean = total as f64 / e;
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    let var = loads
        .iter()
        .map(|&l| (l as f64 - mean).powi(2))
        .sum::<f64>()
        / e;
    BalanceStats {
        imbalance: if mean > 0.0 { max / mean } else { 1.0 },
        drop_rate: decision.drop_rate(k),
        load_cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_tensor::rng::{self, seeded};

    /// A skewed affinity matrix: most tokens prefer expert 0.
    fn skewed_scores(n: usize, e: usize) -> Tensor {
        let mut s = rng::uniform(&[n, e], 0.1, &mut seeded(5));
        for t in 0..n {
            if t % 4 != 0 {
                s.row_mut(t)[0] += 1.0;
            }
        }
        s.softmax_rows().expect("rank-2")
    }

    #[test]
    fn token_choice_suffers_under_skew() {
        let scores = skewed_scores(64, 8);
        let mut tc = TokenChoiceRouter::new(1, 1.0);
        let d = tc.route(&scores);
        let stats = balance_stats(&d, 1);
        assert!(stats.drop_rate > 0.2, "skew must cause drops: {stats:?}");
        // Capacity clamps the max load, so imbalance is bounded...
        assert!(d.expert_loads().iter().all(|&l| l <= d.capacity));
    }

    #[test]
    fn expert_choice_is_perfectly_balanced() {
        let scores = skewed_scores(64, 8);
        let mut ec = ExpertChoiceRouter::new(1, 1.0);
        let d = ec.route(&scores);
        let stats = balance_stats(&d, 1);
        assert!(
            (stats.imbalance - 1.0).abs() < 1e-9,
            "expert choice must fill every expert equally: {stats:?}"
        );
        // Every expert filled exactly to capacity.
        assert!(d.expert_loads().iter().all(|&l| l == d.capacity));
    }

    #[test]
    fn stochastic_routing_balances_in_expectation() {
        let scores = skewed_scores(512, 8);
        let mut rr = RandomRouter::new(1, 1.25, seeded(6));
        let d = rr.route(&scores);
        let stats = balance_stats(&d, 1);
        assert!(
            stats.imbalance < 1.35,
            "random routing too skewed: {stats:?}"
        );
        assert!(stats.drop_rate < 0.1);
    }

    #[test]
    fn expert_choice_slots_stay_in_token_order() {
        let scores = skewed_scores(32, 4);
        let mut ec = ExpertChoiceRouter::new(2, 1.0);
        let d = ec.route(&scores);
        for slots in &d.expert_slots {
            let toks: Vec<usize> = slots.iter().map(|s| s.0).collect();
            let mut sorted = toks.clone();
            sorted.sort_unstable();
            assert_eq!(toks, sorted);
        }
    }

    #[test]
    fn routers_spend_the_same_slot_budget() {
        // Expert-choice always fills E·C slots; token-choice admits at
        // most n·k. With balanced random scores and headroom both land on
        // the same total.
        let scores = rng::uniform(&[64, 8], 1.0, &mut seeded(9))
            .softmax_rows()
            .expect("rank-2");
        let mut tc = TokenChoiceRouter::new(1, 8.0); // capacity never binds
        let tc_total: usize = tc.route(&scores).expert_loads().iter().sum();
        assert_eq!(tc_total, 64);
        let mut ec = ExpertChoiceRouter::new(1, 1.0); // capacity = 8 each
        let ec_total: usize = ec.route(&scores).expert_loads().iter().sum();
        assert_eq!(ec_total, 64);
    }
}
