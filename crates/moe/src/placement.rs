//! Load-aware expert placement: which ranks serve which expert, and the
//! deterministic policy that decides it.
//!
//! Static expert parallelism pins expert `e` to rank `e / experts_per_rank`
//! forever. Under Zipf-skewed routing one rank saturates while the rest
//! idle, and a slow-but-alive ("gray") rank drags every step even though it
//! never dies. A [`Placement`] breaks that pin: each expert has an ordered
//! server list whose head is its current *home* and whose tail are *replicas*
//! that absorb a share of its tokens. The placement controller in
//! `schemoe-models` re-decides the table each placement quantum from
//! measured load and health:
//!
//! * **replicate** — an expert hotter than `hot_factor ×` the mean expert
//!   load gains replicas on the least-loaded healthy ranks; dispatch fans
//!   its capacity slots round-robin across the servers and backward reduces
//!   the replica gradients, so every copy steps identically.
//! * **migrate / demote** — an expert whose static home went gray (p99
//!   send-stall toward it blows past the healthy median, see
//!   [`gray_ranks`]) is re-homed onto a healthy rank *before* any burial
//!   vote; when the rank heals the expert migrates straight back.
//! * **shed** — when replication alone cannot absorb the skew (replica cap
//!   or healthy-rank count exhausted) the policy trims the gate's capacity
//!   factor, clamped to `shed_floor ×` the configured base so drops stay
//!   loss-bounded, counted, and deterministic.
//!
//! Everything here is pure and index-tiebroken: the same inputs produce the
//! same plan bit-for-bit, which is what lets a seeded chaos campaign replay
//! placement decisions exactly. Wire frames ([`Placement::encode`],
//! [`PlacementPlan::encode`], [`LoadReport::encode`]) follow the
//! CRC-sealed parse-then-verify-then-apply discipline of
//! [`replication`](crate::replication): a damaged or truncated frame is
//! rejected without side effects.

use std::collections::BTreeSet;
use std::fmt;

use schemoe_cluster::faults::crc32;

/// Replica lists longer than this are rejected as nonsense on the wire.
const MAX_SERVERS: usize = 64;
/// Expert counts larger than this are rejected as nonsense on the wire.
const MAX_EXPERTS: usize = 1 << 16;

const PLACEMENT_MAGIC: &[u8; 4] = b"PLMT";
const PLAN_MAGIC: &[u8; 4] = b"PLPL";
const REPORT_MAGIC: &[u8; 4] = b"PLRP";
const FORMAT_VERSION: u32 = 1;

/// Why a placement frame was rejected. Nothing was applied in any case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// Too short, bad magic, unknown version, or inconsistent contents.
    Malformed(&'static str),
    /// The CRC seal did not verify.
    Corrupt,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::Malformed(what) => write!(f, "malformed placement frame: {what}"),
            PlacementError::Corrupt => write!(f, "placement frame failed its CRC seal"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// The expert→servers table: `servers(e)[0]` is the expert's current home,
/// the rest are replicas. The *static home* `e / experts_per_rank` stays in
/// every sync group even while demoted, so it is never stale and every
/// transfer can source from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    experts_per_rank: usize,
    version: u64,
    servers: Vec<Vec<usize>>,
}

impl Placement {
    /// The canonical static layout: expert `e` served only by
    /// `e / experts_per_rank`, version 0.
    pub fn static_layout(n_experts: usize, experts_per_rank: usize) -> Self {
        assert!(experts_per_rank > 0, "experts_per_rank must be positive");
        Placement {
            experts_per_rank,
            version: 0,
            servers: (0..n_experts).map(|e| vec![e / experts_per_rank]).collect(),
        }
    }

    /// Builds a placement from an explicit server table (head = home).
    pub fn new(experts_per_rank: usize, version: u64, servers: Vec<Vec<usize>>) -> Self {
        assert!(experts_per_rank > 0, "experts_per_rank must be positive");
        assert!(
            servers.iter().all(|s| !s.is_empty()),
            "every expert needs at least one server"
        );
        Placement {
            experts_per_rank,
            version,
            servers,
        }
    }

    /// Same table, different version stamp.
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// The plan version stamp (monotone per placement quantum).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of experts covered.
    pub fn n_experts(&self) -> usize {
        self.servers.len()
    }

    /// The configured experts-per-rank of the static layout.
    pub fn experts_per_rank(&self) -> usize {
        self.experts_per_rank
    }

    /// True when every expert is served only by its static home — the
    /// layout the plain dispatch paths assume.
    pub fn is_static(&self) -> bool {
        self.servers
            .iter()
            .enumerate()
            .all(|(e, s)| s.len() == 1 && s[0] == e / self.experts_per_rank)
    }

    /// The static home of expert `e` (its owner under static layout).
    pub fn static_home(&self, e: usize) -> usize {
        e / self.experts_per_rank
    }

    /// The ordered server list of expert `e`; index 0 is the current home.
    pub fn servers(&self, e: usize) -> &[usize] {
        &self.servers[e]
    }

    /// Where capacity slot `slot` of expert `e` is dispatched: slots fan
    /// round-robin across the server list.
    pub fn serving_rank(&self, e: usize, slot: usize) -> usize {
        let s = &self.servers[e];
        s[slot % s.len()]
    }

    /// True when `rank` serves expert `e` (home or replica).
    pub fn is_server(&self, e: usize, rank: usize) -> bool {
        self.servers[e].contains(&rank)
    }

    /// Experts served by `rank`, ascending.
    pub fn served_by(&self, rank: usize) -> Vec<usize> {
        (0..self.servers.len())
            .filter(|&e| self.servers[e].contains(&rank))
            .collect()
    }

    /// Experts `rank` serves as a *guest* (it is not their static home),
    /// ascending. These live in the layer's guest store, not its local
    /// expert slots.
    pub fn guests_of(&self, rank: usize) -> Vec<usize> {
        (0..self.servers.len())
            .filter(|&e| self.static_home(e) != rank && self.servers[e].contains(&rank))
            .collect()
    }

    /// The gradient-sync group of expert `e`: its servers plus its static
    /// home (which stays in sync even while demoted), sorted and deduped.
    pub fn sync_group(&self, e: usize) -> Vec<usize> {
        let mut g: BTreeSet<usize> = self.servers[e].iter().copied().collect();
        g.insert(self.static_home(e));
        g.into_iter().collect()
    }

    /// Ranks that need expert `e` streamed to them when moving from `old`
    /// to `self`: new servers that were not already in `old`'s sync group
    /// (members of the old sync group hold bit-identical state, so only
    /// true newcomers transfer; the static home is never a receiver).
    pub fn receivers_vs(&self, old: &Placement, e: usize) -> Vec<usize> {
        let have: BTreeSet<usize> = old.sync_group(e).into_iter().collect();
        self.servers[e]
            .iter()
            .copied()
            .filter(|r| !have.contains(r))
            .collect()
    }

    /// Encodes the table as a sealed `PLMT` frame.
    ///
    /// ```text
    /// [magic "PLMT"][format u32][version u64][epr u32][n_experts u32]
    /// [per expert: count u32, ranks u32...][crc32 u32]
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.servers.len() * 8);
        out.extend_from_slice(PLACEMENT_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.experts_per_rank as u32).to_le_bytes());
        out.extend_from_slice(&(self.servers.len() as u32).to_le_bytes());
        for s in &self.servers {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            for &r in s {
                out.extend_from_slice(&(r as u32).to_le_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a sealed `PLMT` frame. Parse-then-verify: structure and CRC
    /// must both pass before anything is returned.
    pub fn decode(frame: &[u8]) -> Result<Self, PlacementError> {
        let mut cur = Cursor::new(frame, PLACEMENT_MAGIC)?;
        let version = cur.u64()?;
        let epr = cur.u32()? as usize;
        let n = cur.u32()? as usize;
        if epr == 0 {
            return Err(PlacementError::Malformed("zero experts_per_rank"));
        }
        if n > MAX_EXPERTS {
            return Err(PlacementError::Malformed("absurd expert count"));
        }
        let mut servers = Vec::with_capacity(n);
        for _ in 0..n {
            let cnt = cur.u32()? as usize;
            if cnt == 0 || cnt > MAX_SERVERS {
                return Err(PlacementError::Malformed("bad server count"));
            }
            let mut s = Vec::with_capacity(cnt);
            for _ in 0..cnt {
                s.push(cur.u32()? as usize);
            }
            if s.iter().collect::<BTreeSet<_>>().len() != s.len() {
                return Err(PlacementError::Malformed("duplicate server"));
            }
            servers.push(s);
        }
        cur.finish()?;
        Ok(Placement {
            experts_per_rank: epr,
            version,
            servers,
        })
    }
}

/// A coordinator's decision for one placement quantum: the new table plus
/// an optional capacity-factor override (the shed knob). `None` restores
/// the configured base factor.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// The table to install on commit.
    pub placement: Placement,
    /// Gate capacity factor to install, or `None` for the base factor.
    pub capacity_override: Option<f64>,
}

impl PlacementPlan {
    /// Encodes the plan as a sealed `PLPL` frame wrapping the placement's
    /// own sealed frame (the override travels as raw f64 bits so replay is
    /// bit-exact).
    pub fn encode(&self) -> Vec<u8> {
        let inner = self.placement.encode();
        let mut out = Vec::with_capacity(21 + inner.len());
        out.extend_from_slice(PLAN_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(self.capacity_override.is_some() as u8);
        out.extend_from_slice(
            &self
                .capacity_override
                .unwrap_or(0.0)
                .to_bits()
                .to_le_bytes(),
        );
        out.extend_from_slice(&(inner.len() as u32).to_le_bytes());
        out.extend_from_slice(&inner);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a sealed `PLPL` frame.
    pub fn decode(frame: &[u8]) -> Result<Self, PlacementError> {
        let mut cur = Cursor::new(frame, PLAN_MAGIC)?;
        let flag = cur.u8()?;
        if flag > 1 {
            return Err(PlacementError::Malformed("bad override flag"));
        }
        let bits = cur.u64()?;
        let cap = (flag == 1).then(|| f64::from_bits(bits));
        if cap.is_some_and(|c| !c.is_finite() || c <= 0.0) {
            return Err(PlacementError::Malformed("non-finite capacity override"));
        }
        let inner_len = cur.u32()? as usize;
        let inner = cur.bytes(inner_len)?.to_vec();
        cur.finish()?;
        let placement = Placement::decode(&inner)?;
        Ok(PlacementPlan {
            placement,
            capacity_override: cap,
        })
    }
}

/// One rank's measurements for a placement quantum, gathered since the
/// previous quantum: what it routed, what it shed, how its experts and
/// links behaved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// The reporting rank.
    pub rank: usize,
    /// Tokens this rank's gate routed to each expert (length = experts).
    pub loads: Vec<u64>,
    /// Tokens this rank's gate dropped at the capacity edge.
    pub shed: u64,
    /// Total token assignments this rank's gate produced.
    pub routed: u64,
    /// p99 of this rank's local expert service time, microseconds.
    pub service_p99_us: u64,
    /// p99 send-stall toward each peer, microseconds (length = world);
    /// entry `[g]` is how long sends to rank `g` blocked on this rank.
    pub stall_p99_us: Vec<u64>,
}

impl LoadReport {
    /// Encodes the report as a sealed `PLRP` frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(44 + 8 * (self.loads.len() + self.stall_p99_us.len()));
        out.extend_from_slice(REPORT_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.rank as u32).to_le_bytes());
        out.extend_from_slice(&(self.loads.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.stall_p99_us.len() as u32).to_le_bytes());
        for &l in &self.loads {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out.extend_from_slice(&self.shed.to_le_bytes());
        out.extend_from_slice(&self.routed.to_le_bytes());
        out.extend_from_slice(&self.service_p99_us.to_le_bytes());
        for &s in &self.stall_p99_us {
            out.extend_from_slice(&s.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a sealed `PLRP` frame.
    pub fn decode(frame: &[u8]) -> Result<Self, PlacementError> {
        let mut cur = Cursor::new(frame, REPORT_MAGIC)?;
        let rank = cur.u32()? as usize;
        let n_experts = cur.u32()? as usize;
        let n_ranks = cur.u32()? as usize;
        if n_experts > MAX_EXPERTS || n_ranks > MAX_EXPERTS {
            return Err(PlacementError::Malformed("absurd report dimensions"));
        }
        let mut loads = Vec::with_capacity(n_experts);
        for _ in 0..n_experts {
            loads.push(cur.u64()?);
        }
        let shed = cur.u64()?;
        let routed = cur.u64()?;
        let service_p99_us = cur.u64()?;
        let mut stall_p99_us = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            stall_p99_us.push(cur.u64()?);
        }
        cur.finish()?;
        Ok(LoadReport {
            rank,
            loads,
            shed,
            routed,
            service_p99_us,
            stall_p99_us,
        })
    }
}

/// Tunables of the placement policy; all pure thresholds, no state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyConfig {
    /// An expert is *hot* (replication candidate) when its load exceeds
    /// `hot_factor ×` the mean per-expert load.
    pub hot_factor: f64,
    /// A rank is *gray* when the median observed p99 send-stall toward it
    /// exceeds `gray_factor ×` the healthy median stall.
    pub gray_factor: f64,
    /// Hard cap on servers per expert (home + replicas).
    pub max_replicas: usize,
    /// Floor of the capacity-factor override, as a fraction of the base
    /// factor — bounds the worst-case shed rate.
    pub shed_floor: f64,
    /// Quanta that routed fewer total tokens than this keep the static
    /// layout (not enough signal to move experts).
    pub min_tokens: u64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            hot_factor: 1.75,
            gray_factor: 4.0,
            max_replicas: 3,
            shed_floor: 0.5,
            min_tokens: 1,
        }
    }
}

/// Absolute stall floor, microseconds: below this no rank is ever called
/// gray, however skewed the (tiny) numbers look on a fast local fabric.
const GRAY_STALL_FLOOR_US: u64 = 200;

/// Identifies gray ranks from the cross-rank stall matrix: rank `g`'s score
/// is the *median over live observers* of their p99 send-stall toward `g`
/// (median, so one confused observer cannot frame a healthy peer), and `g`
/// is gray when its score exceeds `gray_factor ×` the median score of the
/// cluster. At most enough ranks to keep a strict healthy majority are
/// demoted, worst first; ties break toward the lower rank. Returns the
/// gray set ascending.
pub fn gray_ranks(reports: &[Option<LoadReport>], live: &[bool], gray_factor: f64) -> Vec<usize> {
    let world = live.len();
    let mut score: Vec<Option<u64>> = vec![None; world];
    for (g, slot) in score.iter_mut().enumerate() {
        if !live[g] {
            continue;
        }
        let mut obs: Vec<u64> = reports
            .iter()
            .enumerate()
            .filter(|&(o, _)| o != g && o < world && live[o])
            .filter_map(|(_, r)| r.as_ref().and_then(|r| r.stall_p99_us.get(g).copied()))
            .collect();
        if obs.is_empty() {
            continue;
        }
        obs.sort_unstable();
        *slot = Some(obs[obs.len() / 2]);
    }
    let mut all: Vec<u64> = score.iter().flatten().copied().collect();
    if all.len() < 2 {
        return Vec::new();
    }
    all.sort_unstable();
    let cluster_median = all[all.len() / 2].max(1);
    let mut candidates: Vec<(u64, usize)> = score
        .iter()
        .enumerate()
        .filter_map(|(g, s)| s.map(|s| (s, g)))
        .filter(|&(s, _)| s > GRAY_STALL_FLOOR_US && s as f64 > gray_factor * cluster_median as f64)
        .collect();
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let live_count = live.iter().filter(|&&l| l).count();
    let mut grays = Vec::new();
    for (_, g) in candidates {
        // Keep a strict majority of live ranks healthy: if "most of the
        // cluster looks gray", the observers are the problem.
        if live_count - (grays.len() + 1) > live_count / 2 {
            grays.push(g);
        }
    }
    grays.sort_unstable();
    grays
}

/// Decides the placement for the next quantum. Pure in its inputs and
/// index-tiebroken throughout, so every rank (and every replay) computes
/// the identical plan from the identical reports.
///
/// Homes: each expert homes on its static rank when that rank is live and
/// healthy, otherwise on the least-loaded healthy rank (demotion /
/// failover-adjacent migration). Replicas: experts hotter than
/// `hot_factor × mean` gain servers up to `round(load / mean)` — but at
/// least one replica, so clearing the hot threshold always acts — capped
/// by `max_replicas` and the healthy-rank count, hottest first, each new
/// replica on the least-loaded healthy rank. Shed: when the busiest
/// *per-server* share still exceeds the hot threshold after replication,
/// the capacity factor is trimmed proportionally, clamped to
/// `[shed_floor × base, base]`.
pub fn decide_plan(
    n_experts: usize,
    experts_per_rank: usize,
    live: &[bool],
    reports: &[Option<LoadReport>],
    base_capacity_factor: f64,
    cfg: &PolicyConfig,
    next_version: u64,
) -> PlacementPlan {
    let world = live.len();
    let mut loads = vec![0u64; n_experts];
    let mut routed = 0u64;
    for r in reports.iter().flatten() {
        for (e, &l) in r.loads.iter().take(n_experts).enumerate() {
            loads[e] += l;
        }
        routed += r.routed;
    }
    let grays: BTreeSet<usize> = gray_ranks(reports, live, cfg.gray_factor)
        .into_iter()
        .collect();
    let healthy: Vec<usize> = (0..world)
        .filter(|&r| live[r] && !grays.contains(&r))
        .collect();
    let fallback = || PlacementPlan {
        placement: Placement::static_layout(n_experts, experts_per_rank).with_version(next_version),
        capacity_override: None,
    };
    if healthy.is_empty() || routed < cfg.min_tokens {
        return fallback();
    }
    let mean = loads.iter().sum::<u64>() as f64 / n_experts.max(1) as f64;
    let mut proj = vec![0.0f64; world];
    let mut servers: Vec<Vec<usize>> = Vec::with_capacity(n_experts);
    let least_loaded = |proj: &[f64], exclude: &[usize]| -> Option<usize> {
        healthy
            .iter()
            .copied()
            .filter(|r| !exclude.contains(r))
            .min_by(|&a, &b| proj[a].total_cmp(&proj[b]).then(a.cmp(&b)))
    };
    for (e, &load) in loads.iter().enumerate() {
        let sh = e / experts_per_rank;
        let home = if sh < world && live[sh] && !grays.contains(&sh) {
            sh
        } else {
            least_loaded(&proj, &[]).expect("healthy is non-empty")
        };
        proj[home] += load as f64;
        servers.push(vec![home]);
    }
    if mean > 0.0 {
        let mut order: Vec<usize> = (0..n_experts).collect();
        order.sort_by(|&a, &b| loads[b].cmp(&loads[a]).then(a.cmp(&b)));
        for &e in &order {
            let l = loads[e] as f64;
            if l <= cfg.hot_factor * mean {
                break;
            }
            // An expert hot enough to clear the threshold gains at least
            // one replica even when `round(l/mean)` stays 1 (thresholds
            // below 1.5× would otherwise declare experts hot and then do
            // nothing about it).
            let cap = cfg.max_replicas.min(healthy.len()).max(1);
            let desired = ((l / mean).round() as usize).max(2).min(cap);
            while servers[e].len() < desired {
                let Some(extra) = least_loaded(&proj, &servers[e]) else {
                    break;
                };
                // The expert's load now splits one way wider.
                let g0 = servers[e].len() as f64;
                for &s in &servers[e] {
                    proj[s] -= l / g0;
                }
                servers[e].push(extra);
                let g1 = servers[e].len() as f64;
                for &s in &servers[e] {
                    proj[s] += l / g1;
                }
            }
        }
    }
    let capacity_override = if mean > 0.0 {
        let max_share = loads
            .iter()
            .enumerate()
            .map(|(e, &l)| l as f64 / servers[e].len() as f64)
            .fold(0.0f64, f64::max);
        (max_share > cfg.hot_factor * mean).then(|| {
            (base_capacity_factor * cfg.hot_factor * mean / max_share)
                .max(cfg.shed_floor * base_capacity_factor)
                .min(base_capacity_factor)
        })
    } else {
        None
    };
    PlacementPlan {
        placement: Placement::new(experts_per_rank, next_version, servers),
        capacity_override,
    }
}

/// Bounds-checked little-endian reader over a sealed frame; `finish`
/// verifies the trailing CRC32 covers everything read.
struct Cursor<'a> {
    frame: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(frame: &'a [u8], magic: &[u8; 4]) -> Result<Self, PlacementError> {
        if frame.len() < 12 {
            return Err(PlacementError::Malformed("short frame"));
        }
        if &frame[0..4] != magic {
            return Err(PlacementError::Malformed("bad magic"));
        }
        let fmt = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        if fmt != FORMAT_VERSION {
            return Err(PlacementError::Malformed("unknown format version"));
        }
        Ok(Cursor { frame, pos: 8 })
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], PlacementError> {
        // The final 4 bytes are the seal; payload reads must stop short.
        let end = self.frame.len().saturating_sub(4);
        if self.pos + n > end {
            return Err(PlacementError::Malformed("truncated frame"));
        }
        let out = &self.frame[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, PlacementError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PlacementError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, PlacementError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn finish(self) -> Result<(), PlacementError> {
        let end = self.frame.len() - 4;
        if self.pos != end {
            return Err(PlacementError::Malformed("trailing bytes"));
        }
        let crc = u32::from_le_bytes(self.frame[end..].try_into().expect("4 bytes"));
        if crc32(&self.frame[..end]) != crc {
            return Err(PlacementError::Corrupt);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn report(rank: usize, loads: Vec<u64>, stalls: Vec<u64>) -> Option<LoadReport> {
        let routed = loads.iter().sum();
        Some(LoadReport {
            rank,
            loads,
            shed: 0,
            routed,
            service_p99_us: 100,
            stall_p99_us: stalls,
        })
    }

    #[test]
    fn static_layout_is_static_and_fans_trivially() {
        let p = Placement::static_layout(8, 2);
        assert!(p.is_static());
        assert_eq!(p.servers(5), &[2]);
        assert_eq!(p.serving_rank(5, 17), 2);
        assert_eq!(p.sync_group(5), vec![2]);
        assert_eq!(p.served_by(3), vec![6, 7]);
        assert!(p.guests_of(3).is_empty());
    }

    #[test]
    fn replicated_expert_fans_round_robin_and_syncs_with_home() {
        let p = Placement::new(1, 3, vec![vec![0, 2, 3], vec![1], vec![2], vec![1]]);
        assert!(!p.is_static());
        assert_eq!(p.serving_rank(0, 0), 0);
        assert_eq!(p.serving_rank(0, 1), 2);
        assert_eq!(p.serving_rank(0, 2), 3);
        assert_eq!(p.serving_rank(0, 3), 0);
        assert_eq!(p.sync_group(0), vec![0, 2, 3]);
        // Expert 3 demoted off rank 3 onto rank 1: static home stays in
        // the sync group, rank 1 is a guest.
        assert_eq!(p.sync_group(3), vec![1, 3]);
        assert_eq!(p.guests_of(1), vec![3]);
        assert_eq!(p.served_by(2), vec![0, 2]);
    }

    #[test]
    fn receivers_are_only_true_newcomers() {
        let old = Placement::new(1, 1, vec![vec![0, 2], vec![1]]);
        let new = Placement::new(1, 2, vec![vec![0, 2, 3], vec![2]]);
        // Rank 3 is new on expert 0; ranks 0 and 2 already hold it.
        assert_eq!(new.receivers_vs(&old, 0), vec![3]);
        // Expert 1's static home (1) was in the old group; only 2 is new.
        assert_eq!(new.receivers_vs(&old, 1), vec![2]);
        // Moving back to a rank that stayed in sync transfers nothing.
        let back = Placement::new(1, 3, vec![vec![0], vec![1]]);
        assert!(back.receivers_vs(&new, 0).is_empty());
    }

    #[test]
    fn placement_frames_round_trip_and_reject_damage() {
        let p = Placement::new(2, 9, vec![vec![1, 0], vec![1], vec![0], vec![1, 0]]);
        let frame = p.encode();
        assert_eq!(Placement::decode(&frame), Ok(p.clone()));
        let mut bad = frame.clone();
        bad[10] ^= 0x40;
        assert!(Placement::decode(&bad).is_err());
        assert!(Placement::decode(&frame[..frame.len() - 1]).is_err());
        assert!(matches!(
            Placement::decode(b"nope"),
            Err(PlacementError::Malformed(_))
        ));
    }

    #[test]
    fn plan_frames_carry_the_override_bit_exactly() {
        for cap in [None, Some(1.25f64), Some(0.5)] {
            let plan = PlacementPlan {
                placement: Placement::static_layout(4, 1).with_version(7),
                capacity_override: cap,
            };
            let frame = plan.encode();
            assert_eq!(PlacementPlan::decode(&frame), Ok(plan));
        }
    }

    #[test]
    fn report_frames_round_trip() {
        let r = LoadReport {
            rank: 3,
            loads: vec![10, 0, 99, 4],
            shed: 7,
            routed: 113,
            service_p99_us: 1234,
            stall_p99_us: vec![5, 6, 7, 8],
        };
        let frame = r.encode();
        assert_eq!(LoadReport::decode(&frame), Ok(r));
        let mut bad = frame.clone();
        let n = bad.len();
        bad[n - 2] ^= 1;
        assert_eq!(LoadReport::decode(&bad), Err(PlacementError::Corrupt));
    }

    #[test]
    fn uniform_load_keeps_the_static_layout() {
        let live = [true; 4];
        let reports: Vec<_> = (0..4)
            .map(|r| report(r, vec![25, 25, 25, 25], vec![10, 10, 10, 10]))
            .collect();
        let plan = decide_plan(4, 1, &live, &reports, 2.0, &PolicyConfig::default(), 1);
        assert!(plan.placement.is_static());
        assert_eq!(plan.placement.version(), 1);
        assert_eq!(plan.capacity_override, None);
    }

    #[test]
    fn a_hot_expert_gains_replicas_on_the_idlest_ranks() {
        let live = [true; 4];
        // Expert 0 takes ~70% of all tokens.
        let reports: Vec<_> = (0..4)
            .map(|r| report(r, vec![70, 10, 10, 10], vec![10, 10, 10, 10]))
            .collect();
        let plan = decide_plan(4, 1, &live, &reports, 2.0, &PolicyConfig::default(), 2);
        let s = plan.placement.servers(0);
        assert_eq!(s[0], 0, "home stays static");
        assert_eq!(s.len(), 3, "load/mean = 2.8 rounds to 3 servers");
        // Cold experts stay home.
        for e in 1..4 {
            assert_eq!(plan.placement.servers(e), &[e]);
        }
    }

    #[test]
    fn cooling_off_returns_to_static() {
        let live = [true; 4];
        let hot: Vec<_> = (0..4)
            .map(|r| report(r, vec![70, 10, 10, 10], vec![10; 4]))
            .collect();
        let cold: Vec<_> = (0..4)
            .map(|r| report(r, vec![25, 25, 25, 25], vec![10; 4]))
            .collect();
        let p1 = decide_plan(4, 1, &live, &hot, 2.0, &PolicyConfig::default(), 1);
        assert!(!p1.placement.is_static());
        let p2 = decide_plan(4, 1, &live, &cold, 2.0, &PolicyConfig::default(), 2);
        assert!(
            p2.placement.is_static(),
            "replicas drop when load evens out"
        );
    }

    #[test]
    fn a_gray_rank_is_demoted_and_its_expert_rehomed() {
        let live = [true; 4];
        // Everyone observes huge stalls toward rank 2 only.
        let stalls = |g: usize| -> Vec<u64> {
            (0..4)
                .map(|d| if d == 2 { 50_000 } else { 10 })
                .collect::<Vec<_>>()
                .into_iter()
                .enumerate()
                .map(|(d, v)| if d == g { 0 } else { v })
                .collect()
        };
        let reports: Vec<_> = (0..4)
            .map(|r| report(r, vec![25, 25, 25, 25], stalls(r)))
            .collect();
        assert_eq!(gray_ranks(&reports, &live, 4.0), vec![2]);
        let plan = decide_plan(4, 1, &live, &reports, 2.0, &PolicyConfig::default(), 3);
        let home = plan.placement.servers(2)[0];
        assert_ne!(home, 2, "expert 2 moves off the gray rank");
        assert!(
            plan.placement.sync_group(2).contains(&2),
            "static home stays in sync"
        );
    }

    #[test]
    fn gray_demotion_never_takes_a_majority() {
        let live = [true; 4];
        // Three ranks look slow. The median-relative threshold already
        // rejects mass demotion (the cluster median is itself slow), and
        // the majority cap bounds whatever outliers remain.
        let stalls = |_g: usize| vec![90_000u64, 80_000, 70_000, 10];
        let reports: Vec<_> = (0..4).map(|r| report(r, vec![25; 4], stalls(r))).collect();
        let grays = gray_ranks(&reports, &live, 1.1);
        assert_eq!(grays, vec![0], "only the worst outlier clears the bar");
    }

    #[test]
    fn fast_fabrics_never_look_gray() {
        let live = [true; 4];
        // All stalls under the absolute floor, however skewed the ratio.
        let reports: Vec<_> = (0..4)
            .map(|r| report(r, vec![25; 4], vec![1, 1, 150, 1]))
            .collect();
        assert!(gray_ranks(&reports, &live, 4.0).is_empty());
    }

    #[test]
    fn shed_override_engages_only_past_replication_and_is_clamped() {
        let live = [true, true];
        // One expert with overwhelming load on a 2-rank world: replication
        // caps at the healthy-rank count, so the override must engage.
        let reports: Vec<_> = (0..2)
            .map(|r| report(r, vec![1000, 1, 1, 1], vec![10, 10]))
            .collect();
        let cfg = PolicyConfig {
            max_replicas: 2,
            ..PolicyConfig::default()
        };
        let plan = decide_plan(4, 2, &live, &reports, 2.0, &cfg, 1);
        let cap = plan.capacity_override.expect("pressure past replication");
        assert!(cap >= cfg.shed_floor * 2.0 && cap < 2.0, "cap = {cap}");
    }

    #[test]
    fn too_few_tokens_keeps_static() {
        let live = [true; 2];
        let reports: Vec<_> = (0..2).map(|r| report(r, vec![2, 0], vec![0, 0])).collect();
        let cfg = PolicyConfig {
            min_tokens: 100,
            ..PolicyConfig::default()
        };
        let plan = decide_plan(2, 1, &live, &reports, 2.0, &cfg, 1);
        assert!(plan.placement.is_static());
    }

    #[test]
    fn plans_are_deterministic_in_their_inputs() {
        let live = [true; 4];
        let reports: Vec<_> = (0..4)
            .map(|r| report(r, vec![60, 20, 5, 15], vec![10, 40, 10, 10]))
            .collect();
        let a = decide_plan(4, 1, &live, &reports, 2.0, &PolicyConfig::default(), 5);
        let b = decide_plan(4, 1, &live, &reports, 2.0, &PolicyConfig::default(), 5);
        assert_eq!(a, b);
    }

    proptest! {
        /// Placement frames round-trip for arbitrary tables, and any
        /// single corrupted byte is rejected.
        #[test]
        fn placement_codec_round_trips_and_rejects_corruption(
            epr in 1usize..4,
            tables in proptest::collection::vec(
                proptest::collection::vec(0usize..8, 1..4),
                1..12,
            ),
            corrupt_at in 0usize..4096,
            flip in 1u8..=255,
        ) {
            let servers: Vec<Vec<usize>> = tables
                .into_iter()
                .map(|t| {
                    let mut seen = BTreeSet::new();
                    t.into_iter().filter(|&r| seen.insert(r)).collect()
                })
                .collect();
            let p = Placement::new(epr, 42, servers);
            let frame = p.encode();
            prop_assert_eq!(Placement::decode(&frame), Ok(p));
            let mut bad = frame.clone();
            let n = bad.len();
            bad[corrupt_at % n] ^= flip;
            prop_assert!(Placement::decode(&bad).is_err());
        }

        /// The policy always produces a well-formed plan: every expert has
        /// at least one healthy live server, the static home is always in
        /// the sync group, and no server list exceeds the replica cap.
        #[test]
        fn plans_are_always_well_formed(
            seed_loads in proptest::collection::vec(0u64..1000, 4),
            dead in 0usize..4,
            kill in 0u8..2,
        ) {
            let mut live = [true; 4];
            if kill == 1 { live[dead] = false; }
            let reports: Vec<_> = (0..4)
                .map(|r| {
                    if live[r] {
                        report(r, seed_loads.clone(), vec![10; 4])
                    } else {
                        None
                    }
                })
                .collect();
            let cfg = PolicyConfig::default();
            let routed: u64 = reports.iter().flatten().map(|r| r.routed).sum();
            let plan = decide_plan(4, 1, &live, &reports, 2.0, &cfg, 1);
            if routed < cfg.min_tokens {
                // No signal: the policy must fall back to static.
                prop_assert!(plan.placement.is_static());
            } else {
            for e in 0..4 {
                let s = plan.placement.servers(e);
                prop_assert!(!s.is_empty());
                prop_assert!(s.len() <= cfg.max_replicas);
                prop_assert!(s.iter().all(|&r| live[r]));
                prop_assert!(plan.placement.sync_group(e).contains(&plan.placement.static_home(e)));
            }
            if let Some(cap) = plan.capacity_override {
                prop_assert!(cap >= cfg.shed_floor * 2.0 - 1e-12 && cap <= 2.0);
            }
            }
        }
    }
}
