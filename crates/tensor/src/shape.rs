//! Shape arithmetic for dense row-major tensors.

use std::fmt;

/// The dimensions of a [`crate::Tensor`], outermost first.
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` that provides the index
/// arithmetic (strides, flat offsets) used throughout the crate. The empty
/// shape `[]` denotes a scalar with one element.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Returns the dimensions as a slice, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Returns the number of dimensions (the tensor rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns the size of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Returns row-major strides, outermost first.
    ///
    /// The innermost stride is always 1; a scalar shape yields an empty
    /// stride vector.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// Returns `None` if `idx` has the wrong rank or any coordinate is out
    /// of bounds.
    pub fn offset(&self, idx: &[usize]) -> Option<usize> {
        if idx.len() != self.0.len() {
            return None;
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (d, (&i, &s)) in idx.iter().zip(strides.iter()).enumerate() {
            if i >= self.0[d] {
                return None;
            }
            off += i * s;
        }
        Some(off)
    }

    /// Returns `true` when both shapes describe 2-D matrices that can be
    /// multiplied (`[m, k] x [k, n]`).
    pub fn matmul_compatible(&self, rhs: &Shape) -> bool {
        self.rank() == 2 && rhs.rank() == 2 && self.0[1] == rhs.0[0]
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), Some(0));
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]), Some(12 + 8 + 3));
        assert_eq!(s.offset(&[0, 0, 0]), Some(0));
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0]), None);
        assert_eq!(s.offset(&[0, 3]), None);
    }

    #[test]
    fn matmul_compatibility() {
        assert!(Shape::new(&[2, 3]).matmul_compatible(&Shape::new(&[3, 5])));
        assert!(!Shape::new(&[2, 3]).matmul_compatible(&Shape::new(&[2, 5])));
        assert!(!Shape::new(&[2, 3, 1]).matmul_compatible(&Shape::new(&[3, 5])));
    }
}
