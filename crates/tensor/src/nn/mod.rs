//! Neural-network modules with hand-written forward and backward passes.
//!
//! Every module caches exactly what its backward pass needs during
//! [`Module::forward`], and [`Module::backward`] consumes that cache while
//! accumulating parameter gradients. Gradient correctness for each module is
//! validated against finite differences in the test suite (see
//! [`crate::grad_check`]).

mod activation;
mod attention;
mod dropout;
mod embedding;
mod feed_forward;
mod layer_norm;
mod linear;
mod loss;

pub use activation::{Activation, ActivationKind};
pub use attention::MultiHeadAttention;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use feed_forward::FeedForward;
pub use layer_norm::LayerNorm;
pub use linear::Linear;
pub use loss::SoftmaxCrossEntropy;

use crate::tensor::Tensor;

/// A learnable parameter: a value tensor and its accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Human-readable name used in diagnostics (`"linear.w"`, ...).
    pub name: String,
    /// The current parameter value.
    pub value: Tensor,
    /// The gradient accumulated since the last [`Param::zero_grad`].
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor as a parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            name: name.into(),
            value,
            grad,
        }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }

    /// Number of scalar elements in this parameter.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// A differentiable layer mapping a rank-2 activation to a rank-2 activation.
///
/// The contract between `forward` and `backward` is strict alternation:
/// each `backward` call consumes the cache left by the most recent `forward`.
/// Calling `backward` twice without an intervening `forward`, or with a
/// gradient whose shape differs from the last output, is a programming error
/// and panics.
pub trait Module {
    /// Runs the forward pass, caching whatever `backward` will need.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Runs the backward pass for the most recent `forward`.
    ///
    /// Accumulates parameter gradients and returns the gradient with respect
    /// to the input.
    ///
    /// # Panics
    ///
    /// Panics if no forward cache is available or `dy` has the wrong shape.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visits every learnable parameter (used by optimizers).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total number of learnable scalars.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Zeroes all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// A sequential container running its children in order.
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, builder style.
    pub fn push(mut self, layer: impl Module + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Sequential {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut cur = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn sequential_composes_forward_and_backward() {
        let mut rng = rng::seeded(3);
        let mut net = Sequential::new()
            .push(Linear::new(4, 8, &mut rng))
            .push(Activation::new(ActivationKind::Relu))
            .push(Linear::new(8, 2, &mut rng));
        assert_eq!(net.len(), 3);
        let x = rng::uniform(&[5, 4], 1.0, &mut rng);
        let y = net.forward(&x);
        assert_eq!(y.dims(), &[5, 2]);
        let dx = net.backward(&Tensor::ones(&[5, 2]));
        assert_eq!(dx.dims(), &[5, 4]);
        // 4*8 + 8 + 8*2 + 2 parameters.
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn zero_grad_clears_all_grads() {
        let mut rng = rng::seeded(4);
        let mut net = Sequential::new().push(Linear::new(3, 3, &mut rng));
        let x = rng::uniform(&[2, 3], 1.0, &mut rng);
        let y = net.forward(&x);
        net.backward(&y);
        let mut nonzero = 0;
        net.visit_params(&mut |p| nonzero += p.grad.data().iter().filter(|&&g| g != 0.0).count());
        assert!(nonzero > 0);
        net.zero_grad();
        net.visit_params(&mut |p| assert!(p.grad.data().iter().all(|&g| g == 0.0)));
    }
}
