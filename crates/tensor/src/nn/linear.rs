//! Fully connected (dense) layer.

use rand::rngs::SmallRng;

use crate::nn::{Module, Param};
use crate::rng;
use crate::tensor::Tensor;

/// A dense layer computing `y = x · W + b` over rank-2 inputs `[n, in]`.
pub struct Linear {
    w: Param,
    b: Param,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SmallRng) -> Self {
        Linear {
            w: Param::new("linear.w", rng::xavier(in_features, out_features, rng)),
            b: Param::new("linear.b", Tensor::zeros(&[out_features])),
            cache_x: None,
        }
    }

    /// Creates a layer from explicit weight `[in, out]` and bias `[out]`.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not rank-2 or the bias length differs from
    /// the weight's output dimension.
    pub fn from_parts(w: Tensor, b: Tensor) -> Self {
        assert_eq!(w.rank(), 2, "weight must be rank-2");
        assert_eq!(b.dims(), &[w.dims()[1]], "bias must match output features");
        Linear {
            w: Param::new("linear.w", w),
            b: Param::new("linear.b", b),
            cache_x: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.w.value.dims()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.w.value.dims()[1]
    }

    /// Read-only access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.w
    }

    /// Read-only access to the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.b
    }
}

impl Module for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = x
            .matmul(&self.w.value)
            .and_then(|xw| xw.add_row_broadcast(&self.b.value))
            .expect("linear forward: input shape must be [n, in_features]");
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("linear backward called without a cached forward");
        // dW += x^T · dy, db += sum over rows of dy, dx = dy · W^T.
        let dw = x.t_matmul(dy).expect("linear backward: dy shape mismatch");
        self.w.grad.add_assign(&dw).expect("dw shape matches W");
        let db = dy.sum_rows().expect("dy must be rank-2");
        self.b.grad.add_assign(&db).expect("db shape matches b");
        dy.matmul_t(&self.w.value).expect("dx = dy · W^T")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_module_gradients;
    use crate::rng;

    #[test]
    fn forward_matches_manual_computation() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let mut lin = Linear::from_parts(w, b);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = lin.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = rng::seeded(11);
        let mut lin = Linear::new(3, 4, &mut rng);
        let x = rng::uniform(&[5, 3], 1.0, &mut rng);
        check_module_gradients(&mut lin, &x, 2e-2);
    }

    #[test]
    #[should_panic(expected = "without a cached forward")]
    fn backward_without_forward_panics() {
        let mut rng = rng::seeded(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.backward(&Tensor::ones(&[1, 2]));
    }

    #[test]
    fn repeated_backward_accumulates_grads() {
        let mut rng = rng::seeded(2);
        let mut lin = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        lin.forward(&x);
        lin.backward(&Tensor::ones(&[1, 2]));
        let g1 = lin.weight().grad.clone();
        lin.forward(&x);
        lin.backward(&Tensor::ones(&[1, 2]));
        let g2 = lin.weight().grad.clone();
        assert!(g2.max_abs_diff(&g1.scale(2.0)).unwrap() < 1e-6);
    }
}
