//! Layer normalization over the last dimension.

use crate::nn::{Module, Param};
use crate::tensor::Tensor;

/// Layer normalization: per-row standardize, then scale and shift.
///
/// Given a rank-2 input `[n, d]`, every row is normalized to zero mean and
/// unit variance (with an `eps` stabilizer) and transformed by learnable
/// `gamma` and `beta` vectors of length `d`.
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    cache: Option<Cache>,
}

struct Cache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer norm over feature dimension `d` with `eps = 1e-5`.
    pub fn new(d: usize) -> Self {
        LayerNorm {
            gamma: Param::new("ln.gamma", Tensor::ones(&[d])),
            beta: Param::new("ln.beta", Tensor::zeros(&[d])),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.value.dims()[0]
    }
}

impl Module for LayerNorm {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "layer norm expects a rank-2 input");
        let (n, d) = (x.dims()[0], x.dims()[1]);
        assert_eq!(d, self.dim(), "layer norm feature dimension mismatch");
        let mut out = vec![0.0f32; n * d];
        let mut x_hat = vec![0.0f32; n * d];
        let mut inv_std = vec![0.0f32; n];
        for i in 0..n {
            let row = x.row(i);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std[i] = is;
            for j in 0..d {
                let xh = (row[j] - mean) * is;
                x_hat[i * d + j] = xh;
                out[i * d + j] = xh * self.gamma.value.data()[j] + self.beta.value.data()[j];
            }
        }
        self.cache = Some(Cache {
            x_hat: Tensor::from_vec(x_hat, &[n, d]).expect("shape preserved"),
            inv_std,
        });
        Tensor::from_vec(out, &[n, d]).expect("shape preserved")
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("layer norm backward called without a cached forward");
        let (n, d) = (dy.dims()[0], dy.dims()[1]);
        assert_eq!(cache.x_hat.dims(), dy.dims(), "gradient shape mismatch");
        let gamma = self.gamma.value.data();
        let mut dx = vec![0.0f32; n * d];
        for i in 0..n {
            let dyr = dy.row(i);
            let xhr = cache.x_hat.row(i);
            // dL/dx_hat_j = dy_j * gamma_j; standard layer-norm backward:
            // dx = inv_std/d * (d*dxhat - sum(dxhat) - x_hat * sum(dxhat*x_hat)).
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for j in 0..d {
                let dxh = dyr[j] * gamma[j];
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xhr[j];
            }
            let scale = cache.inv_std[i] / d as f32;
            for j in 0..d {
                let dxh = dyr[j] * gamma[j];
                dx[i * d + j] = scale * (d as f32 * dxh - sum_dxhat - xhr[j] * sum_dxhat_xhat);
            }
            // Parameter gradients.
            for j in 0..d {
                self.gamma.grad.data_mut()[j] += dyr[j] * xhr[j];
                self.beta.grad.data_mut()[j] += dyr[j];
            }
        }
        Tensor::from_vec(dx, &[n, d]).expect("shape preserved")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_module_gradients;
    use crate::rng;

    #[test]
    fn forward_standardizes_rows() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let y = ln.forward(&x);
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = rng::seeded(6);
        let mut ln = LayerNorm::new(5);
        // Move gamma/beta off their init so their gradients are generic.
        ln.visit_params(&mut |p| {
            for (i, v) in p.value.data_mut().iter_mut().enumerate() {
                *v += 0.1 * ((i as f32).sin());
            }
        });
        let x = rng::uniform(&[3, 5], 2.0, &mut rng);
        check_module_gradients(&mut ln, &x, 3e-2);
    }
}
