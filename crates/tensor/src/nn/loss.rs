//! Softmax cross-entropy loss for token classification / language modelling.

use crate::tensor::Tensor;

/// Fused softmax + cross-entropy over `[n, vocab]` logits.
///
/// `forward` returns the mean negative log-likelihood of the target ids;
/// `backward` returns the gradient with respect to the logits
/// (`(softmax - onehot) / n`).
pub struct SoftmaxCrossEntropy {
    cache: Option<(Tensor, Vec<usize>)>,
}

impl SoftmaxCrossEntropy {
    /// Creates the loss node.
    pub fn new() -> Self {
        SoftmaxCrossEntropy { cache: None }
    }

    /// Computes the mean cross-entropy of `logits` against `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not rank-2, `targets.len()` differs from the
    /// number of rows, or any target id is out of range.
    pub fn forward(&mut self, logits: &Tensor, targets: &[usize]) -> f32 {
        assert_eq!(logits.rank(), 2, "logits must be [n, vocab]");
        let (n, vocab) = (logits.dims()[0], logits.dims()[1]);
        assert_eq!(targets.len(), n, "one target per logit row required");
        let probs = logits.softmax_rows().expect("rank-2 logits");
        let mut loss = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < vocab, "target id {t} out of vocab {vocab}");
            // Clamp to avoid -inf on a fully confident wrong prediction.
            loss -= probs.row(i)[t].max(1e-12).ln();
        }
        self.cache = Some((probs, targets.to_vec()));
        loss / n as f32
    }

    /// Returns `d(loss)/d(logits)` for the most recent forward.
    ///
    /// # Panics
    ///
    /// Panics if called without a cached forward.
    pub fn backward(&mut self) -> Tensor {
        let (probs, targets) = self
            .cache
            .take()
            .expect("loss backward called without a cached forward");
        let n = targets.len();
        let mut grad = probs;
        for (i, &t) in targets.iter().enumerate() {
            grad.row_mut(i)[t] -= 1.0;
        }
        grad.scale_in_place(1.0 / n as f32);
        grad
    }

    /// Perplexity corresponding to a mean cross-entropy value.
    pub fn perplexity(mean_ce: f32) -> f32 {
        mean_ce.exp()
    }
}

impl Default for SoftmaxCrossEntropy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn uniform_logits_give_log_vocab_loss() {
        let mut loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[4, 10]);
        let l = loss.forward(&logits, &[0, 1, 2, 3]);
        assert!((l - (10.0f32).ln()).abs() < 1e-5);
        assert!((SoftmaxCrossEntropy::perplexity(l) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn perfect_prediction_gives_near_zero_loss() {
        let mut loss = SoftmaxCrossEntropy::new();
        let mut logits = Tensor::zeros(&[2, 3]);
        logits.row_mut(0)[1] = 50.0;
        logits.row_mut(1)[2] = 50.0;
        let l = loss.forward(&logits, &[1, 2]);
        assert!(l < 1e-4, "loss {l}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = rng::seeded(31);
        let logits = rng::uniform(&[3, 5], 1.0, &mut rng);
        let targets = [1usize, 0, 4];
        let mut loss = SoftmaxCrossEntropy::new();
        loss.forward(&logits, &targets);
        let analytic = loss.backward();
        let eps = 1e-2;
        for i in 0..3 {
            for j in 0..5 {
                let mut lp = logits.clone();
                lp.row_mut(i)[j] += eps;
                let mut lm = logits.clone();
                lm.row_mut(i)[j] -= eps;
                let mut l = SoftmaxCrossEntropy::new();
                let fp = l.forward(&lp, &targets);
                let fm = l.forward(&lm, &targets);
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (analytic.row(i)[j] - fd).abs() < 1e-3,
                    "({i},{j}): analytic {} vs fd {}",
                    analytic.row(i)[j],
                    fd
                );
            }
        }
    }
}
