//! Token embedding lookup table.

use rand::rngs::SmallRng;

use crate::nn::Param;
use crate::rng;
use crate::tensor::Tensor;

/// A learnable `[vocab, dim]` embedding table with sparse-gradient backward.
///
/// `Embedding` does not implement [`crate::nn::Module`] because its input is
/// a token-id slice rather than a tensor; models call
/// [`Embedding::forward`] / [`Embedding::backward`] directly.
pub struct Embedding {
    table: Param,
    cache_tokens: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates a table of `vocab` embeddings of size `dim`, normal-initialized.
    pub fn new(vocab: usize, dim: usize, rng: &mut SmallRng) -> Self {
        Embedding {
            table: Param::new(
                "embedding.table",
                rng::normal(&[vocab, dim], 0.0, 0.02, rng),
            ),
            cache_tokens: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.dims()[0]
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value.dims()[1]
    }

    /// Looks up `tokens`, producing a `[tokens.len(), dim]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of the vocabulary.
    pub fn forward(&mut self, tokens: &[usize]) -> Tensor {
        let dim = self.dim();
        let vocab = self.vocab();
        let mut out = vec![0.0f32; tokens.len() * dim];
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < vocab, "token id {t} out of vocabulary {vocab}");
            out[i * dim..(i + 1) * dim].copy_from_slice(self.table.value.row(t));
        }
        self.cache_tokens = Some(tokens.to_vec());
        Tensor::from_vec(out, &[tokens.len(), dim]).expect("shape preserved")
    }

    /// Accumulates gradients for the most recent lookup.
    ///
    /// # Panics
    ///
    /// Panics if called without a cached forward or with a mismatched shape.
    pub fn backward(&mut self, dy: &Tensor) {
        let tokens = self
            .cache_tokens
            .take()
            .expect("embedding backward called without a cached forward");
        let dim = self.dim();
        assert_eq!(dy.dims(), &[tokens.len(), dim], "gradient shape mismatch");
        for (i, &t) in tokens.iter().enumerate() {
            let grow = self.table.grad.row_mut(t);
            for (g, &d) in grow.iter_mut().zip(dy.row(i).iter()) {
                *g += d;
            }
        }
    }

    /// Visits the embedding table parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }

    /// Read-only access to the table parameter.
    pub fn table(&self) -> &Param {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_copies_rows() {
        let mut rng = rng::seeded(9);
        let mut emb = Embedding::new(10, 4, &mut rng);
        let out = emb.forward(&[3, 3, 7]);
        assert_eq!(out.dims(), &[3, 4]);
        assert_eq!(out.row(0), emb.table().value.row(3));
        assert_eq!(out.row(0), out.row(1));
        assert_eq!(out.row(2), emb.table().value.row(7));
    }

    #[test]
    fn backward_accumulates_per_token() {
        let mut rng = rng::seeded(9);
        let mut emb = Embedding::new(5, 2, &mut rng);
        emb.forward(&[1, 1, 4]);
        let dy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        emb.backward(&dy);
        // Token 1 appears twice: grads sum.
        assert_eq!(emb.table().grad.row(1), &[4.0, 6.0]);
        assert_eq!(emb.table().grad.row(4), &[5.0, 6.0]);
        assert_eq!(emb.table().grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_token_panics() {
        let mut rng = rng::seeded(9);
        let mut emb = Embedding::new(5, 2, &mut rng);
        emb.forward(&[5]);
    }
}
