//! Two-layer feed-forward network — the "fflayer" / expert of the paper.

use rand::rngs::SmallRng;

use crate::nn::{Activation, ActivationKind, Linear, Module, Param};
use crate::tensor::Tensor;

/// A position-wise feed-forward block: `Linear(M→H) → act → Linear(H→M)`.
///
/// This is exactly the *expert* network of an MoE layer (paper §2.1): every
/// expert is an independent `FeedForward` with its own parameters.
pub struct FeedForward {
    lin1: Linear,
    act: Activation,
    lin2: Linear,
}

impl FeedForward {
    /// Creates a feed-forward block with model dim `m` and hidden dim `h`.
    pub fn new(m: usize, h: usize, kind: ActivationKind, rng: &mut SmallRng) -> Self {
        FeedForward {
            lin1: Linear::new(m, h, rng),
            act: Activation::new(kind),
            lin2: Linear::new(h, m, rng),
        }
    }

    /// Model (embedding) dimension `M`.
    pub fn model_dim(&self) -> usize {
        self.lin1.in_features()
    }

    /// Hidden dimension `H`.
    pub fn hidden_dim(&self) -> usize {
        self.lin1.out_features()
    }

    /// Approximate forward FLOPs for `n` input tokens (two GEMMs).
    pub fn forward_flops(&self, n: usize) -> u64 {
        let (m, h) = (self.model_dim() as u64, self.hidden_dim() as u64);
        2 * n as u64 * m * h * 2
    }
}

impl Module for FeedForward {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.lin1.forward(x);
        let a = self.act.forward(&h);
        self.lin2.forward(&a)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let da = self.lin2.backward(dy);
        let dh = self.act.backward(&da);
        self.lin1.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_module_gradients;
    use crate::rng;

    #[test]
    fn shapes_round_trip() {
        let mut rng = rng::seeded(12);
        let mut ff = FeedForward::new(8, 16, ActivationKind::Gelu, &mut rng);
        let x = rng::uniform(&[3, 8], 1.0, &mut rng);
        let y = ff.forward(&x);
        assert_eq!(y.dims(), &[3, 8]);
        let dx = ff.backward(&y);
        assert_eq!(dx.dims(), &[3, 8]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = rng::seeded(13);
        let mut ff = FeedForward::new(4, 6, ActivationKind::Gelu, &mut rng);
        let x = rng::uniform(&[2, 4], 1.0, &mut rng);
        check_module_gradients(&mut ff, &x, 3e-2);
    }

    #[test]
    fn param_count_is_two_gemms_plus_biases() {
        let mut rng = rng::seeded(14);
        let mut ff = FeedForward::new(8, 32, ActivationKind::Relu, &mut rng);
        assert_eq!(ff.num_params(), 8 * 32 + 32 + 32 * 8 + 8);
    }

    #[test]
    fn flops_scale_with_tokens() {
        let mut rng = rng::seeded(15);
        let ff = FeedForward::new(16, 64, ActivationKind::Relu, &mut rng);
        assert_eq!(ff.forward_flops(10), 2 * ff.forward_flops(5));
    }
}
