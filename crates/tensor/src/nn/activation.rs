//! Elementwise activation layers (ReLU, GELU).

use crate::nn::{Module, Param};
use crate::ops::{gelu, gelu_grad, relu, relu_grad};
use crate::tensor::Tensor;

/// Which activation function an [`Activation`] layer applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivationKind {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
}

/// A parameter-free elementwise activation layer.
pub struct Activation {
    kind: ActivationKind,
    cache_x: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation {
            kind,
            cache_x: None,
        }
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Module for Activation {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = match self.kind {
            ActivationKind::Relu => x.map(relu),
            ActivationKind::Gelu => x.map(gelu),
        };
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("activation backward called without a cached forward");
        assert_eq!(
            dy.dims(),
            x.dims(),
            "activation backward: gradient shape must match input"
        );
        let grad_fn = match self.kind {
            ActivationKind::Relu => relu_grad,
            ActivationKind::Gelu => gelu_grad,
        };
        let data = x
            .data()
            .iter()
            .zip(dy.data().iter())
            .map(|(&xv, &dv)| grad_fn(xv) * dv)
            .collect();
        Tensor::from_vec(data, x.dims()).expect("shape preserved")
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_module_gradients;
    use crate::rng;

    #[test]
    fn relu_zeroes_negatives() {
        let mut act = Activation::new(ActivationKind::Relu);
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]).unwrap();
        let y = act.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn gelu_gradients_match_finite_differences() {
        let mut rng = rng::seeded(5);
        let mut act = Activation::new(ActivationKind::Gelu);
        let x = rng::uniform(&[4, 6], 2.0, &mut rng);
        check_module_gradients(&mut act, &x, 2e-2);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut act = Activation::new(ActivationKind::Relu);
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[1, 2]).unwrap();
        act.forward(&x);
        let dx = act.backward(&Tensor::from_vec(vec![5.0, 5.0], &[1, 2]).unwrap());
        assert_eq!(dx.data(), &[0.0, 5.0]);
    }
}
