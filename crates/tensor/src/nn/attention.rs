//! Causal multi-head self-attention.

use rand::rngs::SmallRng;

use crate::nn::{Linear, Module, Param};
use crate::tensor::Tensor;

/// Causal multi-head self-attention over packed `[B*T, M]` inputs.
///
/// The layer is constructed with a fixed sequence length `T`; the forward
/// input must hold an integral number of sequences of that length, packed
/// row-major. Every head attends within its own sequence with a causal mask.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    seq_len: usize,
    cache: Option<Cache>,
}

struct Cache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax attention probabilities, one `[T, T]` tensor per (batch, head).
    probs: Vec<Tensor>,
    batch: usize,
}

impl MultiHeadAttention {
    /// Creates an attention layer.
    ///
    /// # Panics
    ///
    /// Panics if `model_dim` is not divisible by `heads`.
    pub fn new(model_dim: usize, heads: usize, seq_len: usize, rng: &mut SmallRng) -> Self {
        assert!(
            model_dim.is_multiple_of(heads),
            "model_dim {model_dim} must be divisible by heads {heads}"
        );
        MultiHeadAttention {
            wq: Linear::new(model_dim, model_dim, rng),
            wk: Linear::new(model_dim, model_dim, rng),
            wv: Linear::new(model_dim, model_dim, rng),
            wo: Linear::new(model_dim, model_dim, rng),
            heads,
            seq_len,
            cache: None,
        }
    }

    /// Model dimension `M`.
    pub fn model_dim(&self) -> usize {
        self.wq.in_features()
    }

    /// Per-head dimension `M / heads`.
    pub fn head_dim(&self) -> usize {
        self.model_dim() / self.heads
    }

    /// Extracts the `[T, head_dim]` block for `(batch b, head h)` from a
    /// packed `[B*T, M]` tensor.
    fn slice_head(&self, t: &Tensor, b: usize, h: usize) -> Tensor {
        let (tl, dh) = (self.seq_len, self.head_dim());
        let mut out = vec![0.0f32; tl * dh];
        for i in 0..tl {
            let row = t.row(b * tl + i);
            out[i * dh..(i + 1) * dh].copy_from_slice(&row[h * dh..(h + 1) * dh]);
        }
        Tensor::from_vec(out, &[tl, dh]).expect("shape preserved")
    }

    /// Adds a `[T, head_dim]` block into the `(b, h)` position of a packed
    /// `[B*T, M]` tensor.
    fn scatter_head(&self, dst: &mut Tensor, src: &Tensor, b: usize, h: usize) {
        let (tl, dh) = (self.seq_len, self.head_dim());
        for i in 0..tl {
            let srow = src.row(i);
            let drow = dst.row_mut(b * tl + i);
            for j in 0..dh {
                drow[h * dh + j] += srow[j];
            }
        }
    }
}

impl Module for MultiHeadAttention {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let m = self.model_dim();
        assert_eq!(x.dims()[1], m, "attention input feature dim mismatch");
        let rows = x.dims()[0];
        assert!(
            rows.is_multiple_of(self.seq_len),
            "input rows {rows} must be a multiple of seq_len {}",
            self.seq_len
        );
        let batch = rows / self.seq_len;
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scale = 1.0 / (self.head_dim() as f32).sqrt();
        let mut concat = Tensor::zeros(&[rows, m]);
        let mut probs = Vec::with_capacity(batch * self.heads);
        for b in 0..batch {
            for h in 0..self.heads {
                let qh = self.slice_head(&q, b, h);
                let kh = self.slice_head(&k, b, h);
                let vh = self.slice_head(&v, b, h);
                let mut scores = qh.matmul_t(&kh).expect("q·k^T").scale(scale);
                // Causal mask: position i may only attend to j <= i.
                let t = self.seq_len;
                for i in 0..t {
                    for j in (i + 1)..t {
                        scores.row_mut(i)[j] = f32::NEG_INFINITY;
                    }
                }
                let p = scores.softmax_rows().expect("rank-2 scores");
                let oh = p.matmul(&vh).expect("p·v");
                self.scatter_head(&mut concat, &oh, b, h);
                probs.push(p);
            }
        }
        let out = self.wo.forward(&concat);
        self.cache = Some(Cache {
            q,
            k,
            v,
            probs,
            batch,
        });
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("attention backward called without a cached forward");
        let m = self.model_dim();
        let rows = dy.dims()[0];
        let scale = 1.0 / (self.head_dim() as f32).sqrt();
        let dconcat = self.wo.backward(dy);
        let mut dq = Tensor::zeros(&[rows, m]);
        let mut dk = Tensor::zeros(&[rows, m]);
        let mut dv = Tensor::zeros(&[rows, m]);
        for b in 0..cache.batch {
            for h in 0..self.heads {
                let p = &cache.probs[b * self.heads + h];
                let doh = self.slice_head(&dconcat, b, h);
                let qh = self.slice_head(&cache.q, b, h);
                let kh = self.slice_head(&cache.k, b, h);
                let vh = self.slice_head(&cache.v, b, h);
                // dV = P^T · dO ; dP = dO · V^T.
                let dvh = p.t_matmul(&doh).expect("p^T·do");
                let dp = doh.matmul_t(&vh).expect("do·v^T");
                // Softmax backward per row: dS = P ⊙ (dP - rowsum(dP ⊙ P)).
                let t = self.seq_len;
                let mut ds = Tensor::zeros(&[t, t]);
                for i in 0..t {
                    let prow = p.row(i);
                    let dprow = dp.row(i);
                    let dot: f32 = prow.iter().zip(dprow.iter()).map(|(a, b)| a * b).sum();
                    let dsrow = ds.row_mut(i);
                    for j in 0..t {
                        dsrow[j] = prow[j] * (dprow[j] - dot);
                    }
                }
                // dQ = dS · K * scale ; dK = dS^T · Q * scale.
                let dqh = ds.matmul(&kh).expect("ds·k").scale(scale);
                let dkh = ds.t_matmul(&qh).expect("ds^T·q").scale(scale);
                self.scatter_head(&mut dq, &dqh, b, h);
                self.scatter_head(&mut dk, &dkh, b, h);
                self.scatter_head(&mut dv, &dvh, b, h);
            }
        }
        let dx_q = self.wq.backward(&dq);
        let dx_k = self.wk.backward(&dk);
        let dx_v = self.wv.backward(&dv);
        let mut dx = dx_q;
        dx.add_assign(&dx_k).expect("same shape");
        dx.add_assign(&dx_v).expect("same shape");
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_module_gradients;
    use crate::rng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = rng::seeded(21);
        let mut attn = MultiHeadAttention::new(8, 2, 4, &mut rng);
        let x = rng::uniform(&[8, 8], 1.0, &mut rng); // 2 sequences of length 4.
        let y = attn.forward(&x);
        assert_eq!(y.dims(), &[8, 8]);
    }

    #[test]
    fn causal_mask_blocks_future_tokens() {
        let mut rng = rng::seeded(22);
        let mut attn = MultiHeadAttention::new(4, 1, 3, &mut rng);
        // Changing the last token must not change the first token's output.
        let mut x = rng::uniform(&[3, 4], 1.0, &mut rng);
        let y1 = attn.forward(&x);
        for v in x.row_mut(2) {
            *v += 5.0;
        }
        let y2 = attn.forward(&x);
        for j in 0..4 {
            assert!(
                (y1.row(0)[j] - y2.row(0)[j]).abs() < 1e-6,
                "future token leaked into position 0"
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = rng::seeded(23);
        let mut attn = MultiHeadAttention::new(4, 2, 3, &mut rng);
        let x = rng::uniform(&[3, 4], 0.5, &mut rng);
        check_module_gradients(&mut attn, &x, 5e-2);
    }

    #[test]
    #[should_panic(expected = "multiple of seq_len")]
    fn partial_sequence_is_rejected() {
        let mut rng = rng::seeded(24);
        let mut attn = MultiHeadAttention::new(4, 1, 4, &mut rng);
        attn.forward(&Tensor::zeros(&[6, 4]));
    }
}
