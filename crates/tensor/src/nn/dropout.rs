//! Inverted dropout.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::nn::{Module, Param};
use crate::tensor::Tensor;

/// Inverted dropout: zeroes each activation with probability `p` during
/// training and rescales survivors by `1/(1-p)`, so evaluation needs no
/// correction.
///
/// The layer owns its mask RNG (seeded, reproducible) and a train/eval
/// switch; in eval mode it is the identity.
pub struct Dropout {
    p: f32,
    training: bool,
    rng: SmallRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, rng: SmallRng) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} outside [0, 1)"
        );
        Dropout {
            p,
            training: true,
            rng,
            mask: None,
        }
    }

    /// Switches between training (masking) and evaluation (identity).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the layer is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Module for Dropout {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..x.numel())
            .map(|_| {
                if self.rng.gen_range(0.0f32..1.0) < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::from_vec(mask_data, x.dims()).expect("shape preserved");
        let y = x.mul(&mask).expect("same shape");
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self.mask.take() {
            Some(mask) => dy.mul(&mask).expect("same shape"),
            // Eval mode (or p = 0): identity.
            None => dy.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{self, seeded};

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, seeded(1));
        d.set_training(false);
        let x = rng::uniform(&[4, 4], 1.0, &mut seeded(2));
        let y = d.forward(&x);
        assert_eq!(y.data(), x.data());
        let dx = d.backward(&x);
        assert_eq!(dx.data(), x.data());
    }

    #[test]
    fn training_zeroes_about_p_and_rescales() {
        let mut d = Dropout::new(0.25, seeded(3));
        let x = Tensor::ones(&[100, 100]);
        let y = d.forward(&x);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let rate = zeros as f32 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate}");
        // Survivors carry the 1/(1-p) scale, preserving the expectation.
        let survivor = y.data().iter().find(|&&v| v != 0.0).unwrap();
        assert!((survivor - 1.0 / 0.75).abs() < 1e-6);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.03, "expectation drifted: {mean}");
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, seeded(4));
        let x = Tensor::ones(&[8, 8]);
        let y = d.forward(&x);
        let dx = d.backward(&Tensor::ones(&[8, 8]));
        // Gradient flows exactly where the forward survived.
        for (yi, di) in y.data().iter().zip(dx.data().iter()) {
            assert_eq!(*yi == 0.0, *di == 0.0);
        }
    }

    #[test]
    fn zero_probability_never_drops() {
        let mut d = Dropout::new(0.0, seeded(5));
        let x = rng::uniform(&[5, 5], 1.0, &mut seeded(6));
        assert_eq!(d.forward(&x).data(), x.data());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn p_of_one_is_rejected() {
        Dropout::new(1.0, seeded(7));
    }
}
