//! Eager tensor operations: matmul, elementwise math, reductions, softmax.
//!
//! Shape-checked entry points return [`Result`]; the hot inner loops are
//! plain slice arithmetic so the compiler can vectorize them.

use crate::tensor::{Tensor, TensorError};

impl Tensor {
    /// Matrix-multiplies two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Uses an i-k-j loop order with a transposed accumulation pattern that
    /// keeps the innermost loop contiguous in both operands.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    rhs.rank()
                },
            });
        }
        if !self.shape().matmul_compatible(rhs.shape()) {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape().clone(),
                rhs: rhs.shape().clone(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let n = rhs.dims()[1];
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = rhs.data();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix-multiplies `self` by the transpose of `rhs`:
    /// `[m, k] x [n, k]^T -> [m, n]`.
    pub fn matmul_t(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul_t",
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    rhs.rank()
                },
            });
        }
        if self.dims()[1] != rhs.dims()[1] {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_t",
                lhs: self.shape().clone(),
                rhs: rhs.shape().clone(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let n = rhs.dims()[0];
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = rhs.data();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow.iter()) {
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Multiplies the transpose of `self` by `rhs`:
    /// `[k, m]^T x [k, n] -> [m, n]`.
    ///
    /// This is the shape needed for weight gradients (`x^T · dy`).
    pub fn t_matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "t_matmul",
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    rhs.rank()
                },
            });
        }
        if self.dims()[0] != rhs.dims()[0] {
            return Err(TensorError::ShapeMismatch {
                op: "t_matmul",
                lhs: self.shape().clone(),
                rhs: rhs.shape().clone(),
            });
        }
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let n = rhs.dims()[1];
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = rhs.data();
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Returns the transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Elementwise addition; shapes must match exactly.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise subtraction; shapes must match exactly.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product; shapes must match exactly.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// In-place elementwise addition; shapes must match exactly.
    pub fn add_assign(&mut self, rhs: &Tensor) -> Result<(), TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape().clone(),
                rhs: rhs.shape().clone(),
            });
        }
        for (a, b) in self.data_mut().iter_mut().zip(rhs.data().iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Returns a copy scaled by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Scales every element in place by `s`.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in self.data_mut() {
            *v *= s;
        }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data().iter().map(|&v| f(v)).collect();
        Tensor::from_vec(data, self.dims()).expect("map preserves element count")
    }

    /// Adds a rank-1 bias `[n]` to every row of a rank-2 tensor `[m, n]`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || bias.rank() != 1 || self.dims()[1] != bias.dims()[0] {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape().clone(),
                rhs: bias.shape().clone(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = self.data().to_vec();
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] += bias.data()[j];
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Sums all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Arithmetic mean of all elements; returns 0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Sums a rank-2 tensor over its rows, producing a rank-1 `[n]` tensor.
    ///
    /// This is the bias-gradient reduction (`sum over the batch dimension`).
    pub fn sum_rows(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "sum_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for j in 0..n {
                out[j] += self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n])
    }

    /// Row-wise softmax over the last dimension of a rank-2 tensor.
    ///
    /// Numerically stabilized by subtracting the per-row maximum.
    pub fn softmax_rows(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "softmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = self.row(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - max).exp();
                out[i * n + j] = e;
                denom += e;
            }
            for j in 0..n {
                out[i * n + j] /= denom;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Returns the per-row index of the maximum element of a rank-2 tensor.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "argmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let m = self.dims()[0];
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = self.row(i);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Returns the Frobenius norm (L2 norm of the flattened data).
    pub fn norm(&self) -> f32 {
        self.data().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape().clone(),
                rhs: rhs.shape().clone(),
            });
        }
        let data = self
            .data()
            .iter()
            .zip(rhs.data().iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.dims())
    }
}

/// GELU activation (tanh approximation), elementwise.
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] with respect to its input.
pub fn gelu_grad(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = SQRT_2_OVER_PI * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// ReLU activation, elementwise.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of [`relu`]; uses the subgradient 0 at the kink.
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[r, c]).unwrap()
    }

    #[test]
    fn matmul_small_known_result() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = t2(&[5.0, 6.0, 7.0, 8.0], 2, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t2(&[1.0; 6], 2, 3);
        let b = t2(&[1.0; 4], 2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let v = Tensor::arange(3);
        assert!(matches!(
            v.matmul(&b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = t2(
            &[1.0, 0.0, 2.0, -1.0, 0.5, 3.0, 1.0, 1.0, 2.0, 0.0, -2.0, 4.0],
            4,
            3,
        );
        let direct = a.matmul_t(&b).unwrap();
        let via_transpose = a.matmul(&b.transpose().unwrap()).unwrap();
        assert!(direct.max_abs_diff(&via_transpose).unwrap() < 1e-6);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let b = t2(&[1.0, -1.0, 0.5, 2.0, 3.0, 0.0], 3, 2);
        let direct = a.t_matmul(&b).unwrap();
        let via_transpose = a.transpose().unwrap().matmul(&b).unwrap();
        assert!(direct.max_abs_diff(&via_transpose).unwrap() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t2(&[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], 2, 3);
        let s = a.softmax_rows().unwrap();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
        // A huge constant row must not overflow and stays uniform.
        for &v in s.row(1) {
            assert!((v - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn sum_rows_reduces_batch_dimension() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let s = a.sum_rows().unwrap();
        assert_eq!(s.data(), &[4.0, 6.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_per_row() {
        let a = t2(&[0.0, 0.0, 1.0, 1.0], 2, 2);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let c = a.add_row_broadcast(&b).unwrap();
        assert_eq!(c.data(), &[10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let a = t2(&[0.1, 0.9, 0.0, 5.0, -5.0, 2.0], 2, 3);
        assert_eq!(a.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn gelu_matches_reference_points() {
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let eps = 1e-3;
            let fd = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={x}: analytic {} vs fd {}",
                gelu_grad(x),
                fd
            );
        }
    }

    #[test]
    fn elementwise_ops_check_shapes() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[4]);
        assert!(a.add(&b).is_err());
        assert!(a
            .mul(&Tensor::full(&[2, 2], 3.0))
            .unwrap()
            .data()
            .iter()
            .all(|&v| v == 3.0));
        assert_eq!(a.sub(&a).unwrap().sum(), 0.0);
    }
}
