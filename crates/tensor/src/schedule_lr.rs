//! Learning-rate schedules.
//!
//! Pretraining runs (the paper trains 434k–500k iterations for Table 6)
//! pair Adam with warmup + decay; this module provides the standard
//! schedules as pure functions of the step, to be fed into
//! [`crate::optim::Adam::set_lr`] each iteration.

/// A learning-rate schedule: maps a 0-based step to a multiplier of the
/// base rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant multiplier 1.
    Constant,
    /// Linear warmup over `warmup` steps, then cosine decay to
    /// `min_frac` at `total` steps (and `min_frac` after).
    WarmupCosine {
        /// Warmup steps.
        warmup: usize,
        /// Total schedule length.
        total: usize,
        /// Final multiplier.
        min_frac: f32,
    },
    /// Inverse-square-root decay after `warmup` linear-warmup steps (the
    /// original Transformer schedule).
    InverseSqrt {
        /// Warmup steps.
        warmup: usize,
    },
    /// Multiply by `factor` every `every` steps.
    StepDecay {
        /// Steps between decays.
        every: usize,
        /// Per-decay multiplier.
        factor: f32,
    },
}

impl LrSchedule {
    /// The multiplier at `step` (0-based).
    pub fn multiplier(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::WarmupCosine {
                warmup,
                total,
                min_frac,
            } => {
                if warmup > 0 && step < warmup {
                    (step + 1) as f32 / warmup as f32
                } else if step >= total {
                    min_frac
                } else {
                    let span = (total - warmup).max(1) as f32;
                    let progress = (step - warmup) as f32 / span;
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                    min_frac + (1.0 - min_frac) * cos
                }
            }
            LrSchedule::InverseSqrt { warmup } => {
                let w = warmup.max(1) as f32;
                if step < warmup {
                    (step + 1) as f32 / w
                } else {
                    (w / (step + 1) as f32).sqrt()
                }
            }
            LrSchedule::StepDecay { every, factor } => factor.powi((step / every.max(1)) as i32),
        }
    }

    /// The absolute learning rate at `step` for a base rate.
    pub fn lr_at(&self, step: usize, base: f32) -> f32 {
        base * self.multiplier(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        for step in [0, 10, 10_000] {
            assert_eq!(LrSchedule::Constant.multiplier(step), 1.0);
        }
    }

    #[test]
    fn warmup_cosine_ramps_peaks_and_decays() {
        let s = LrSchedule::WarmupCosine {
            warmup: 100,
            total: 1000,
            min_frac: 0.1,
        };
        assert!(s.multiplier(0) < 0.02);
        assert!((s.multiplier(99) - 1.0).abs() < 1e-6);
        // Midpoint of the cosine span sits halfway between 1 and min.
        let mid = s.multiplier(100 + 450);
        assert!((mid - 0.55).abs() < 0.01, "mid {mid}");
        assert!((s.multiplier(1000) - 0.1).abs() < 1e-6);
        assert!((s.multiplier(5000) - 0.1).abs() < 1e-6);
        // Monotone decay after warmup.
        for w in (100..999).collect::<Vec<_>>().windows(2) {
            assert!(s.multiplier(w[0]) >= s.multiplier(w[1]) - 1e-6);
        }
    }

    #[test]
    fn inverse_sqrt_matches_the_transformer_formula() {
        let s = LrSchedule::InverseSqrt { warmup: 4000 };
        assert!((s.multiplier(3999) - 1.0).abs() < 1e-6);
        assert!((s.multiplier(15999) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn step_decay_steps_down() {
        let s = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.multiplier(9), 1.0);
        assert_eq!(s.multiplier(10), 0.5);
        assert_eq!(s.multiplier(29), 0.25);
    }

    #[test]
    fn lr_at_scales_the_base() {
        let s = LrSchedule::StepDecay {
            every: 5,
            factor: 0.1,
        };
        assert!((s.lr_at(5, 3e-4) - 3e-5).abs() < 1e-9);
    }
}
