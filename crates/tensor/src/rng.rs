//! Seeded random-number utilities used across the workspace.
//!
//! All stochastic behaviour in ScheMoE-RS (weight init, synthetic data,
//! token routing noise) flows through [`SmallRng`] seeded explicitly, so
//! every experiment is reproducible from its seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Fills a new tensor with samples from `U(-scale, scale)`.
pub fn uniform(dims: &[usize], scale: f32, rng: &mut SmallRng) -> Tensor {
    let n: usize = dims.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-scale..=scale)).collect();
    Tensor::from_vec(data, dims).expect("generated buffer matches shape")
}

/// Fills a new tensor with approximately standard-normal samples.
///
/// Uses the sum-of-12-uniforms approximation, which is accurate enough for
/// weight initialization and avoids a Box-Muller special case at 0.
pub fn normal(dims: &[usize], mean: f32, std: f32, rng: &mut SmallRng) -> Tensor {
    let n: usize = dims.iter().product();
    let data = (0..n)
        .map(|_| {
            let s: f32 = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum::<f32>() - 6.0;
            mean + std * s
        })
        .collect();
    Tensor::from_vec(data, dims).expect("generated buffer matches shape")
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut SmallRng) -> Tensor {
    let scale = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], scale, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = uniform(&[16], 1.0, &mut seeded(42));
        let b = uniform(&[16], 1.0, &mut seeded(42));
        assert_eq!(a.data(), b.data());
        let c = uniform(&[16], 1.0, &mut seeded(43));
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let t = normal(&[10_000], 2.0, 0.5, &mut seeded(7));
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.numel() as f32;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 0.25).abs() < 0.05, "var {var}");
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let small = xavier(4, 4, &mut seeded(1));
        let large = xavier(4096, 4096, &mut seeded(1));
        let max_small = small.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let max_large = large.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_large < max_small);
    }
}
