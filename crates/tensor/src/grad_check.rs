//! Finite-difference gradient checking for [`crate::nn`] modules.
//!
//! Every hand-written backward pass in this workspace is validated by
//! comparing its analytic gradients (both input and parameter gradients)
//! against central finite differences of a scalar probe loss.

use crate::nn::Module;
use crate::tensor::Tensor;

/// The scalar probe loss: a fixed weighted sum of the output elements.
///
/// Using non-uniform weights ensures that a backward pass that, e.g.,
/// transposes or permutes gradients is still caught.
fn probe_loss(y: &Tensor) -> f32 {
    y.data()
        .iter()
        .enumerate()
        .map(|(i, &v)| v * (0.3 + 0.1 * (i % 7) as f32))
        .sum()
}

/// Gradient of [`probe_loss`] with respect to the output.
fn probe_grad(dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    let data = (0..n).map(|i| 0.3 + 0.1 * (i % 7) as f32).collect();
    Tensor::from_vec(data, dims).expect("generated buffer matches shape")
}

/// Checks a module's input and parameter gradients against finite
/// differences.
///
/// `tol` is the maximum allowed absolute *or* relative error per element
/// (whichever bound is looser), which tolerates f32 cancellation on large
/// gradients while staying strict near zero.
///
/// # Panics
///
/// Panics (fails the test) if any gradient disagrees beyond `tol`.
pub fn check_module_gradients<M: Module>(module: &mut M, x: &Tensor, tol: f32) {
    let eps = 1e-2f32;

    // Analytic pass.
    module.zero_grad();
    let y = module.forward(x);
    let dy = probe_grad(y.dims());
    let dx = module.backward(&dy);
    assert_eq!(dx.dims(), x.dims(), "input gradient shape mismatch");

    // Finite differences on the input.
    for i in 0..x.numel() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let fp = probe_loss(&module.forward(&xp));
        let fm = probe_loss(&module.forward(&xm));
        let fd = (fp - fm) / (2.0 * eps);
        let an = dx.data()[i];
        assert_close(an, fd, tol, &format!("d(input)[{i}]"));
    }

    // Finite differences on every parameter.
    // We cannot hold two mutable borrows, so perturb by index via visit.
    let mut param_shapes: Vec<(String, usize)> = Vec::new();
    module.visit_params(&mut |p| param_shapes.push((p.name.clone(), p.numel())));
    let mut analytic_grads: Vec<Vec<f32>> = Vec::new();
    module.zero_grad();
    module.forward(x);
    module.backward(&dy);
    module.visit_params(&mut |p| analytic_grads.push(p.grad.data().to_vec()));

    for (pi, (name, numel)) in param_shapes.iter().enumerate() {
        for ei in 0..*numel {
            perturb_param(module, pi, ei, eps);
            let fp = probe_loss(&module.forward(x));
            perturb_param(module, pi, ei, -2.0 * eps);
            let fm = probe_loss(&module.forward(x));
            perturb_param(module, pi, ei, eps);
            let fd = (fp - fm) / (2.0 * eps);
            let an = analytic_grads[pi][ei];
            assert_close(an, fd, tol, &format!("d({name})[{ei}]"));
        }
    }
}

fn perturb_param<M: Module>(module: &mut M, param_idx: usize, elem_idx: usize, delta: f32) {
    let mut i = 0usize;
    module.visit_params(&mut |p| {
        if i == param_idx {
            p.value.data_mut()[elem_idx] += delta;
        }
        i += 1;
    });
}

fn assert_close(analytic: f32, fd: f32, tol: f32, what: &str) {
    let abs = (analytic - fd).abs();
    let rel = abs / fd.abs().max(analytic.abs()).max(1.0);
    assert!(
        abs < tol || rel < tol,
        "{what}: analytic {analytic} vs finite-difference {fd} (abs {abs}, rel {rel})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Module, Param};

    /// A module with an intentionally wrong backward, to prove the checker
    /// catches it.
    struct BrokenScale {
        p: Param,
        cache: Option<Tensor>,
    }

    impl Module for BrokenScale {
        fn forward(&mut self, x: &Tensor) -> Tensor {
            self.cache = Some(x.clone());
            x.scale(self.p.value.data()[0])
        }

        fn backward(&mut self, dy: &Tensor) -> Tensor {
            let x = self.cache.take().unwrap();
            // Wrong: forgets to scale dx by the parameter.
            self.p.grad.data_mut()[0] += x
                .data()
                .iter()
                .zip(dy.data().iter())
                .map(|(a, b)| a * b)
                .sum::<f32>();
            dy.clone()
        }

        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    #[test]
    #[should_panic(expected = "d(input)")]
    fn checker_catches_wrong_input_gradient() {
        let mut m = BrokenScale {
            p: Param::new("scale", Tensor::scalar(3.0)),
            cache: None,
        };
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[1, 3]).unwrap();
        check_module_gradients(&mut m, &x, 1e-3);
    }
}
